#pragma once

#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/status.h"
#include "mapping/mapping.h"
#include "matching/schema_def.h"

/// \file target_query.h
/// Static analysis of a target query: which target-table *instances* it
/// scans (self-joins give a table several aliased instances), which
/// target attributes each instance needs, what the answer layout is,
/// and the ordered "signature slots" that determine when two mappings
/// reformulate the query identically (the backbone of q-sharing's
/// partition tree and o-sharing's operator partitioning).

namespace urm {
namespace reformulation {

/// One aliased occurrence of a target table in the query.
struct InstanceInfo {
  std::string alias;  ///< e.g. "po1" (scan alias; qualifies attr refs)
  std::string table;  ///< target table, e.g. "PO"
  /// Unqualified target attributes referenced through this alias, in
  /// first-occurrence order.
  std::vector<std::string> referenced;
  /// Attributes whose source covers must be materialized: `referenced`,
  /// or — for a *bare* instance that no operator touches — all the
  /// table's attributes (paper §VI-B binary Case 3).
  std::vector<std::string> needed;
  bool bare = false;
};

/// One entry of the reformulation signature: a qualified target ref and
/// whether the query *requires* it to be mapped (predicate/projection
/// attributes do; cover-only attributes of bare instances do not).
struct SignatureSlot {
  std::string ref;  ///< "alias.attr"
  bool required = true;
};

/// \brief The analysis result; immutable once built.
struct TargetQueryInfo {
  algebra::PlanPtr query;
  std::vector<InstanceInfo> instances;
  std::map<std::string, std::string> alias_to_table;
  /// Answer columns, target-level: the root projection's attributes, or
  /// a single aggregate column, or (select-only queries) the referenced
  /// attributes in first-occurrence order.
  std::vector<std::string> output_refs;
  bool is_aggregate = false;
  std::vector<SignatureSlot> slots;

  /// The instance owning a qualified ref; Status if the alias is
  /// unknown.
  Result<const InstanceInfo*> InstanceForRef(const std::string& ref) const;

  /// Target schema attribute ("Table.attr") for a query ref
  /// ("alias.attr").
  Result<std::string> TargetAttrForRef(const std::string& ref) const;
};

/// Analyzes `query` against `target_schema`. Fails when a scan names an
/// unknown table, aliases collide, a referenced attribute does not
/// exist, or an attribute reference is not alias-qualified.
Result<TargetQueryInfo> AnalyzeTargetQuery(
    const algebra::PlanPtr& query,
    const matching::SchemaDef& target_schema);

/// Signature of `m` over `slots`: the concatenated source attributes
/// that `m` assigns to each slot. Two mappings with equal signatures
/// reformulate the query to the identical source query. A required slot
/// left unmapped collapses the signature to the distinguished
/// "unanswerable" value (such mappings yield the empty answer).
std::string MappingSignature(const TargetQueryInfo& info,
                             const mapping::Mapping& m);

/// The distinguished signature of mappings that cannot answer the query.
extern const char kUnanswerableSignature[];

}  // namespace reformulation
}  // namespace urm
