#pragma once

#include <optional>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/status.h"
#include "mapping/mapping.h"
#include "matching/schema_def.h"
#include "reformulation/answer.h"
#include "reformulation/target_query.h"

/// \file reformulator.h
/// Target-to-source query reformulation through one possible mapping
/// (paper §III-B and §VI-B). Every target-table instance is replaced by
/// the minimal set of source relations covering the attributes the
/// query needs from it, combined with Cartesian products; operator
/// attribute references are rewritten to the matched source columns.

namespace urm {
namespace reformulation {

/// \brief A reformulated source query plus its answer layout.
struct SourceQuery {
  /// The source plan (null when not answerable). Non-aggregate plans
  /// are wrapped in Distinct (per-mapping set semantics) and project
  /// exactly the mapped output columns.
  algebra::PlanPtr plan;
  /// False when the mapping leaves a required attribute unmatched; the
  /// query then has the empty answer under this mapping.
  bool answerable = false;
  /// For each entry of TargetQueryInfo::output_refs, the qualified
  /// source column in `plan`'s output carrying it (nullopt only for
  /// unmapped optional outputs; never occurs for answerable queries
  /// today but kept for forward compatibility with outer mappings).
  std::vector<std::optional<std::string>> layout;
};

/// \brief Rewrites analyzed target queries through mappings.
class Reformulator {
 public:
  explicit Reformulator(matching::SchemaDef source_schema);

  /// Reformulates `info.query` through `m`.
  ///
  /// Source scan instances are aliased "<target_alias>$<relation>", so
  /// self-joins and repeated relations stay distinguishable. Covers use
  /// the minimal source-relation set for the mapped needed attributes
  /// (attributes live in exactly one relation, so the minimal cover is
  /// the set of their relations), combined left-deep in sorted order —
  /// a canonical shape, making "same source query" detectable by
  /// string comparison of Canonical(plan).
  Result<SourceQuery> Reformulate(const TargetQueryInfo& info,
                                  const mapping::Mapping& m) const;

  const matching::SchemaDef& source_schema() const { return source_schema_; }

 private:
  matching::SchemaDef source_schema_;
};

/// Maps each result row through `layout` (unmapped outputs become NULL)
/// and de-duplicates — the target-level answer rows of one mapping
/// partition, in first-occurrence order.
Result<std::vector<relational::Row>> AssembleRows(
    const relational::Relation& result,
    const std::vector<std::optional<std::string>>& layout);

/// Converts a materialized source result into target-level answers:
/// AssembleRows, then each distinct row accumulates `probability` in
/// `answers`. An empty result contributes the θ outcome instead.
Status AssembleAnswers(const relational::Relation& result,
                       const std::vector<std::optional<std::string>>& layout,
                       double probability, AnswerSet* answers);

}  // namespace reformulation
}  // namespace urm
