#include "reformulation/answer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace urm {
namespace reformulation {

using relational::HashRow;
using relational::Row;
using relational::RowLess;
using relational::RowsEqual;

void AnswerSet::Add(const Row& row, double prob) {
  size_t h = HashRow(row);
  auto it = index_.find(h);
  if (it != index_.end()) {
    for (size_t idx : it->second) {
      if (RowsEqual(tuples_[idx].values, row)) {
        tuples_[idx].probability += prob;
        return;
      }
    }
  }
  index_[h].push_back(tuples_.size());
  tuples_.push_back(AnswerTuple{row, prob});
}

double AnswerSet::TotalProbability() const {
  double total = null_probability_;
  for (const auto& t : tuples_) total += t.probability;
  return total;
}

size_t AnswerSet::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& t : tuples_) {
    bytes += relational::ApproxRowBytes(t.values) + sizeof(double);
  }
  return bytes;
}

std::vector<AnswerTuple> AnswerSet::Sorted() const {
  std::vector<AnswerTuple> out = tuples_;
  std::sort(out.begin(), out.end(),
            [](const AnswerTuple& a, const AnswerTuple& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return RowLess(a.values, b.values);
            });
  return out;
}

std::vector<AnswerTuple> AnswerSet::TopK(size_t k) const {
  std::vector<AnswerTuple> out = Sorted();
  if (out.size() > k) out.resize(k);
  return out;
}

bool AnswerSet::ApproxEquals(const AnswerSet& other, double eps) const {
  if (std::fabs(null_probability_ - other.null_probability_) > eps) {
    return false;
  }
  if (tuples_.size() != other.tuples_.size()) return false;
  std::vector<AnswerTuple> a = Sorted(), b = other.Sorted();
  // Sort by row (total order) to align tuples regardless of probability
  // ties.
  auto by_row = [](const AnswerTuple& x, const AnswerTuple& y) {
    return RowLess(x.values, y.values);
  };
  std::sort(a.begin(), a.end(), by_row);
  std::sort(b.begin(), b.end(), by_row);
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEqual(a[i].values, b[i].values)) return false;
    if (std::fabs(a[i].probability - b[i].probability) > eps) return false;
  }
  return true;
}

std::string AnswerSet::ToString(size_t max_rows) const {
  std::string out = "(" + Join(column_names_, ", ") + ") [" +
                    std::to_string(tuples_.size()) + " tuples, P(θ)=" +
                    std::to_string(null_probability_) + "]\n";
  auto sorted = Sorted();
  size_t shown = std::min(max_rows, sorted.size());
  for (size_t i = 0; i < shown; ++i) {
    out += "  (";
    for (size_t j = 0; j < sorted[i].values.size(); ++j) {
      if (j > 0) out += ", ";
      out += sorted[i].values[j].ToString();
    }
    out += ") p=" + std::to_string(sorted[i].probability) + "\n";
  }
  if (shown < sorted.size()) out += "  ...\n";
  return out;
}

}  // namespace reformulation
}  // namespace urm
