#include "reformulation/reformulator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "relational/schema.h"

namespace urm {
namespace reformulation {

using algebra::MakeDistinct;
using algebra::MakeProduct;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::PlanKind;
using algebra::PlanPtr;
using relational::AttributePart;
using relational::InstancePart;

Reformulator::Reformulator(matching::SchemaDef source_schema)
    : source_schema_(std::move(source_schema)) {}

namespace {

/// Rewrites the analyzed target plan: scans become their instance cover
/// subplans; attribute references go through `rename`.
Result<PlanPtr> RebuildPlan(
    const PlanPtr& node,
    const std::map<std::string, PlanPtr>& instance_plans,
    const std::vector<std::pair<std::string, std::string>>& rename) {
  auto renamed = [&rename](const std::string& ref) -> Result<std::string> {
    for (const auto& [from, to] : rename) {
      if (from == ref) return to;
    }
    return Status::NotFound("no source column for target ref: " + ref);
  };
  switch (node->kind) {
    case PlanKind::kScan: {
      auto it = instance_plans.find(node->alias);
      if (it == instance_plans.end()) {
        return Status::Internal("missing instance plan: " + node->alias);
      }
      return it->second;
    }
    case PlanKind::kRelationLeaf:
      return Status::InvalidArgument(
          "target queries must not contain materialized leaves");
    case PlanKind::kSelect: {
      auto child = RebuildPlan(node->child, instance_plans, rename);
      if (!child.ok()) return child.status();
      algebra::Predicate pred = node->predicate;
      auto lhs = renamed(pred.lhs);
      if (!lhs.ok()) return lhs.status();
      pred.lhs = lhs.ValueOrDie();
      if (pred.rhs_attr.has_value()) {
        auto rhs = renamed(*pred.rhs_attr);
        if (!rhs.ok()) return rhs.status();
        pred.rhs_attr = rhs.ValueOrDie();
      }
      return algebra::MakeSelect(std::move(child).ValueOrDie(),
                                 std::move(pred));
    }
    case PlanKind::kProject: {
      auto child = RebuildPlan(node->child, instance_plans, rename);
      if (!child.ok()) return child.status();
      std::vector<std::string> attrs;
      for (const auto& a : node->attrs) {
        auto r = renamed(a);
        if (!r.ok()) return r.status();
        attrs.push_back(r.ValueOrDie());
      }
      return MakeProject(std::move(child).ValueOrDie(), std::move(attrs));
    }
    case PlanKind::kProduct: {
      auto left = RebuildPlan(node->child, instance_plans, rename);
      if (!left.ok()) return left.status();
      auto right = RebuildPlan(node->right, instance_plans, rename);
      if (!right.ok()) return right.status();
      return MakeProduct(std::move(left).ValueOrDie(),
                         std::move(right).ValueOrDie());
    }
    case PlanKind::kAggregate: {
      auto child = RebuildPlan(node->child, instance_plans, rename);
      if (!child.ok()) return child.status();
      std::string attr = node->agg_attr;
      if (!attr.empty()) {
        auto r = renamed(attr);
        if (!r.ok()) return r.status();
        attr = r.ValueOrDie();
      }
      return algebra::MakeAggregate(std::move(child).ValueOrDie(),
                                    node->agg, std::move(attr));
    }
    case PlanKind::kDistinct: {
      auto child = RebuildPlan(node->child, instance_plans, rename);
      if (!child.ok()) return child.status();
      return MakeDistinct(std::move(child).ValueOrDie());
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<SourceQuery> Reformulator::Reformulate(
    const TargetQueryInfo& info, const mapping::Mapping& m) const {
  std::map<std::string, PlanPtr> instance_plans;
  std::vector<std::pair<std::string, std::string>> rename;

  for (const auto& inst : info.instances) {
    // Match every needed attribute through m.
    std::vector<std::string> mapped_sources;
    for (const auto& attr : inst.needed) {
      auto src = m.SourceFor(inst.table + "." + attr);
      bool required =
          std::find(inst.referenced.begin(), inst.referenced.end(), attr) !=
          inst.referenced.end();
      if (!src.has_value()) {
        if (required) return SourceQuery{};  // not answerable
        continue;  // cover-only attribute absent from this mapping
      }
      if (!source_schema_.HasAttribute(*src)) {
        return Status::Internal("mapping targets unknown source attr: " +
                                *src);
      }
      mapped_sources.push_back(*src);
      if (required) {
        rename.emplace_back(
            inst.alias + "." + attr,
            inst.alias + "$" + InstancePart(*src) + "." +
                AttributePart(*src));
      }
    }
    if (mapped_sources.empty()) return SourceQuery{};  // nothing to scan

    // Minimal cover: each source attribute lives in exactly one
    // relation, so the cover is the (sorted, distinct) relation set.
    std::set<std::string> cover;
    for (const auto& src : mapped_sources) {
      cover.insert(InstancePart(src));
    }
    PlanPtr sub;
    for (const auto& rel : cover) {
      PlanPtr scan = MakeScan(rel, inst.alias + "$" + rel);
      sub = sub == nullptr ? scan : MakeProduct(std::move(sub), scan);
    }
    instance_plans[inst.alias] = std::move(sub);
  }

  auto rebuilt = RebuildPlan(info.query, instance_plans, rename);
  if (!rebuilt.ok()) return rebuilt.status();
  PlanPtr plan = std::move(rebuilt).ValueOrDie();

  SourceQuery out;
  out.answerable = true;
  if (info.is_aggregate) {
    out.plan = std::move(plan);
    out.layout = {info.output_refs[0] == "count"
                      ? std::optional<std::string>("count")
                      : std::optional<std::string>("sum")};
    return out;
  }

  // Non-aggregate: ensure the plan projects exactly the mapped output
  // columns, and apply set semantics.
  std::vector<std::optional<std::string>> layout;
  bool already_projected = plan->kind == PlanKind::kProject;
  std::vector<std::string> out_cols;
  for (const auto& ref : info.output_refs) {
    bool found = false;
    for (const auto& [from, to] : rename) {
      if (from == ref) {
        layout.emplace_back(to);
        out_cols.push_back(to);
        found = true;
        break;
      }
    }
    if (!found) layout.emplace_back(std::nullopt);
  }
  if (!already_projected) {
    if (out_cols.empty()) {
      return Status::Internal("no mapped output columns");
    }
    plan = MakeProject(std::move(plan), std::move(out_cols));
  }
  out.plan = MakeDistinct(std::move(plan));
  out.layout = std::move(layout);
  return out;
}

Result<std::vector<relational::Row>> AssembleRows(
    const relational::Relation& result,
    const std::vector<std::optional<std::string>>& layout) {
  std::vector<int> indices;
  indices.reserve(layout.size());
  for (const auto& col : layout) {
    if (!col.has_value()) {
      indices.push_back(-1);
      continue;
    }
    auto idx = result.schema().IndexOf(*col);
    if (!idx.has_value()) {
      return Status::NotFound("layout column missing from result: " + *col);
    }
    indices.push_back(static_cast<int>(*idx));
  }

  // Set semantics within one partition: each distinct assembled row
  // appears once.
  std::unordered_set<size_t> seen_hashes;
  std::vector<relational::Row> rows;
  for (const relational::Row& row : result.rows()) {
    relational::Row assembled;
    assembled.reserve(indices.size());
    for (int idx : indices) {
      assembled.push_back(idx < 0 ? relational::Value::Null()
                                  : row[static_cast<size_t>(idx)]);
    }
    size_t h = relational::HashRow(assembled);
    bool duplicate = false;
    if (!seen_hashes.insert(h).second) {
      for (const auto& prev : rows) {
        if (relational::RowsEqual(prev, assembled)) {
          duplicate = true;
          break;
        }
      }
    }
    if (!duplicate) {
      rows.push_back(std::move(assembled));
    }
  }
  return rows;
}

Status AssembleAnswers(const relational::Relation& result,
                       const std::vector<std::optional<std::string>>& layout,
                       double probability, AnswerSet* answers) {
  URM_CHECK(answers != nullptr);
  if (result.empty()) {
    answers->AddNull(probability);
    return Status::OK();
  }
  auto rows = AssembleRows(result, layout);
  if (!rows.ok()) return rows.status();
  for (const auto& row : rows.ValueOrDie()) {
    answers->Add(row, probability);
  }
  return Status::OK();
}

}  // namespace reformulation
}  // namespace urm
