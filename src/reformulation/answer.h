#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"

/// \file answer.h
/// Probabilistic query answers: a set of (tuple, probability) pairs as
/// defined in the paper's §III. Tuples produced under several mutually
/// exclusive mappings accumulate their mappings' probabilities; the
/// "no answer" outcome (the paper's null tuple θ) is tracked separately.

namespace urm {
namespace reformulation {

/// One answer tuple with its accumulated probability.
struct AnswerTuple {
  relational::Row values;
  double probability = 0.0;
};

/// \brief Accumulator and container for probabilistic answers.
///
/// Rows are compared by value (Value::operator==); answers are keyed on
/// the target-level output layout, so rows produced through different
/// mappings (different source attributes) merge when their values agree.
class AnswerSet {
 public:
  AnswerSet() = default;
  explicit AnswerSet(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Accumulates `prob` onto the tuple equal to `row` (inserting it if
  /// new).
  void Add(const relational::Row& row, double prob);

  /// Accumulates onto the θ (empty result) outcome.
  void AddNull(double prob) { null_probability_ += prob; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  double null_probability() const { return null_probability_; }

  /// Tuples in first-insertion (accumulation) order — the deterministic
  /// raw view the sharded-evaluation merge replays, reweighting each
  /// shard's tuples by its probability mass in shard order.
  const std::vector<AnswerTuple>& tuples() const { return tuples_; }

  /// Sum over tuples plus θ; ~1 for a complete evaluation.
  double TotalProbability() const;

  /// Tuples sorted by probability (descending), ties broken by row
  /// order — a deterministic presentation.
  std::vector<AnswerTuple> Sorted() const;

  /// The k highest-probability tuples (ties broken deterministically).
  std::vector<AnswerTuple> TopK(size_t k) const;

  /// Approximate in-memory footprint of the answer tuples (used by the
  /// serving tier to weigh cached responses by bytes, not entry count).
  size_t ApproxBytes() const;

  /// Value-equality within `eps` on probabilities, order-insensitive.
  /// Used by tests to assert all evaluation methods agree.
  bool ApproxEquals(const AnswerSet& other, double eps = 1e-9) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> column_names_;
  std::vector<AnswerTuple> tuples_;
  std::unordered_map<size_t, std::vector<size_t>> index_;  // hash -> idx
  double null_probability_ = 0.0;
};

}  // namespace reformulation
}  // namespace urm
