#include "reformulation/target_query.h"

#include <algorithm>

#include "common/logging.h"
#include "relational/schema.h"

namespace urm {
namespace reformulation {

const char kUnanswerableSignature[] = "<unanswerable>";

Result<const InstanceInfo*> TargetQueryInfo::InstanceForRef(
    const std::string& ref) const {
  std::string alias = relational::InstancePart(ref);
  for (const auto& inst : instances) {
    if (inst.alias == alias) return &inst;
  }
  return Status::NotFound("no instance for ref: " + ref);
}

Result<std::string> TargetQueryInfo::TargetAttrForRef(
    const std::string& ref) const {
  auto inst = InstanceForRef(ref);
  if (!inst.ok()) return inst.status();
  return inst.ValueOrDie()->table + "." + relational::AttributePart(ref);
}

Result<TargetQueryInfo> AnalyzeTargetQuery(
    const algebra::PlanPtr& query,
    const matching::SchemaDef& target_schema) {
  if (query == nullptr) return Status::InvalidArgument("null query");
  TargetQueryInfo info;
  info.query = query;

  // Instances from scans.
  for (const algebra::PlanNode* scan : algebra::CollectScans(query)) {
    if (scan->alias.empty()) {
      return Status::InvalidArgument(
          "target scans must carry an instance alias: " + scan->table);
    }
    if (info.alias_to_table.count(scan->alias) > 0) {
      return Status::InvalidArgument("duplicate scan alias: " + scan->alias);
    }
    auto table = target_schema.GetTable(scan->table);
    if (!table.ok()) return table.status();
    info.alias_to_table[scan->alias] = scan->table;
    InstanceInfo inst;
    inst.alias = scan->alias;
    inst.table = scan->table;
    info.instances.push_back(std::move(inst));
  }
  if (info.instances.empty()) {
    return Status::InvalidArgument("query scans no target table");
  }

  // Referenced attributes, validated and attributed to instances.
  const auto refs = algebra::ReferencedAttributes(query);
  for (const auto& ref : refs) {
    std::string alias = relational::InstancePart(ref);
    std::string attr = relational::AttributePart(ref);
    if (alias.empty()) {
      return Status::InvalidArgument(
          "attribute references must be alias-qualified: " + ref);
    }
    bool found = false;
    for (auto& inst : info.instances) {
      if (inst.alias != alias) continue;
      found = true;
      auto table = target_schema.GetTable(inst.table).ValueOrDie();
      if (std::find(table.attributes.begin(), table.attributes.end(),
                    attr) == table.attributes.end()) {
        return Status::NotFound("attribute " + attr + " not in table " +
                                inst.table);
      }
      if (std::find(inst.referenced.begin(), inst.referenced.end(), attr) ==
          inst.referenced.end()) {
        inst.referenced.push_back(attr);
      }
    }
    if (!found) {
      return Status::NotFound("reference to unknown alias: " + ref);
    }
  }

  // Needed attributes (covers): referenced, or the whole table for bare
  // instances.
  for (auto& inst : info.instances) {
    if (inst.referenced.empty()) {
      inst.bare = true;
      inst.needed =
          target_schema.GetTable(inst.table).ValueOrDie().attributes;
    } else {
      inst.needed = inst.referenced;
    }
  }

  // Output layout.
  const algebra::PlanNode* root = query.get();
  while (root->kind == algebra::PlanKind::kDistinct) {
    root = root->child.get();
  }
  if (root->kind == algebra::PlanKind::kAggregate) {
    info.is_aggregate = true;
    info.output_refs = {root->agg == algebra::AggKind::kCount ? "count"
                                                              : "sum"};
  } else if (root->kind == algebra::PlanKind::kProject) {
    info.output_refs = root->attrs;
  } else {
    info.output_refs = refs;  // select-only: the interesting attributes
  }
  if (info.output_refs.empty()) {
    return Status::InvalidArgument(
        "query has no output attributes (no projection, aggregation, or "
        "referenced attribute)");
  }

  // Signature slots: referenced refs first (required), then the
  // cover-only attributes of bare instances (optional).
  for (const auto& inst : info.instances) {
    for (const auto& attr : inst.referenced) {
      info.slots.push_back(SignatureSlot{inst.alias + "." + attr, true});
    }
  }
  for (const auto& inst : info.instances) {
    if (!inst.bare) continue;
    for (const auto& attr : inst.needed) {
      info.slots.push_back(SignatureSlot{inst.alias + "." + attr, false});
    }
  }
  return info;
}

std::string MappingSignature(const TargetQueryInfo& info,
                             const mapping::Mapping& m) {
  std::string sig;
  for (const auto& slot : info.slots) {
    auto target_attr = info.TargetAttrForRef(slot.ref);
    URM_CHECK(target_attr.ok()) << target_attr.status().ToString();
    auto src = m.SourceFor(target_attr.ValueOrDie());
    if (!src.has_value()) {
      if (slot.required) return kUnanswerableSignature;
      sig += "-|";
      continue;
    }
    sig += *src;
    sig += "|";
  }
  return sig;
}

}  // namespace reformulation
}  // namespace urm
