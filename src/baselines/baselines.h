#pragma once

#include <vector>

#include "baselines/method_result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "mapping/mapping.h"
#include "reformulation/reformulator.h"
#include "relational/catalog.h"

/// \file baselines.h
/// The paper's three simple solutions (§III-B):
///  * basic  — reformulate and execute one source query per mapping;
///  * e-basic — cluster identical source queries, execute each once;
///  * e-MQO  — e-basic plus a multi-query-optimized global plan.

namespace urm {
namespace baselines {

/// A (representative mapping, probability) pair: q-sharing feeds basic
/// with representatives whose probability is the partition total
/// (paper Algorithm 1, step 2).
struct WeightedMapping {
  const mapping::Mapping* mapping = nullptr;
  double probability = 0.0;
};

/// Wraps a mapping set as weighted mappings with their own
/// probabilities.
std::vector<WeightedMapping> AsWeighted(
    const std::vector<mapping::Mapping>& mappings);

/// Parallel-execution knobs shared by the per-mapping evaluation loops
/// (basic, e-basic, and q-sharing's representative loop). With
/// parallelism <= 1 or a null pool everything runs on the calling
/// thread — exactly the paper's sequential algorithms. With a pool,
/// the distinct source queries evaluate concurrently (mapping groups
/// are independent by construction) and their answers are merged in
/// group order, so the resulting AnswerSet is bit-identical to the
/// sequential run. Timing fields then sum per-task time (~CPU time);
/// wall clock is the caller's to measure.
struct ExecOptions {
  int parallelism = 1;
  ThreadPool* pool = nullptr;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }
};

/// basic (paper §III-B.1). Evaluates one source query per (weighted)
/// mapping and aggregates duplicate answers.
Result<MethodResult> RunBasic(const reformulation::TargetQueryInfo& info,
                              const std::vector<WeightedMapping>& mappings,
                              const relational::Catalog& catalog,
                              const reformulation::Reformulator& reformulator,
                              const ExecOptions& exec = ExecOptions());

/// e-basic (§III-B.2): like basic, but identical source queries
/// (detected by canonical form after all h reformulations) are
/// evaluated once.
Result<MethodResult> RunEBasic(
    const reformulation::TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const ExecOptions& exec = ExecOptions());

/// e-MQO (§III-B.3): e-basic plus global plan generation (mqo.h) and
/// shared-subexpression memoization during execution. Always runs
/// sequentially — its shared-subexpression memo is an execution-order
/// dependency (ExecOptions is accepted for interface symmetry and
/// ignored).
Result<MethodResult> RunEMqo(const reformulation::TargetQueryInfo& info,
                             const std::vector<WeightedMapping>& mappings,
                             const relational::Catalog& catalog,
                             const reformulation::Reformulator& reformulator,
                             const ExecOptions& exec = ExecOptions());

}  // namespace baselines
}  // namespace urm
