#pragma once

#include <vector>

#include "baselines/method_result.h"
#include "common/status.h"
#include "mapping/mapping.h"
#include "reformulation/reformulator.h"
#include "relational/catalog.h"

/// \file baselines.h
/// The paper's three simple solutions (§III-B):
///  * basic  — reformulate and execute one source query per mapping;
///  * e-basic — cluster identical source queries, execute each once;
///  * e-MQO  — e-basic plus a multi-query-optimized global plan.

namespace urm {
namespace baselines {

/// A (representative mapping, probability) pair: q-sharing feeds basic
/// with representatives whose probability is the partition total
/// (paper Algorithm 1, step 2).
struct WeightedMapping {
  const mapping::Mapping* mapping = nullptr;
  double probability = 0.0;
};

/// Wraps a mapping set as weighted mappings with their own
/// probabilities.
std::vector<WeightedMapping> AsWeighted(
    const std::vector<mapping::Mapping>& mappings);

/// basic (paper §III-B.1). Evaluates one source query per (weighted)
/// mapping and aggregates duplicate answers.
Result<MethodResult> RunBasic(const reformulation::TargetQueryInfo& info,
                              const std::vector<WeightedMapping>& mappings,
                              const relational::Catalog& catalog,
                              const reformulation::Reformulator& reformulator);

/// e-basic (§III-B.2): like basic, but identical source queries
/// (detected by canonical form after all h reformulations) are
/// evaluated once.
Result<MethodResult> RunEBasic(
    const reformulation::TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator);

/// e-MQO (§III-B.3): e-basic plus global plan generation (mqo.h) and
/// shared-subexpression memoization during execution.
Result<MethodResult> RunEMqo(const reformulation::TargetQueryInfo& info,
                             const std::vector<WeightedMapping>& mappings,
                             const relational::Catalog& catalog,
                             const reformulation::Reformulator& reformulator);

}  // namespace baselines
}  // namespace urm
