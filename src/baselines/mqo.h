#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/plan.h"
#include "common/status.h"
#include "relational/catalog.h"

/// \file mqo.h
/// Multi-query optimization for the e-MQO baseline, in the style of Roy
/// et al. / Zhou et al. ([12],[20]): enumerate common subexpressions
/// across the distinct source queries, then greedily select a
/// materialization set by estimated benefit, *re-costing every query
/// after each pick* (materialized subexpressions change the marginal
/// benefit of the remaining candidates). The re-costing loop is what
/// makes plan generation expensive as the number of distinct queries
/// grows — the effect the paper reports in Figure 10(c).

namespace urm {
namespace baselines {

/// Output of global plan generation.
struct MqoPlan {
  /// Canonical forms of the subexpressions chosen for materialization,
  /// in selection order. Execution memoizes exactly these (plus nothing
  /// else), yielding the near-minimal operator count of a global plan.
  std::unordered_set<std::string> materialized;
  /// Estimated total cost of the global plan (arbitrary units).
  double estimated_cost = 0.0;
  /// Candidates examined (for reporting).
  size_t candidates_considered = 0;
};

/// Builds the global plan for a set of distinct source queries.
/// Cardinalities are estimated from catalog row counts with fixed
/// selectivities (no execution happens here).
Result<MqoPlan> GenerateGlobalPlan(
    const std::vector<algebra::PlanPtr>& queries,
    const relational::Catalog& catalog);

/// Estimated cost of evaluating `plan` given already-materialized
/// subexpressions (their cost is zero). Exposed for tests.
double EstimatePlanCost(const algebra::PlanPtr& plan,
                        const relational::Catalog& catalog,
                        const std::unordered_set<std::string>& materialized);

}  // namespace baselines
}  // namespace urm
