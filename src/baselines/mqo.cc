#include "baselines/mqo.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace urm {
namespace baselines {

using algebra::Canonical;
using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

constexpr double kSelectSelectivity = 0.1;
constexpr double kJoinSelectivity = 0.01;

struct CostEstimate {
  double rows = 0.0;
  double cost = 0.0;  // cumulative work including children
};

/// Estimated rows/cost, treating `materialized` subtrees as free.
CostEstimate Estimate(const PlanPtr& plan,
                      const relational::Catalog& catalog,
                      const std::unordered_set<std::string>& materialized,
                      std::map<std::string, CostEstimate>* memo) {
  std::string key = Canonical(plan);
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  CostEstimate est;
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto rel = catalog.Get(plan->table);
      est.rows = rel.ok()
                     ? static_cast<double>(rel.ValueOrDie()->num_rows())
                     : 1000.0;
      est.cost = est.rows;
      break;
    }
    case PlanKind::kRelationLeaf:
      est.rows = static_cast<double>(plan->relation->num_rows());
      est.cost = 0.0;
      break;
    case PlanKind::kSelect: {
      CostEstimate child = Estimate(plan->child, catalog, materialized, memo);
      bool join = plan->predicate.is_join_predicate();
      est.rows = child.rows * (join ? kJoinSelectivity : kSelectSelectivity);
      est.cost = child.cost + child.rows;
      break;
    }
    case PlanKind::kProject:
    case PlanKind::kDistinct: {
      CostEstimate child = Estimate(plan->child, catalog, materialized, memo);
      est.rows = child.rows;
      est.cost = child.cost + child.rows;
      break;
    }
    case PlanKind::kProduct: {
      CostEstimate l = Estimate(plan->child, catalog, materialized, memo);
      CostEstimate r = Estimate(plan->right, catalog, materialized, memo);
      est.rows = l.rows * r.rows;
      est.cost = l.cost + r.cost + est.rows;
      break;
    }
    case PlanKind::kAggregate: {
      CostEstimate child = Estimate(plan->child, catalog, materialized, memo);
      est.rows = 1.0;
      est.cost = child.cost + child.rows;
      break;
    }
  }
  if (materialized.count(key) > 0) {
    // Reading a materialized result costs its cardinality only.
    est.cost = est.rows;
  }
  it = memo->emplace(key, est).first;
  return it->second;
}

void CollectSubplans(const PlanPtr& plan,
                     std::map<std::string, std::pair<PlanPtr, int>>* out) {
  if (plan == nullptr) return;
  if (plan->kind != PlanKind::kScan &&
      plan->kind != PlanKind::kRelationLeaf) {
    auto [it, inserted] =
        out->emplace(Canonical(plan), std::make_pair(plan, 0));
    it->second.second++;
  }
  CollectSubplans(plan->child, out);
  CollectSubplans(plan->right, out);
}

}  // namespace

double EstimatePlanCost(
    const PlanPtr& plan, const relational::Catalog& catalog,
    const std::unordered_set<std::string>& materialized) {
  std::map<std::string, CostEstimate> memo;
  return Estimate(plan, catalog, materialized, &memo).cost;
}

Result<MqoPlan> GenerateGlobalPlan(const std::vector<PlanPtr>& queries,
                                   const relational::Catalog& catalog) {
  MqoPlan plan;

  // Candidate pool: every operator subexpression occurring in >= 2
  // queries (occurrences within one query also count — self-joins).
  std::map<std::string, std::pair<PlanPtr, int>> subplans;
  for (const auto& q : queries) {
    CollectSubplans(q, &subplans);
  }
  std::vector<std::pair<std::string, PlanPtr>> candidates;
  for (const auto& [key, entry] : subplans) {
    if (entry.second >= 2) candidates.emplace_back(key, entry.first);
  }
  plan.candidates_considered = candidates.size();

  auto total_cost = [&](const std::unordered_set<std::string>& mat) {
    double total = 0.0;
    // Materialization itself is paid once per chosen subexpression.
    for (const auto& key : mat) {
      auto it = subplans.find(key);
      if (it != subplans.end()) {
        std::unordered_set<std::string> others = mat;
        others.erase(key);
        total += EstimatePlanCost(it->second.first, catalog, others);
      }
    }
    for (const auto& q : queries) {
      total += EstimatePlanCost(q, catalog, mat);
    }
    return total;
  };

  // Greedy with full re-costing: each round evaluates the global cost of
  // adding every remaining candidate and keeps the best improvement.
  double current = total_cost(plan.materialized);
  bool improved = true;
  std::vector<bool> taken(candidates.size(), false);
  while (improved) {
    improved = false;
    double best_cost = current;
    size_t best_idx = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      std::unordered_set<std::string> trial = plan.materialized;
      trial.insert(candidates[i].first);
      double c = total_cost(trial);
      if (c < best_cost - 1e-9) {
        best_cost = c;
        best_idx = i;
      }
    }
    if (best_idx < candidates.size()) {
      plan.materialized.insert(candidates[best_idx].first);
      taken[best_idx] = true;
      current = best_cost;
      improved = true;
    }
  }
  plan.estimated_cost = current;
  return plan;
}

}  // namespace baselines
}  // namespace urm
