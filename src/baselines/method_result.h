#pragma once

#include <cstddef>

#include "algebra/evaluate.h"
#include "reformulation/answer.h"

/// \file method_result.h
/// Common result record for all evaluation methods (basic, e-basic,
/// e-MQO, q-sharing, o-sharing, top-k). Phase timings mirror the
/// breakdowns reported in the paper's Figures 10-12 and Table IV.

namespace urm {
namespace baselines {

/// \brief Answers plus per-phase costs of one evaluation.
struct MethodResult {
  reformulation::AnswerSet answers;
  algebra::EvalStats stats;

  double rewrite_seconds = 0.0;    ///< reformulation / partitioning
  double plan_seconds = 0.0;       ///< global plan generation (e-MQO)
  double eval_seconds = 0.0;       ///< source operator execution
  double aggregate_seconds = 0.0;  ///< answer aggregation

  /// Distinct source queries actually executed.
  size_t source_queries = 0;
  /// Mapping partitions/representatives used (q-sharing, o-sharing).
  size_t partitions = 0;

  double TotalSeconds() const {
    return rewrite_seconds + plan_seconds + eval_seconds +
           aggregate_seconds;
  }
};

}  // namespace baselines
}  // namespace urm
