#include "baselines/baselines.h"

#include <map>
#include <string>

#include "algebra/optimize.h"
#include "baselines/mqo.h"
#include "common/timer.h"

namespace urm {
namespace baselines {

using algebra::EvalContext;
using algebra::PlanPtr;
using reformulation::AnswerSet;
using reformulation::SourceQuery;
using reformulation::TargetQueryInfo;

std::vector<WeightedMapping> AsWeighted(
    const std::vector<mapping::Mapping>& mappings) {
  std::vector<WeightedMapping> out;
  out.reserve(mappings.size());
  for (const auto& m : mappings) {
    out.push_back(WeightedMapping{&m, m.probability()});
  }
  return out;
}

namespace {

/// A reformulated query group: one executable source query standing for
/// `probability` worth of mappings.
struct QueryGroup {
  SourceQuery query;
  double probability = 0.0;
};

/// Reformulates every weighted mapping; when `deduplicate` is set,
/// mappings with the identical source query are merged into one group
/// (e-basic / e-MQO); otherwise one group per mapping (basic).
Result<std::vector<QueryGroup>> BuildGroups(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator, bool deduplicate) {
  std::vector<QueryGroup> groups;
  std::map<std::string, size_t> by_canonical;
  for (const auto& wm : mappings) {
    auto reformed = reformulator.Reformulate(info, *wm.mapping);
    if (!reformed.ok()) return reformed.status();
    SourceQuery sq = std::move(reformed).ValueOrDie();
    if (sq.answerable) {
      auto optimized = algebra::PushDownSelections(sq.plan, catalog);
      if (!optimized.ok()) return optimized.status();
      sq.plan = std::move(optimized).ValueOrDie();
    }
    if (deduplicate) {
      std::string key =
          sq.answerable ? algebra::Canonical(sq.plan) : "<unanswerable>";
      auto it = by_canonical.find(key);
      if (it != by_canonical.end()) {
        groups[it->second].probability += wm.probability;
        continue;
      }
      by_canonical.emplace(std::move(key), groups.size());
    }
    groups.push_back(QueryGroup{std::move(sq), wm.probability});
  }
  return groups;
}

/// Executes the groups and aggregates answers. `cache`/`filter` wire up
/// e-MQO's shared-subexpression memoization.
Result<MethodResult> ExecuteGroups(
    const TargetQueryInfo& info, std::vector<QueryGroup> groups,
    const relational::Catalog& catalog, MethodResult result,
    algebra::EvalCache* cache,
    const std::unordered_set<std::string>* filter) {
  result.answers = AnswerSet(info.output_refs);
  Timer timer;
  for (const auto& group : groups) {
    if (!group.query.answerable) {
      timer.Reset();
      result.answers.AddNull(group.probability);
      result.aggregate_seconds += timer.Lap();
      continue;
    }
    timer.Reset();
    EvalContext ctx;
    ctx.catalog = &catalog;
    ctx.stats = &result.stats;
    ctx.cache = cache;
    ctx.cache_filter = filter;
    auto rel = algebra::Evaluate(group.query.plan, ctx);
    if (!rel.ok()) return rel.status();
    result.source_queries++;
    result.eval_seconds += timer.Lap();
    URM_RETURN_NOT_OK(reformulation::AssembleAnswers(
        *rel.ValueOrDie(), group.query.layout, group.probability,
        &result.answers));
    result.aggregate_seconds += timer.Lap();
  }
  return result;
}

}  // namespace

Result<MethodResult> RunBasic(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator) {
  MethodResult result;
  Timer timer;
  auto groups =
      BuildGroups(info, mappings, catalog, reformulator, false);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), nullptr, nullptr);
}

Result<MethodResult> RunEBasic(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator) {
  MethodResult result;
  Timer timer;
  auto groups = BuildGroups(info, mappings, catalog, reformulator, true);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  result.partitions = groups.ValueOrDie().size();
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), nullptr, nullptr);
}

Result<MethodResult> RunEMqo(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator) {
  MethodResult result;
  Timer timer;
  auto groups = BuildGroups(info, mappings, catalog, reformulator, true);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  result.partitions = groups.ValueOrDie().size();

  std::vector<PlanPtr> plans;
  for (const auto& g : groups.ValueOrDie()) {
    if (g.query.answerable) plans.push_back(g.query.plan);
  }
  timer.Reset();
  auto mqo = GenerateGlobalPlan(plans, catalog);
  if (!mqo.ok()) return mqo.status();
  result.plan_seconds = timer.Lap();

  algebra::EvalCache cache;
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), &cache,
                       &mqo.ValueOrDie().materialized);
}

}  // namespace baselines
}  // namespace urm
