#include "baselines/baselines.h"

#include <map>
#include <string>

#include "algebra/optimize.h"
#include "baselines/mqo.h"
#include "common/timer.h"

namespace urm {
namespace baselines {

using algebra::EvalContext;
using algebra::PlanPtr;
using reformulation::AnswerSet;
using reformulation::SourceQuery;
using reformulation::TargetQueryInfo;

std::vector<WeightedMapping> AsWeighted(
    const std::vector<mapping::Mapping>& mappings) {
  std::vector<WeightedMapping> out;
  out.reserve(mappings.size());
  for (const auto& m : mappings) {
    out.push_back(WeightedMapping{&m, m.probability()});
  }
  return out;
}

namespace {

/// A reformulated query group: one executable source query standing for
/// `probability` worth of mappings.
struct QueryGroup {
  SourceQuery query;
  double probability = 0.0;
};

/// Reformulates every weighted mapping; when `deduplicate` is set,
/// mappings with the identical source query are merged into one group
/// (e-basic / e-MQO); otherwise one group per mapping (basic).
Result<std::vector<QueryGroup>> BuildGroups(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator, bool deduplicate) {
  std::vector<QueryGroup> groups;
  std::map<std::string, size_t> by_canonical;
  for (const auto& wm : mappings) {
    auto reformed = reformulator.Reformulate(info, *wm.mapping);
    if (!reformed.ok()) return reformed.status();
    SourceQuery sq = std::move(reformed).ValueOrDie();
    if (sq.answerable) {
      auto optimized = algebra::PushDownSelections(sq.plan, catalog);
      if (!optimized.ok()) return optimized.status();
      sq.plan = std::move(optimized).ValueOrDie();
    }
    if (deduplicate) {
      std::string key =
          sq.answerable ? algebra::Canonical(sq.plan) : "<unanswerable>";
      auto it = by_canonical.find(key);
      if (it != by_canonical.end()) {
        groups[it->second].probability += wm.probability;
        continue;
      }
      by_canonical.emplace(std::move(key), groups.size());
    }
    groups.push_back(QueryGroup{std::move(sq), wm.probability});
  }
  return groups;
}

/// Executes the groups and aggregates answers. `cache`/`filter` wire up
/// e-MQO's shared-subexpression memoization (mutually exclusive with
/// parallel execution). With `exec.parallel()`, the independent group
/// plans evaluate concurrently on the pool; answers are then merged in
/// group order, replaying exactly the sequential accumulation sequence.
Result<MethodResult> ExecuteGroups(
    const TargetQueryInfo& info, std::vector<QueryGroup> groups,
    const relational::Catalog& catalog, MethodResult result,
    algebra::EvalCache* cache,
    const std::unordered_set<std::string>* filter,
    const ExecOptions& exec = ExecOptions()) {
  result.answers = AnswerSet(info.output_refs);
  Timer timer;
  // Per-group merge shared by both paths, so sequential and parallel
  // accounting cannot drift apart (the bit-identical-results guarantee
  // rests on replaying exactly this sequence in group order).
  auto merge_unanswerable = [&](const QueryGroup& group) {
    timer.Reset();
    result.answers.AddNull(group.probability);
    result.aggregate_seconds += timer.Lap();
  };
  auto merge_answered = [&](const QueryGroup& group,
                            const relational::Relation& rel,
                            double eval_seconds) -> Status {
    result.source_queries++;
    result.eval_seconds += eval_seconds;
    timer.Reset();
    URM_RETURN_NOT_OK(reformulation::AssembleAnswers(
        rel, group.query.layout, group.probability, &result.answers));
    result.aggregate_seconds += timer.Lap();
    return Status::OK();
  };
  if (exec.parallel() && cache == nullptr) {
    struct GroupEval {
      Result<relational::RelationPtr> rel =
          Status::Internal("group not evaluated");
      algebra::EvalStats stats;
      double seconds = 0.0;
    };
    std::vector<GroupEval> evals(groups.size());
    exec.pool->ParallelFor(groups.size(), [&](size_t i) {
      if (!groups[i].query.answerable) return;
      Timer eval_timer;
      EvalContext ctx;
      ctx.catalog = &catalog;
      ctx.stats = &evals[i].stats;
      evals[i].rel = algebra::Evaluate(groups[i].query.plan, ctx);
      evals[i].seconds = eval_timer.Lap();
    });
    for (size_t i = 0; i < groups.size(); ++i) {
      if (!groups[i].query.answerable) {
        merge_unanswerable(groups[i]);
        continue;
      }
      if (!evals[i].rel.ok()) return evals[i].rel.status();
      result.stats += evals[i].stats;
      URM_RETURN_NOT_OK(merge_answered(groups[i], *evals[i].rel.ValueOrDie(),
                                       evals[i].seconds));
    }
    return result;
  }
  for (const auto& group : groups) {
    if (!group.query.answerable) {
      merge_unanswerable(group);
      continue;
    }
    timer.Reset();
    EvalContext ctx;
    ctx.catalog = &catalog;
    ctx.stats = &result.stats;
    ctx.cache = cache;
    ctx.cache_filter = filter;
    auto rel = algebra::Evaluate(group.query.plan, ctx);
    if (!rel.ok()) return rel.status();
    URM_RETURN_NOT_OK(merge_answered(group, *rel.ValueOrDie(), timer.Lap()));
  }
  return result;
}

}  // namespace

Result<MethodResult> RunBasic(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const ExecOptions& exec) {
  MethodResult result;
  Timer timer;
  auto groups =
      BuildGroups(info, mappings, catalog, reformulator, false);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), nullptr, nullptr, exec);
}

Result<MethodResult> RunEBasic(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const ExecOptions& exec) {
  MethodResult result;
  Timer timer;
  auto groups = BuildGroups(info, mappings, catalog, reformulator, true);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  result.partitions = groups.ValueOrDie().size();
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), nullptr, nullptr, exec);
}

Result<MethodResult> RunEMqo(
    const TargetQueryInfo& info,
    const std::vector<WeightedMapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const ExecOptions& exec) {
  (void)exec;  // see header: the shared memo forces sequential order
  MethodResult result;
  Timer timer;
  auto groups = BuildGroups(info, mappings, catalog, reformulator, true);
  if (!groups.ok()) return groups.status();
  result.rewrite_seconds = timer.Lap();
  result.partitions = groups.ValueOrDie().size();

  std::vector<PlanPtr> plans;
  for (const auto& g : groups.ValueOrDie()) {
    if (g.query.answerable) plans.push_back(g.query.plan);
  }
  timer.Reset();
  auto mqo = GenerateGlobalPlan(plans, catalog);
  if (!mqo.ok()) return mqo.status();
  result.plan_seconds = timer.Lap();

  algebra::EvalCache cache;
  return ExecuteGroups(info, std::move(groups).ValueOrDie(), catalog,
                       std::move(result), &cache,
                       &mqo.ValueOrDie().materialized);
}

}  // namespace baselines
}  // namespace urm
