#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

/// \file listener.h
/// POSIX socket plumbing for the server's poll loop: a non-blocking
/// TCP listen socket (IPv4; port 0 binds an ephemeral port and reports
/// the real one) and a self-pipe for waking the loop from other
/// threads and from signal handlers (the write end is
/// async-signal-safe).

namespace urm {
namespace net {

struct ListenerOptions {
  /// Dotted-quad address to bind; "0.0.0.0" for all interfaces.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the real port back from port()).
  uint16_t port = 0;
  int backlog = 128;
};

/// \brief Non-blocking TCP listen socket.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; on success the listener polls readable on fd().
  Status Open(const ListenerOptions& options);

  /// One accepted connection: a non-blocking, TCP_NODELAY socket plus
  /// the peer's address ("ip:port" — the DosGuard client key is the ip
  /// part).
  struct Accepted {
    int fd = -1;
    std::string peer_address;  ///< "127.0.0.1:54321"
    std::string client_ip;     ///< "127.0.0.1"
  };

  /// Accepts one pending connection. Returns false when none is
  /// pending (EAGAIN) — call again after the next POLLIN.
  bool Accept(Accepted* out);

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }
  bool open() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// \brief Self-pipe wakeup for a poll loop. Wake() may be called from
/// any thread or from a signal handler; the loop polls read_fd() and
/// Drain()s it on wakeup.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void Wake();
  void Drain();
  bool ok() const { return fds_[0] >= 0; }

 private:
  int fds_[2] = {-1, -1};
};

/// Sets O_NONBLOCK (returns false on fcntl failure).
bool SetNonBlocking(int fd);

}  // namespace net
}  // namespace urm
