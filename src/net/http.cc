#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace urm {
namespace net {
namespace http {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* Request::FindHeader(std::string_view name) const {
  for (const Header& header : headers) {
    if (EqualsIgnoreCase(header.name, name)) return &header.value;
  }
  return nullptr;
}

bool Request::HasHeaderToken(std::string_view name,
                             std::string_view token) const {
  const std::string* value = FindHeader(name);
  if (value == nullptr) return false;
  std::string_view rest = *value;
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view piece =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    if (EqualsIgnoreCase(Trim(piece), token)) return true;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return false;
}

bool Request::keep_alive() const {
  if (HasHeaderToken("Connection", "close")) return false;
  if (version == "HTTP/1.0") {
    return HasHeaderToken("Connection", "keep-alive");
  }
  return true;
}

void RequestParser::Fail(int code, std::string reason) {
  state_ = State::kError;
  error_code_ = code;
  error_ = std::move(reason);
}

size_t RequestParser::Feed(std::string_view data) {
  size_t consumed = 0;
  if (state_ == State::kHead) {
    // Accumulate until the blank line; tolerate LF-only endings.
    size_t scan_from = head_.size() >= 3 ? head_.size() - 3 : 0;
    head_.append(data.data(), data.size());
    consumed = data.size();
    size_t end = head_.find("\r\n\r\n", scan_from);
    size_t delim = 4;
    size_t lf_end = head_.find("\n\n", scan_from);
    if (lf_end != std::string::npos &&
        (end == std::string::npos || lf_end < end)) {
      end = lf_end;
      delim = 2;
    }
    if (end == std::string::npos) {
      if (head_.size() > limits_.max_head_bytes) {
        Fail(431, "request head exceeds " +
                      std::to_string(limits_.max_head_bytes) + " bytes");
      }
      return consumed;
    }
    // Everything past the blank line belongs to the body (or the next
    // request); give it back by adjusting `consumed`.
    size_t head_len = end + delim;
    size_t overshoot = head_.size() - head_len;
    consumed -= overshoot;
    head_.resize(head_len);
    if (head_len > limits_.max_head_bytes) {
      Fail(431, "request head exceeds " +
                    std::to_string(limits_.max_head_bytes) + " bytes");
      return consumed;
    }
    ParseHead();
    if (state_ != State::kBody) return consumed;
    data.remove_prefix(consumed);
  }
  if (state_ == State::kBody) {
    size_t want = body_expected_ - request_.body.size();
    size_t take = std::min(want, data.size());
    request_.body.append(data.data(), take);
    consumed += take;
    if (request_.body.size() == body_expected_) state_ = State::kComplete;
  }
  return consumed;
}

void RequestParser::ParseHead() {
  // Split into lines on '\n', stripping a trailing '\r' from each.
  std::vector<std::string_view> lines;
  std::string_view rest = head_;
  while (!rest.empty()) {
    size_t nl = rest.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    Fail(400, "empty request");
    return;
  }

  // Request line: METHOD SP target SP HTTP/x.y
  std::string_view line = lines[0];
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed request line");
    return;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(505, "unsupported HTTP version '" + request_.version + "'");
    return;
  }
  request_.path =
      request_.target.substr(0, request_.target.find_first_of("?#"));

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos || colon == 0) {
      Fail(400, "malformed header line");
      return;
    }
    Header header;
    header.name = std::string(Trim(lines[i].substr(0, colon)));
    header.value = std::string(Trim(lines[i].substr(colon + 1)));
    if (header.name.find(' ') != std::string::npos) {
      Fail(400, "whitespace in header name");
      return;
    }
    request_.headers.push_back(std::move(header));
  }

  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    Fail(501, "Transfer-Encoding is not supported");
    return;
  }
  body_expected_ = 0;
  if (const std::string* length = request_.FindHeader("Content-Length")) {
    if (length->empty() ||
        length->find_first_not_of("0123456789") != std::string::npos ||
        length->size() > 15) {
      Fail(400, "malformed Content-Length");
      return;
    }
    body_expected_ = static_cast<size_t>(std::stoll(*length));
    if (body_expected_ > limits_.max_body_bytes) {
      Fail(413, "body of " + *length + " bytes exceeds limit of " +
                    std::to_string(limits_.max_body_bytes));
      return;
    }
  }
  request_.body.reserve(body_expected_);
  state_ = body_expected_ > 0 ? State::kBody : State::kComplete;
}

void RequestParser::Reset() {
  state_ = State::kHead;
  head_.clear();
  body_expected_ = 0;
  error_code_ = 0;
  error_.clear();
  request_ = Request();
}

Response Response::Json(int code, std::string body) {
  Response r;
  r.code = code;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

Response Response::Text(int code, std::string body) {
  Response r;
  r.code = code;
  // The Prometheus text exposition content type (version 0.0.4).
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = std::move(body);
  return r;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 101: return "Switching Protocols";
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 426: return "Upgrade Required";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const Response& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " " +
                    ReasonPhrase(response.code) + "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const Header& header : response.extra_headers) {
    out += header.name + ": " + header.value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace http
}  // namespace net
}  // namespace urm
