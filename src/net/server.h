#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/connection.h"
#include "net/dosguard.h"
#include "net/http.h"
#include "net/listener.h"
#include "obs/metrics.h"

/// \file server.h
/// The HTTP/1.1 + WebSocket server of the network tier: one poll-loop
/// thread owning the listener and every connection, with all blocking
/// work (query evaluation) pushed onto the QueryService pool and
/// completions marshalled back through a thread-safe post queue. The
/// route table maps exact (method, path) pairs to handlers that
/// respond either inline or later from any thread; a WebSocket route
/// upgrades the connection and delivers client text messages to its
/// handler together with a per-message completion token (the DOS
/// guard holds an in-flight slot until it runs).
///
/// Shutdown is graceful by default: RequestDrain() stops accepting,
/// answers new requests with 503, lets in-flight requests and streams
/// finish and flush, then exits the loop (forcing connections closed
/// only past the drain deadline). Shutdown() does that and joins.
///
/// Thread-safety: Handle*/Start are setup-time (before Start);
/// RequestDrain/Shutdown/Post and every RespondFn / WsSession method
/// may be called from any thread. The server registers its own metric
/// families (connections, bytes, per-route request counts and
/// latency, admission rejections) in the configured registry.

namespace urm {
namespace net {

class WsSession;
/// The server core (loop thread, connections, routes); defined in
/// server.cc. Shared so WsSession producers can outlive the facade.
class ServerImpl;

/// Completes one HTTP exchange; call exactly once, from any thread.
using RespondFn = std::function<void(http::Response)>;

/// Handles one HTTP request on `client_ip`. Runs on the loop thread —
/// do not block; hand heavy work to a pool and call `respond` when
/// done.
using HttpHandler = std::function<void(
    const http::Request& request, const std::string& client_ip,
    RespondFn respond)>;

/// Handles one WebSocket text message. Call `done` exactly once when
/// the message's work has fully completed (it releases the DOS-guard
/// slot and, during drain, lets the server close the session).
using WsMessageHandler = std::function<void(
    std::shared_ptr<WsSession> session, std::string message,
    std::function<void()> done)>;

struct ServerOptions {
  ListenerOptions listener;
  DosGuardOptions dosguard;
  ConnectionLimits connection;
  /// Seconds RequestDrain waits for in-flight work before forcing
  /// connections closed.
  double drain_deadline_seconds = 10.0;
  bool enable_metrics = true;
  /// Null = obs::DefaultRegistry(). Must outlive the server.
  obs::Registry* metrics_registry = nullptr;
};

/// Point-in-time counters of the serving loop.
struct ServerStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t requests_started = 0;
  uint64_t ws_messages_received = 0;
  uint64_t ws_frames_sent = 0;
  size_t open_connections = 0;
  size_t pending_requests = 0;  ///< HTTP + WS work not yet completed
};

/// \brief A live WebSocket stream, shared between the loop thread and
/// whoever produces frames for it (evaluation threads via AnswerSink).
///
/// Send/Close enqueue through the server's post queue; after the
/// connection or server goes away they become no-ops, so producers
/// may outlive the session safely. closed() is the producer-side
/// backpressure/cancellation signal (set when the client disconnects,
/// the connection's output cap trips, or the server drains).
class WsSession {
 public:
  /// One text frame to the client. Thread-safe; silently dropped once
  /// closed.
  void SendText(std::string payload);
  /// Initiates the server-side close handshake. Thread-safe.
  void Close(uint16_t code, const std::string& reason);

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  const std::string& client_ip() const { return client_ip_; }

 private:
  friend class ServerImpl;

  std::shared_ptr<ServerImpl> impl_;  ///< keeps the server core alive
  uint64_t connection_id_ = 0;
  std::string client_ip_;
  std::atomic<bool> closed_{false};
};

class HttpServer {
 public:
  explicit HttpServer(ServerOptions options);
  ~HttpServer();  ///< Shutdown() if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-path route. Setup-time only (before Start).
  void Handle(std::string method, std::string path, HttpHandler handler);
  /// Registers a WebSocket route (GET + Upgrade on `path`; a plain GET
  /// gets 426).
  void HandleWebSocket(std::string path, WsMessageHandler on_message);

  /// Opens the listener and spawns the loop thread.
  Status Start();
  /// The bound port (after Start; ephemeral when options.port == 0).
  uint16_t port() const;

  /// Asks the loop to drain (idempotent, non-blocking, any thread).
  void RequestDrain();
  /// RequestDrain + join the loop thread (blocks until drained or the
  /// drain deadline forces connections closed).
  void Shutdown();
  bool running() const;

  /// Runs `fn` on the loop thread (dropped after shutdown).
  void Post(std::function<void()> fn);

  ServerStats stats() const;
  DosGuardStats dosguard_stats() const;

 private:
  std::shared_ptr<ServerImpl> impl_;
};

/// `{"error":{"code":<code>,"message":<message>}}` — the error body
/// shape shared by the server's own rejections (parse errors, 429,
/// 503) and the API handlers (docs/API.md#errors).
std::string JsonErrorBody(std::string_view code, std::string_view message);

}  // namespace net
}  // namespace urm
