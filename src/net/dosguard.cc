#include "net/dosguard.h"

#include <algorithm>
#include <vector>

namespace urm {
namespace net {

const char* AdmitResultName(AdmitResult result) {
  switch (result) {
    case AdmitResult::kOk: return "ok";
    case AdmitResult::kTooManyConnections: return "too_many_connections";
    case AdmitResult::kTooManyClientConnections:
      return "too_many_client_connections";
    case AdmitResult::kOverloaded: return "overloaded";
    case AdmitResult::kTooManyClientRequests:
      return "too_many_client_requests";
    case AdmitResult::kRateLimited: return "rate_limited";
    default: return "unknown";
  }
}

void DosGuard::Refill(ClientEntry* entry, Clock::time_point now) const {
  if (options_.requests_per_second <= 0.0) return;
  double elapsed =
      std::chrono::duration<double>(now - entry->last_refill).count();
  if (elapsed <= 0.0) return;
  entry->tokens = std::min(options_.burst,
                           entry->tokens +
                               elapsed * options_.requests_per_second);
  entry->last_refill = now;
}

DosGuard::ClientEntry& DosGuard::Touch(const std::string& client,
                                       Clock::time_point now) {
  auto [it, inserted] = clients_.try_emplace(client);
  if (inserted) {
    // New buckets start full: a client's first burst is admitted.
    it->second.tokens = options_.burst;
    it->second.last_refill = now;
  }
  it->second.last_active = now;
  return it->second;
}

void DosGuard::SweepIdle(Clock::time_point now) {
  // At most once per idle period: the map stays small under churn
  // without a periodic timer.
  if (std::chrono::duration<double>(now - last_sweep_).count() <
      options_.idle_entry_seconds) {
    return;
  }
  last_sweep_ = now;
  std::vector<std::string> dead;
  for (auto& [client, entry] : clients_) {
    if (entry.connections == 0 && entry.inflight == 0 &&
        std::chrono::duration<double>(now - entry.last_active).count() >=
            options_.idle_entry_seconds) {
      dead.push_back(client);
    }
  }
  for (const std::string& client : dead) clients_.erase(client);
}

void DosGuard::MaybeErase(const std::string& client) {
  auto it = clients_.find(client);
  if (it != clients_.end() && it->second.connections == 0 &&
      it->second.inflight == 0 &&
      (options_.requests_per_second <= 0.0 ||
       it->second.tokens >= options_.burst)) {
    clients_.erase(it);
  }
}

AdmitResult DosGuard::AdmitConnection(const std::string& client,
                                      Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  SweepIdle(now);
  AdmitResult result = AdmitResult::kOk;
  if (options_.max_connections > 0 &&
      open_connections_ >= options_.max_connections) {
    result = AdmitResult::kTooManyConnections;
  } else {
    ClientEntry& entry = Touch(client, now);
    if (options_.max_connections_per_client > 0 &&
        entry.connections >= options_.max_connections_per_client) {
      result = AdmitResult::kTooManyClientConnections;
    } else {
      ++entry.connections;
      ++open_connections_;
    }
  }
  if (result == AdmitResult::kOk) {
    ++stats_.connections_admitted;
  } else {
    ++stats_.connections_rejected;
  }
  return result;
}

void DosGuard::OnConnectionClosed(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.connections == 0) return;
  --it->second.connections;
  --open_connections_;
  MaybeErase(client);
}

AdmitResult DosGuard::AdmitRequest(const std::string& client,
                                   Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  AdmitResult result = AdmitResult::kOk;
  if (options_.max_inflight_requests > 0 &&
      inflight_requests_ >= options_.max_inflight_requests) {
    result = AdmitResult::kOverloaded;
  } else {
    ClientEntry& entry = Touch(client, now);
    Refill(&entry, now);
    if (options_.max_inflight_per_client > 0 &&
        entry.inflight >= options_.max_inflight_per_client) {
      result = AdmitResult::kTooManyClientRequests;
    } else if (options_.requests_per_second > 0.0 && entry.tokens < 1.0) {
      result = AdmitResult::kRateLimited;
    } else {
      if (options_.requests_per_second > 0.0) entry.tokens -= 1.0;
      ++entry.inflight;
      ++inflight_requests_;
    }
  }
  if (result == AdmitResult::kOk) {
    ++stats_.requests_admitted;
  } else {
    ++stats_.requests_rejected;
  }
  return result;
}

void DosGuard::OnRequestDone(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second.inflight == 0) return;
  --it->second.inflight;
  --inflight_requests_;
  // No MaybeErase: keep the bucket so a drained client cannot reset
  // its rate limit by reconnecting.
}

DosGuardStats DosGuard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DosGuardStats out = stats_;
  out.open_connections = open_connections_;
  out.inflight_requests = inflight_requests_;
  out.tracked_clients = clients_.size();
  return out;
}

}  // namespace net
}  // namespace urm
