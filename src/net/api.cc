#include "net/api.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "core/workload.h"
#include "live/ingest.h"
#include "net/http.h"
#include "reformulation/answer.h"

namespace urm {
namespace net {
namespace api {

namespace {

/// The paper workload, resolved once: Q1..Q10 with their target
/// schemas. Plans are immutable shared_ptrs, safe to hand to
/// concurrent evaluations.
const std::vector<core::WorkloadQuery>& Workload() {
  static const std::vector<core::WorkloadQuery>* workload =
      new std::vector<core::WorkloadQuery>(core::PaperWorkload());
  return *workload;
}

const core::WorkloadQuery* FindQuery(const std::string& id) {
  for (const core::WorkloadQuery& q : Workload()) {
    if (q.id == id) return &q;
  }
  return nullptr;
}

bool Fail(ApiError* error, int http_status, std::string code,
          std::string message) {
  error->http_status = http_status;
  error->code = std::move(code);
  error->message = std::move(message);
  return false;
}

bool ParseMethod(const std::string& name, core::Method* out) {
  static const core::Method kAll[] = {
      core::Method::kBasic, core::Method::kEBasic, core::Method::kEMqo,
      core::Method::kQSharing, core::Method::kOSharing};
  for (core::Method m : kAll) {
    if (http::EqualsIgnoreCase(name, core::MethodName(m))) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool ParseSetOp(const std::string& name, core::SetOpKind* out) {
  static const core::SetOpKind kAll[] = {core::SetOpKind::kUnion,
                                         core::SetOpKind::kIntersect,
                                         core::SetOpKind::kExcept};
  for (core::SetOpKind op : kAll) {
    if (http::EqualsIgnoreCase(name, core::SetOpName(op))) {
      *out = op;
      return true;
    }
  }
  return false;
}

/// Member as a string, or nullptr when absent / not a string.
const std::string* FindString(const json::Value& object,
                              std::string_view key) {
  const json::Value* v = object.Find(key);
  if (v == nullptr || !v->is_string()) return nullptr;
  return &v->AsString();
}

bool ParseTargetSchema(const std::string& name,
                       datagen::TargetSchemaId* out) {
  for (datagen::TargetSchemaId id : datagen::AllTargetSchemas()) {
    if (http::EqualsIgnoreCase(name, datagen::TargetSchemaName(id))) {
      *out = id;
      return true;
    }
  }
  return false;
}

/// One JSON row cell onto a relational value. Numbers map to Int64
/// when integral, Double otherwise; booleans have no relational type.
bool ParseCell(const json::Value& cell, relational::Value* out) {
  if (cell.is_null()) {
    *out = relational::Value::Null();
    return true;
  }
  if (cell.is_string()) {
    *out = relational::Value(cell.AsString());
    return true;
  }
  if (cell.is_number()) {
    *out = cell.is_integral() ? relational::Value(cell.AsInt64())
                              : relational::Value(cell.AsDouble());
    return true;
  }
  return false;
}

bool ParseDeltaRow(const json::Value& row_json, relational::Row* out) {
  if (!row_json.is_array()) return false;
  out->clear();
  out->reserve(row_json.AsArray().size());
  for (const json::Value& cell : row_json.AsArray()) {
    relational::Value value;
    if (!ParseCell(cell, &value)) return false;
    out->push_back(std::move(value));
  }
  return true;
}

json::Value CellToJson(const relational::Value& cell) {
  switch (cell.type()) {
    case relational::ValueType::kNull:
      return json::Value::Null();
    case relational::ValueType::kInt64:
      return json::Value::Int(cell.AsInt64());
    case relational::ValueType::kDouble:
      return json::Value::Number(cell.AsDouble());
    case relational::ValueType::kString:
      return json::Value::Str(cell.AsString());
  }
  return json::Value::Null();
}

json::Value EvaluateResultJson(const baselines::MethodResult& result,
                               size_t max_rows) {
  json::Value out = json::Value::Object();
  json::Value columns = json::Value::Array();
  for (const std::string& name : result.answers.column_names()) {
    columns.Append(json::Value::Str(name));
  }
  out.Set("columns", std::move(columns));
  const auto& tuples = result.answers.tuples();
  json::Value rows = json::Value::Array();
  size_t emitted = 0;
  for (const auto& tuple : tuples) {
    if (emitted >= max_rows) break;
    json::Value row = json::Value::Object();
    row.Set("values", RowToJson(tuple.values));
    row.Set("probability", json::Value::Number(tuple.probability));
    rows.Append(std::move(row));
    ++emitted;
  }
  out.Set("tuples", std::move(rows));
  out.Set("row_count", json::Value::Int(static_cast<int64_t>(tuples.size())));
  if (emitted < tuples.size()) out.Set("truncated", json::Value::Bool(true));
  out.Set("null_probability",
          json::Value::Number(result.answers.null_probability()));
  out.Set("total_seconds", json::Value::Number(result.TotalSeconds()));
  out.Set("source_queries",
          json::Value::Int(static_cast<int64_t>(result.source_queries)));
  out.Set("partitions",
          json::Value::Int(static_cast<int64_t>(result.partitions)));
  return out;
}

template <typename Entries>
json::Value BoundedTuplesJson(const Entries& entries, size_t max_rows,
                              size_t* emitted) {
  json::Value rows = json::Value::Array();
  *emitted = 0;
  for (const auto& entry : entries) {
    if (*emitted >= max_rows) break;
    json::Value row = json::Value::Object();
    row.Set("values", RowToJson(entry.values));
    row.Set("lower_bound", json::Value::Number(entry.lower_bound));
    row.Set("upper_bound", json::Value::Number(entry.upper_bound));
    rows.Append(std::move(row));
    ++(*emitted);
  }
  return rows;
}

json::Value TopKResultJson(const topk::TopKResult& result, size_t max_rows) {
  json::Value out = json::Value::Object();
  size_t emitted = 0;
  out.Set("tuples", BoundedTuplesJson(result.tuples, max_rows, &emitted));
  out.Set("row_count",
          json::Value::Int(static_cast<int64_t>(result.tuples.size())));
  if (emitted < result.tuples.size()) {
    out.Set("truncated", json::Value::Bool(true));
  }
  out.Set("early_terminated", json::Value::Bool(result.early_terminated));
  out.Set("leaves_visited",
          json::Value::Int(static_cast<int64_t>(result.leaves_visited)));
  out.Set("seconds", json::Value::Number(result.seconds));
  return out;
}

json::Value ThresholdResultJson(const topk::ThresholdResult& result,
                                size_t max_rows) {
  json::Value out = json::Value::Object();
  size_t emitted = 0;
  out.Set("tuples", BoundedTuplesJson(result.tuples, max_rows, &emitted));
  out.Set("row_count",
          json::Value::Int(static_cast<int64_t>(result.tuples.size())));
  if (emitted < result.tuples.size()) {
    out.Set("truncated", json::Value::Bool(true));
  }
  out.Set("early_terminated", json::Value::Bool(result.early_terminated));
  out.Set("leaves_visited",
          json::Value::Int(static_cast<int64_t>(result.leaves_visited)));
  out.Set("seconds", json::Value::Number(result.seconds));
  return out;
}

std::string WsErrorFrame(std::string_view code, std::string_view message) {
  json::Value error = json::Value::Object();
  error.Set("code", json::Value::Str(std::string(code)));
  error.Set("message", json::Value::Str(std::string(message)));
  json::Value root = json::Value::Object();
  root.Set("type", json::Value::Str("error"));
  root.Set("error", std::move(error));
  return root.Serialize();
}

/// Streams u-trace leaves onto the WebSocket as {"type":"leaf"}
/// frames. Runs on the evaluating thread; unsubscribes (returns false)
/// once the session closes so an abandoned stream stops paying the
/// serialization cost.
class StreamSink : public core::AnswerSink {
 public:
  explicit StreamSink(std::shared_ptr<WsSession> session)
      : session_(std::move(session)) {}

  bool OnAnswer(const std::vector<relational::Row>& rows,
                double probability) override {
    if (session_->closed()) return false;
    json::Value frame = json::Value::Object();
    frame.Set("type", json::Value::Str("leaf"));
    frame.Set("seq", json::Value::Int(static_cast<int64_t>(seq_)));
    frame.Set("probability", json::Value::Number(probability));
    json::Value rows_json = json::Value::Array();
    for (const relational::Row& row : rows) rows_json.Append(RowToJson(row));
    frame.Set("rows", std::move(rows_json));
    session_->SendText(frame.Serialize());
    ++seq_;
    return true;
  }

  size_t leaves() const { return seq_; }

 private:
  std::shared_ptr<WsSession> session_;
  size_t seq_ = 0;
};

json::Value StatsJson(HttpServer* server, ServiceHub* hub) {
  json::Value root = json::Value::Object();

  ServerStats server_stats = server->stats();
  json::Value srv = json::Value::Object();
  srv.Set("open_connections",
          json::Value::Int(static_cast<int64_t>(server_stats.open_connections)));
  srv.Set("pending_requests",
          json::Value::Int(static_cast<int64_t>(server_stats.pending_requests)));
  srv.Set("requests_started",
          json::Value::Int(static_cast<int64_t>(server_stats.requests_started)));
  srv.Set("ws_messages_received",
          json::Value::Int(
              static_cast<int64_t>(server_stats.ws_messages_received)));
  srv.Set("ws_frames_sent",
          json::Value::Int(static_cast<int64_t>(server_stats.ws_frames_sent)));
  srv.Set("bytes_read",
          json::Value::Int(static_cast<int64_t>(server_stats.bytes_read)));
  srv.Set("bytes_written",
          json::Value::Int(static_cast<int64_t>(server_stats.bytes_written)));
  root.Set("server", std::move(srv));

  DosGuardStats guard = server->dosguard_stats();
  json::Value guard_json = json::Value::Object();
  guard_json.Set("connections_admitted",
                 json::Value::Int(static_cast<int64_t>(guard.connections_admitted)));
  guard_json.Set("connections_rejected",
                 json::Value::Int(static_cast<int64_t>(guard.connections_rejected)));
  guard_json.Set("requests_admitted",
                 json::Value::Int(static_cast<int64_t>(guard.requests_admitted)));
  guard_json.Set("requests_rejected",
                 json::Value::Int(static_cast<int64_t>(guard.requests_rejected)));
  guard_json.Set("tracked_clients",
                 json::Value::Int(static_cast<int64_t>(guard.tracked_clients)));
  root.Set("dosguard", std::move(guard_json));

  // Two phases: per-service blocks are built under VisitServices (hubs
  // hold their registry lock across the visit), then the ingest blocks
  // are attached via IngestFor AFTER the visit returns — IngestFor
  // takes the same hub lock, so calling it from inside the visit
  // callback would self-deadlock.
  std::vector<std::pair<datagen::TargetSchemaId, json::Value>> entries;
  hub->VisitServices([&entries](datagen::TargetSchemaId id,
                                service::QueryService* svc) {
    json::Value entry = json::Value::Object();
    entry.Set("schema", json::Value::Str(datagen::TargetSchemaName(id)));
    service::CacheStats cache = svc->cache_stats();
    json::Value cache_json = json::Value::Object();
    cache_json.Set("hits", json::Value::Int(static_cast<int64_t>(cache.hits)));
    cache_json.Set("misses",
                   json::Value::Int(static_cast<int64_t>(cache.misses)));
    cache_json.Set("entries",
                   json::Value::Int(static_cast<int64_t>(cache.entries)));
    cache_json.Set("bytes", json::Value::Int(static_cast<int64_t>(cache.bytes)));
    entry.Set("cache", std::move(cache_json));
    PoolStats pool = svc->pool_stats();
    json::Value pool_json = json::Value::Object();
    pool_json.Set("threads",
                  json::Value::Int(static_cast<int64_t>(pool.threads)));
    pool_json.Set("queue_depth",
                  json::Value::Int(static_cast<int64_t>(pool.queue_depth)));
    pool_json.Set("tasks_executed",
                  json::Value::Int(static_cast<int64_t>(pool.tasks_executed)));
    entry.Set("pool", std::move(pool_json));
    osharing::OperatorStoreStats store = svc->operator_store_stats();
    json::Value store_json = json::Value::Object();
    store_json.Set("hits", json::Value::Int(static_cast<int64_t>(store.hits)));
    store_json.Set("misses",
                   json::Value::Int(static_cast<int64_t>(store.misses)));
    store_json.Set("bytes_reused",
                   json::Value::Int(static_cast<int64_t>(store.bytes_reused)));
    entry.Set("operator_store", std::move(store_json));
    // Compressed-storage footprint of the schema's catalog plus the
    // service's scan-byte accounting (see docs/STORAGE.md and the
    // docs/TUNING.md glossary).
    relational::Catalog::StorageStats storage =
        svc->engine().catalog().Storage();
    service::QueryService::StorageScanStats scans =
        svc->storage_scan_stats();
    json::Value storage_json = json::Value::Object();
    storage_json.Set(
        "encoded_bytes",
        json::Value::Int(static_cast<int64_t>(storage.encoded_bytes)));
    storage_json.Set(
        "logical_bytes",
        json::Value::Int(static_cast<int64_t>(storage.logical_bytes)));
    storage_json.Set(
        "compression_ratio",
        json::Value::Number(
            storage.encoded_bytes > 0
                ? static_cast<double>(storage.logical_bytes) /
                      static_cast<double>(storage.encoded_bytes)
                : 1.0));
    storage_json.Set(
        "bytes_scanned",
        json::Value::Int(static_cast<int64_t>(scans.bytes_scanned)));
    storage_json.Set("logical_bytes_scanned",
                     json::Value::Int(static_cast<int64_t>(
                         scans.logical_bytes_scanned)));
    storage_json.Set(
        "columnar_scans",
        json::Value::Int(static_cast<int64_t>(scans.columnar_scans)));
    storage_json.Set(
        "row_scans",
        json::Value::Int(static_cast<int64_t>(scans.row_scans)));
    entry.Set("storage", std::move(storage_json));
    entries.emplace_back(id, std::move(entry));
  });
  json::Value schemas = json::Value::Array();
  for (auto& [id, entry] : entries) {
    // Live-update accounting, when this hub serves ingest (see
    // docs/LIVE.md).
    if (live::IngestController* ingest = hub->IngestFor(id)) {
      live::IngestStats in = ingest->stats();
      json::Value ingest_json = json::Value::Object();
      ingest_json.Set("batches",
                      json::Value::Int(static_cast<int64_t>(in.batches)));
      ingest_json.Set(
          "rejected_batches",
          json::Value::Int(static_cast<int64_t>(in.rejected_batches)));
      ingest_json.Set(
          "rows_inserted",
          json::Value::Int(static_cast<int64_t>(in.rows_inserted)));
      ingest_json.Set(
          "rows_updated",
          json::Value::Int(static_cast<int64_t>(in.rows_updated)));
      ingest_json.Set(
          "rows_deleted",
          json::Value::Int(static_cast<int64_t>(in.rows_deleted)));
      ingest_json.Set(
          "fenced_answers",
          json::Value::Int(static_cast<int64_t>(in.fenced_answers)));
      ingest_json.Set(
          "fenced_operators",
          json::Value::Int(static_cast<int64_t>(in.fenced_operators)));
      ingest_json.Set(
          "reconfigurations",
          json::Value::Int(static_cast<int64_t>(in.reconfigurations)));
      ingest_json.Set("data_epoch",
                      json::Value::Int(static_cast<int64_t>(in.data_epoch)));
      entry.Set("ingest", std::move(ingest_json));
    }
    schemas.Append(std::move(entry));
  }
  root.Set("schemas", std::move(schemas));
  return root;
}

}  // namespace

json::Value RowToJson(const relational::Row& row) {
  json::Value out = json::Value::Array();
  for (const relational::Value& cell : row) out.Append(CellToJson(cell));
  return out;
}

bool ParseQueryBody(const std::string& body, ParsedQuery* out,
                    ApiError* error) {
  Result<json::Value> parsed = json::Parse(body);
  if (!parsed.ok()) {
    return Fail(error, 400, "bad_json", parsed.status().message());
  }
  const json::Value& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return Fail(error, 400, "bad_json", "request body must be a JSON object");
  }

  const json::Value* version = root.Find("version");
  if (version == nullptr) {
    return Fail(error, 400, "missing_version",
                "request must carry \"version\": 1");
  }
  if (!version->is_number() || version->AsInt64() != 1 ||
      version->AsDouble() != 1.0) {
    return Fail(error, 400, "unsupported_version",
                "this server supports API version 1");
  }

  const std::string* query_id = FindString(root, "query");
  if (query_id == nullptr) {
    return Fail(error, 400, "missing_query",
                "request must name a workload query, e.g. \"query\": \"Q4\"");
  }
  const core::WorkloadQuery* query = FindQuery(*query_id);
  if (query == nullptr) {
    return Fail(error, 404, "unknown_query",
                "unknown query '" + *query_id + "' (known: Q1..Q10)");
  }
  out->query_id = query->id;
  out->schema = query->schema;

  std::string kind = "evaluate";
  if (const std::string* k = FindString(root, "kind")) kind = *k;

  if (kind == "evaluate") {
    core::Method method = core::Method::kOSharing;
    if (const std::string* name = FindString(root, "method")) {
      if (!ParseMethod(*name, &method)) {
        return Fail(error, 400, "bad_method",
                    "unknown method '" + *name +
                        "' (one of: basic, e-basic, e-MQO, q-sharing, "
                        "o-sharing)");
      }
    } else if (root.Find("method") != nullptr) {
      return Fail(error, 400, "bad_method", "\"method\" must be a string");
    }
    out->request = core::Request::MethodEval(query->query, method);
  } else if (kind == "topk") {
    const json::Value* k = root.Find("k");
    if (k == nullptr || !k->is_number() || k->AsDouble() < 1.0 ||
        k->AsDouble() != static_cast<double>(k->AsInt64())) {
      return Fail(error, 400, "bad_k",
                  "topk requires an integer \"k\" >= 1");
    }
    out->request =
        core::Request::TopK(query->query, static_cast<size_t>(k->AsInt64()));
  } else if (kind == "setop") {
    const std::string* right_id = FindString(root, "right");
    if (right_id == nullptr) {
      return Fail(error, 400, "missing_right",
                  "setop requires \"right\": a workload query id");
    }
    const core::WorkloadQuery* right = FindQuery(*right_id);
    if (right == nullptr) {
      return Fail(error, 404, "unknown_query",
                  "unknown query '" + *right_id + "' (known: Q1..Q10)");
    }
    if (right->schema != query->schema) {
      return Fail(error, 400, "cross_schema_set_op",
                  "setop operands must target the same schema (" +
                      std::string(datagen::TargetSchemaName(query->schema)) +
                      " vs " +
                      std::string(datagen::TargetSchemaName(right->schema)) +
                      ")");
    }
    core::SetOpKind op = core::SetOpKind::kUnion;
    if (const std::string* name = FindString(root, "set_op")) {
      if (!ParseSetOp(*name, &op)) {
        return Fail(error, 400, "bad_set_op",
                    "unknown set_op '" + *name +
                        "' (one of: union, intersect, except)");
      }
    }
    out->request = core::Request::SetOp(query->query, right->query, op);
  } else if (kind == "threshold") {
    const json::Value* threshold = root.Find("threshold");
    if (threshold == nullptr || !threshold->is_number() ||
        threshold->AsDouble() <= 0.0 || threshold->AsDouble() > 1.0) {
      return Fail(error, 400, "bad_threshold",
                  "threshold requires \"threshold\" in (0, 1]");
    }
    out->request =
        core::Request::Threshold(query->query, threshold->AsDouble());
  } else {
    return Fail(error, 400, "bad_kind",
                "unknown kind '" + kind +
                    "' (one of: evaluate, topk, setop, threshold)");
  }

  Status valid = core::ValidateRequest(out->request);
  if (!valid.ok()) {
    return Fail(error, 400, "invalid_request", valid.message());
  }
  return true;
}

bool ParseIngestBody(const std::string& body, size_t max_ops,
                     ParsedIngest* out, ApiError* error) {
  Result<json::Value> parsed = json::Parse(body);
  if (!parsed.ok()) {
    return Fail(error, 400, "bad_json", parsed.status().message());
  }
  const json::Value& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return Fail(error, 400, "bad_json", "request body must be a JSON object");
  }

  const json::Value* version = root.Find("version");
  if (version == nullptr) {
    return Fail(error, 400, "missing_version",
                "request must carry \"version\": 1");
  }
  if (!version->is_number() || version->AsInt64() != 1 ||
      version->AsDouble() != 1.0) {
    return Fail(error, 400, "unsupported_version",
                "this server supports API version 1");
  }

  out->schema = datagen::TargetSchemaId::kExcel;
  if (const std::string* schema = FindString(root, "schema")) {
    if (!ParseTargetSchema(*schema, &out->schema)) {
      return Fail(error, 404, "unknown_schema",
                  "unknown target schema '" + *schema +
                      "' (one of: Excel, Noris, Paragon)");
    }
  } else if (root.Find("schema") != nullptr) {
    return Fail(error, 400, "bad_schema", "\"schema\" must be a string");
  }

  const json::Value* ops = root.Find("ops");
  if (ops == nullptr || !ops->is_array() || ops->AsArray().empty()) {
    return Fail(error, 400, "missing_ops",
                "request must carry a non-empty \"ops\" array");
  }
  if (max_ops > 0 && ops->AsArray().size() > max_ops) {
    return Fail(error, 413, "batch_too_large",
                "batch of " + std::to_string(ops->AsArray().size()) +
                    " ops exceeds the limit of " + std::to_string(max_ops));
  }

  out->batch.ops.clear();
  out->batch.ops.reserve(ops->AsArray().size());
  for (const json::Value& op_json : ops->AsArray()) {
    if (!op_json.is_object()) {
      return Fail(error, 400, "bad_op", "each op must be a JSON object");
    }
    relational::DeltaOp op;
    const std::string* kind = FindString(op_json, "op");
    if (kind == nullptr) {
      return Fail(error, 400, "bad_op",
                  "each op must carry \"op\": insert | update | delete");
    }
    if (*kind == "insert") {
      op.kind = relational::DeltaOpKind::kInsert;
    } else if (*kind == "update") {
      op.kind = relational::DeltaOpKind::kUpdate;
    } else if (*kind == "delete") {
      op.kind = relational::DeltaOpKind::kDelete;
    } else {
      return Fail(error, 400, "bad_op",
                  "unknown op '" + *kind +
                      "' (one of: insert, update, delete)");
    }
    const std::string* relation = FindString(op_json, "relation");
    if (relation == nullptr) {
      return Fail(error, 400, "bad_op",
                  "each op must name its \"relation\"");
    }
    op.relation = *relation;
    const json::Value* row = op_json.Find("row");
    if (row == nullptr || !ParseDeltaRow(*row, &op.row)) {
      return Fail(error, 400, "bad_op",
                  "each op must carry \"row\": an array of null / number "
                  "/ string cells");
    }
    if (op.kind == relational::DeltaOpKind::kUpdate) {
      const json::Value* new_row = op_json.Find("new_row");
      if (new_row == nullptr || !ParseDeltaRow(*new_row, &op.new_row)) {
        return Fail(error, 400, "bad_op",
                    "update ops must carry \"new_row\": an array of null "
                    "/ number / string cells");
      }
    } else if (op_json.Find("new_row") != nullptr) {
      return Fail(error, 400, "bad_op",
                  "\"new_row\" is only valid on update ops");
    }
    out->batch.ops.push_back(std::move(op));
  }
  return true;
}

void AppendResponseJson(const service::QueryResponse& response,
                        json::Value* target, size_t max_rows) {
  target->Set("kind", json::Value::Str(
                          core::RequestKindName(response.response->kind)));
  target->Set("cache_hit", json::Value::Bool(response.cache_hit));
  target->Set("shared", json::Value::Bool(response.shared_in_batch));
  switch (response.response->kind) {
    case core::RequestKind::kEvaluate:
    case core::RequestKind::kSetOp:
      target->Set("result",
                  EvaluateResultJson(response.response->evaluate, max_rows));
      break;
    case core::RequestKind::kTopK:
      target->Set("result", TopKResultJson(response.response->top_k, max_rows));
      break;
    case core::RequestKind::kThreshold:
      target->Set("result",
                  ThresholdResultJson(response.response->threshold, max_rows));
      break;
  }
}

void RegisterRoutes(HttpServer* server, ServiceHub* hub, ApiOptions options) {
  obs::Registry* registry = options.metrics_registry != nullptr
                                ? options.metrics_registry
                                : &obs::DefaultRegistry();
  const size_t max_rows = options.max_rows;

  server->Handle("GET", "/metrics",
                 [registry](const http::Request&, const std::string&,
                            RespondFn respond) {
                   respond(http::Response::Text(200, registry->ExposeText()));
                 });

  server->Handle("GET", "/v1/stats",
                 [server, hub](const http::Request&, const std::string&,
                               RespondFn respond) {
                   respond(http::Response::Json(
                       200, StatsJson(server, hub).Serialize()));
                 });

  server->Handle(
      "POST", "/v1/query",
      [hub, max_rows](const http::Request& request, const std::string&,
                      RespondFn respond) {
        ParsedQuery parsed;
        ApiError error;
        if (!ParseQueryBody(request.body, &parsed, &error)) {
          respond(http::Response::Json(
              error.http_status, JsonErrorBody(error.code, error.message)));
          return;
        }
        service::QueryService* service = hub->ForSchema(parsed.schema);
        if (service == nullptr) {
          respond(http::Response::Json(
              500, JsonErrorBody("internal_error",
                                 "no service for target schema")));
          return;
        }
        std::string query_id = parsed.query_id;
        // The completion callback runs on the evaluating thread (or
        // inline for cache hits); respond marshals back to the loop.
        service->SubmitAsync(
            parsed.request, nullptr,
            [respond, query_id, max_rows](
                const service::QueryResponse& outcome) {
              if (!outcome.status.ok()) {
                respond(http::Response::Json(
                    500, JsonErrorBody("evaluation_failed",
                                       outcome.status.message())));
                return;
              }
              json::Value root = json::Value::Object();
              root.Set("query", json::Value::Str(query_id));
              AppendResponseJson(outcome, &root, max_rows);
              respond(http::Response::Json(200, root.Serialize()));
            });
      });

  const size_t max_ingest_ops = options.max_ingest_ops;
  server->Handle(
      "POST", "/v1/ingest",
      [hub, max_ingest_ops](const http::Request& request, const std::string&,
                            RespondFn respond) {
        ParsedIngest parsed;
        ApiError error;
        if (!ParseIngestBody(request.body, max_ingest_ops, &parsed, &error)) {
          respond(http::Response::Json(
              error.http_status, JsonErrorBody(error.code, error.message)));
          return;
        }
        live::IngestController* ingest = hub->IngestFor(parsed.schema);
        if (ingest == nullptr) {
          respond(http::Response::Json(
              501, JsonErrorBody("ingest_unavailable",
                                 "this server does not serve live updates")));
          return;
        }
        service::QueryService* service = hub->ForSchema(parsed.schema);
        if (service == nullptr) {
          respond(http::Response::Json(
              500, JsonErrorBody("internal_error",
                                 "no service for target schema")));
          return;
        }
        // Applying a batch re-encodes columnar backings — never on the
        // loop thread; respond marshals back to the loop.
        auto batch = std::make_shared<relational::DeltaBatch>(
            std::move(parsed.batch));
        service->pool().Submit([ingest, batch, respond] {
          auto applied = ingest->Apply(*batch);
          if (!applied.ok()) {
            const Status& status = applied.status();
            const char* code =
                status.code() == StatusCode::kNotFound ? "unknown_relation"
                                                       : "schema_mismatch";
            respond(http::Response::Json(
                status.code() == StatusCode::kNotFound ? 404 : 400,
                JsonErrorBody(code, status.message())));
            return;
          }
          const live::IngestReport& report = applied.ValueOrDie();
          json::Value root = json::Value::Object();
          root.Set("data_epoch", json::Value::Int(static_cast<int64_t>(
                                     report.data_epoch)));
          json::Value relations = json::Value::Array();
          for (const std::string& name : report.relations) {
            relations.Append(json::Value::Str(name));
          }
          root.Set("relations", std::move(relations));
          json::Value rows = json::Value::Object();
          rows.Set("inserted", json::Value::Int(static_cast<int64_t>(
                                   report.rows_inserted)));
          rows.Set("updated", json::Value::Int(static_cast<int64_t>(
                                  report.rows_updated)));
          rows.Set("deleted", json::Value::Int(static_cast<int64_t>(
                                  report.rows_deleted)));
          root.Set("rows", std::move(rows));
          json::Value fenced = json::Value::Object();
          fenced.Set("answers", json::Value::Int(static_cast<int64_t>(
                                    report.fenced_answers)));
          fenced.Set("operators", json::Value::Int(static_cast<int64_t>(
                                      report.fenced_operators)));
          root.Set("fenced", std::move(fenced));
          root.Set("encode_seconds",
                   json::Value::Number(report.encode_seconds));
          respond(http::Response::Json(200, root.Serialize()));
        });
      });

  server->HandleWebSocket(
      "/v1/stream",
      [hub, max_rows](std::shared_ptr<WsSession> session, std::string message,
                      std::function<void()> done) {
        ParsedQuery parsed;
        ApiError error;
        if (!ParseQueryBody(message, &parsed, &error)) {
          session->SendText(WsErrorFrame(error.code, error.message));
          done();
          return;
        }
        service::QueryService* service = hub->ForSchema(parsed.schema);
        if (service == nullptr) {
          session->SendText(
              WsErrorFrame("internal_error", "no service for target schema"));
          done();
          return;
        }
        auto sink = std::make_shared<StreamSink>(session);
        std::string query_id = parsed.query_id;
        // sink is captured by the callback, keeping it alive for the
        // whole evaluation (callbacks fire after the last OnAnswer).
        service->SubmitAsync(
            parsed.request, sink.get(),
            [session, sink, done, query_id, max_rows](
                const service::QueryResponse& outcome) {
              if (!outcome.status.ok()) {
                session->SendText(WsErrorFrame("evaluation_failed",
                                               outcome.status.message()));
                done();
                return;
              }
              json::Value root = json::Value::Object();
              root.Set("type", json::Value::Str("complete"));
              root.Set("query", json::Value::Str(query_id));
              root.Set("leaves",
                       json::Value::Int(static_cast<int64_t>(sink->leaves())));
              AppendResponseJson(outcome, &root, max_rows);
              session->SendText(root.Serialize());
              done();
            });
      });
}

}  // namespace api
}  // namespace net
}  // namespace urm
