#include "net/api.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "core/workload.h"
#include "net/http.h"
#include "reformulation/answer.h"

namespace urm {
namespace net {
namespace api {

namespace {

/// The paper workload, resolved once: Q1..Q10 with their target
/// schemas. Plans are immutable shared_ptrs, safe to hand to
/// concurrent evaluations.
const std::vector<core::WorkloadQuery>& Workload() {
  static const std::vector<core::WorkloadQuery>* workload =
      new std::vector<core::WorkloadQuery>(core::PaperWorkload());
  return *workload;
}

const core::WorkloadQuery* FindQuery(const std::string& id) {
  for (const core::WorkloadQuery& q : Workload()) {
    if (q.id == id) return &q;
  }
  return nullptr;
}

bool Fail(ApiError* error, int http_status, std::string code,
          std::string message) {
  error->http_status = http_status;
  error->code = std::move(code);
  error->message = std::move(message);
  return false;
}

bool ParseMethod(const std::string& name, core::Method* out) {
  static const core::Method kAll[] = {
      core::Method::kBasic, core::Method::kEBasic, core::Method::kEMqo,
      core::Method::kQSharing, core::Method::kOSharing};
  for (core::Method m : kAll) {
    if (http::EqualsIgnoreCase(name, core::MethodName(m))) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool ParseSetOp(const std::string& name, core::SetOpKind* out) {
  static const core::SetOpKind kAll[] = {core::SetOpKind::kUnion,
                                         core::SetOpKind::kIntersect,
                                         core::SetOpKind::kExcept};
  for (core::SetOpKind op : kAll) {
    if (http::EqualsIgnoreCase(name, core::SetOpName(op))) {
      *out = op;
      return true;
    }
  }
  return false;
}

/// Member as a string, or nullptr when absent / not a string.
const std::string* FindString(const json::Value& object,
                              std::string_view key) {
  const json::Value* v = object.Find(key);
  if (v == nullptr || !v->is_string()) return nullptr;
  return &v->AsString();
}

json::Value CellToJson(const relational::Value& cell) {
  switch (cell.type()) {
    case relational::ValueType::kNull:
      return json::Value::Null();
    case relational::ValueType::kInt64:
      return json::Value::Int(cell.AsInt64());
    case relational::ValueType::kDouble:
      return json::Value::Number(cell.AsDouble());
    case relational::ValueType::kString:
      return json::Value::Str(cell.AsString());
  }
  return json::Value::Null();
}

json::Value EvaluateResultJson(const baselines::MethodResult& result,
                               size_t max_rows) {
  json::Value out = json::Value::Object();
  json::Value columns = json::Value::Array();
  for (const std::string& name : result.answers.column_names()) {
    columns.Append(json::Value::Str(name));
  }
  out.Set("columns", std::move(columns));
  const auto& tuples = result.answers.tuples();
  json::Value rows = json::Value::Array();
  size_t emitted = 0;
  for (const auto& tuple : tuples) {
    if (emitted >= max_rows) break;
    json::Value row = json::Value::Object();
    row.Set("values", RowToJson(tuple.values));
    row.Set("probability", json::Value::Number(tuple.probability));
    rows.Append(std::move(row));
    ++emitted;
  }
  out.Set("tuples", std::move(rows));
  out.Set("row_count", json::Value::Int(static_cast<int64_t>(tuples.size())));
  if (emitted < tuples.size()) out.Set("truncated", json::Value::Bool(true));
  out.Set("null_probability",
          json::Value::Number(result.answers.null_probability()));
  out.Set("total_seconds", json::Value::Number(result.TotalSeconds()));
  out.Set("source_queries",
          json::Value::Int(static_cast<int64_t>(result.source_queries)));
  out.Set("partitions",
          json::Value::Int(static_cast<int64_t>(result.partitions)));
  return out;
}

template <typename Entries>
json::Value BoundedTuplesJson(const Entries& entries, size_t max_rows,
                              size_t* emitted) {
  json::Value rows = json::Value::Array();
  *emitted = 0;
  for (const auto& entry : entries) {
    if (*emitted >= max_rows) break;
    json::Value row = json::Value::Object();
    row.Set("values", RowToJson(entry.values));
    row.Set("lower_bound", json::Value::Number(entry.lower_bound));
    row.Set("upper_bound", json::Value::Number(entry.upper_bound));
    rows.Append(std::move(row));
    ++(*emitted);
  }
  return rows;
}

json::Value TopKResultJson(const topk::TopKResult& result, size_t max_rows) {
  json::Value out = json::Value::Object();
  size_t emitted = 0;
  out.Set("tuples", BoundedTuplesJson(result.tuples, max_rows, &emitted));
  out.Set("row_count",
          json::Value::Int(static_cast<int64_t>(result.tuples.size())));
  if (emitted < result.tuples.size()) {
    out.Set("truncated", json::Value::Bool(true));
  }
  out.Set("early_terminated", json::Value::Bool(result.early_terminated));
  out.Set("leaves_visited",
          json::Value::Int(static_cast<int64_t>(result.leaves_visited)));
  out.Set("seconds", json::Value::Number(result.seconds));
  return out;
}

json::Value ThresholdResultJson(const topk::ThresholdResult& result,
                                size_t max_rows) {
  json::Value out = json::Value::Object();
  size_t emitted = 0;
  out.Set("tuples", BoundedTuplesJson(result.tuples, max_rows, &emitted));
  out.Set("row_count",
          json::Value::Int(static_cast<int64_t>(result.tuples.size())));
  if (emitted < result.tuples.size()) {
    out.Set("truncated", json::Value::Bool(true));
  }
  out.Set("early_terminated", json::Value::Bool(result.early_terminated));
  out.Set("leaves_visited",
          json::Value::Int(static_cast<int64_t>(result.leaves_visited)));
  out.Set("seconds", json::Value::Number(result.seconds));
  return out;
}

std::string WsErrorFrame(std::string_view code, std::string_view message) {
  json::Value error = json::Value::Object();
  error.Set("code", json::Value::Str(std::string(code)));
  error.Set("message", json::Value::Str(std::string(message)));
  json::Value root = json::Value::Object();
  root.Set("type", json::Value::Str("error"));
  root.Set("error", std::move(error));
  return root.Serialize();
}

/// Streams u-trace leaves onto the WebSocket as {"type":"leaf"}
/// frames. Runs on the evaluating thread; unsubscribes (returns false)
/// once the session closes so an abandoned stream stops paying the
/// serialization cost.
class StreamSink : public core::AnswerSink {
 public:
  explicit StreamSink(std::shared_ptr<WsSession> session)
      : session_(std::move(session)) {}

  bool OnAnswer(const std::vector<relational::Row>& rows,
                double probability) override {
    if (session_->closed()) return false;
    json::Value frame = json::Value::Object();
    frame.Set("type", json::Value::Str("leaf"));
    frame.Set("seq", json::Value::Int(static_cast<int64_t>(seq_)));
    frame.Set("probability", json::Value::Number(probability));
    json::Value rows_json = json::Value::Array();
    for (const relational::Row& row : rows) rows_json.Append(RowToJson(row));
    frame.Set("rows", std::move(rows_json));
    session_->SendText(frame.Serialize());
    ++seq_;
    return true;
  }

  size_t leaves() const { return seq_; }

 private:
  std::shared_ptr<WsSession> session_;
  size_t seq_ = 0;
};

json::Value StatsJson(HttpServer* server, ServiceHub* hub) {
  json::Value root = json::Value::Object();

  ServerStats server_stats = server->stats();
  json::Value srv = json::Value::Object();
  srv.Set("open_connections",
          json::Value::Int(static_cast<int64_t>(server_stats.open_connections)));
  srv.Set("pending_requests",
          json::Value::Int(static_cast<int64_t>(server_stats.pending_requests)));
  srv.Set("requests_started",
          json::Value::Int(static_cast<int64_t>(server_stats.requests_started)));
  srv.Set("ws_messages_received",
          json::Value::Int(
              static_cast<int64_t>(server_stats.ws_messages_received)));
  srv.Set("ws_frames_sent",
          json::Value::Int(static_cast<int64_t>(server_stats.ws_frames_sent)));
  srv.Set("bytes_read",
          json::Value::Int(static_cast<int64_t>(server_stats.bytes_read)));
  srv.Set("bytes_written",
          json::Value::Int(static_cast<int64_t>(server_stats.bytes_written)));
  root.Set("server", std::move(srv));

  DosGuardStats guard = server->dosguard_stats();
  json::Value guard_json = json::Value::Object();
  guard_json.Set("connections_admitted",
                 json::Value::Int(static_cast<int64_t>(guard.connections_admitted)));
  guard_json.Set("connections_rejected",
                 json::Value::Int(static_cast<int64_t>(guard.connections_rejected)));
  guard_json.Set("requests_admitted",
                 json::Value::Int(static_cast<int64_t>(guard.requests_admitted)));
  guard_json.Set("requests_rejected",
                 json::Value::Int(static_cast<int64_t>(guard.requests_rejected)));
  guard_json.Set("tracked_clients",
                 json::Value::Int(static_cast<int64_t>(guard.tracked_clients)));
  root.Set("dosguard", std::move(guard_json));

  json::Value schemas = json::Value::Array();
  hub->VisitServices([&schemas](datagen::TargetSchemaId id,
                                service::QueryService* svc) {
    json::Value entry = json::Value::Object();
    entry.Set("schema", json::Value::Str(datagen::TargetSchemaName(id)));
    service::CacheStats cache = svc->cache_stats();
    json::Value cache_json = json::Value::Object();
    cache_json.Set("hits", json::Value::Int(static_cast<int64_t>(cache.hits)));
    cache_json.Set("misses",
                   json::Value::Int(static_cast<int64_t>(cache.misses)));
    cache_json.Set("entries",
                   json::Value::Int(static_cast<int64_t>(cache.entries)));
    cache_json.Set("bytes", json::Value::Int(static_cast<int64_t>(cache.bytes)));
    entry.Set("cache", std::move(cache_json));
    PoolStats pool = svc->pool_stats();
    json::Value pool_json = json::Value::Object();
    pool_json.Set("threads",
                  json::Value::Int(static_cast<int64_t>(pool.threads)));
    pool_json.Set("queue_depth",
                  json::Value::Int(static_cast<int64_t>(pool.queue_depth)));
    pool_json.Set("tasks_executed",
                  json::Value::Int(static_cast<int64_t>(pool.tasks_executed)));
    entry.Set("pool", std::move(pool_json));
    osharing::OperatorStoreStats store = svc->operator_store_stats();
    json::Value store_json = json::Value::Object();
    store_json.Set("hits", json::Value::Int(static_cast<int64_t>(store.hits)));
    store_json.Set("misses",
                   json::Value::Int(static_cast<int64_t>(store.misses)));
    store_json.Set("bytes_reused",
                   json::Value::Int(static_cast<int64_t>(store.bytes_reused)));
    entry.Set("operator_store", std::move(store_json));
    // Compressed-storage footprint of the schema's catalog plus the
    // service's scan-byte accounting (see docs/STORAGE.md and the
    // docs/TUNING.md glossary).
    relational::Catalog::StorageStats storage =
        svc->engine().catalog().Storage();
    service::QueryService::StorageScanStats scans =
        svc->storage_scan_stats();
    json::Value storage_json = json::Value::Object();
    storage_json.Set(
        "encoded_bytes",
        json::Value::Int(static_cast<int64_t>(storage.encoded_bytes)));
    storage_json.Set(
        "logical_bytes",
        json::Value::Int(static_cast<int64_t>(storage.logical_bytes)));
    storage_json.Set(
        "compression_ratio",
        json::Value::Number(
            storage.encoded_bytes > 0
                ? static_cast<double>(storage.logical_bytes) /
                      static_cast<double>(storage.encoded_bytes)
                : 1.0));
    storage_json.Set(
        "bytes_scanned",
        json::Value::Int(static_cast<int64_t>(scans.bytes_scanned)));
    storage_json.Set("logical_bytes_scanned",
                     json::Value::Int(static_cast<int64_t>(
                         scans.logical_bytes_scanned)));
    storage_json.Set(
        "columnar_scans",
        json::Value::Int(static_cast<int64_t>(scans.columnar_scans)));
    storage_json.Set(
        "row_scans",
        json::Value::Int(static_cast<int64_t>(scans.row_scans)));
    entry.Set("storage", std::move(storage_json));
    schemas.Append(std::move(entry));
  });
  root.Set("schemas", std::move(schemas));
  return root;
}

}  // namespace

json::Value RowToJson(const relational::Row& row) {
  json::Value out = json::Value::Array();
  for (const relational::Value& cell : row) out.Append(CellToJson(cell));
  return out;
}

bool ParseQueryBody(const std::string& body, ParsedQuery* out,
                    ApiError* error) {
  Result<json::Value> parsed = json::Parse(body);
  if (!parsed.ok()) {
    return Fail(error, 400, "bad_json", parsed.status().message());
  }
  const json::Value& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return Fail(error, 400, "bad_json", "request body must be a JSON object");
  }

  const json::Value* version = root.Find("version");
  if (version == nullptr) {
    return Fail(error, 400, "missing_version",
                "request must carry \"version\": 1");
  }
  if (!version->is_number() || version->AsInt64() != 1 ||
      version->AsDouble() != 1.0) {
    return Fail(error, 400, "unsupported_version",
                "this server supports API version 1");
  }

  const std::string* query_id = FindString(root, "query");
  if (query_id == nullptr) {
    return Fail(error, 400, "missing_query",
                "request must name a workload query, e.g. \"query\": \"Q4\"");
  }
  const core::WorkloadQuery* query = FindQuery(*query_id);
  if (query == nullptr) {
    return Fail(error, 404, "unknown_query",
                "unknown query '" + *query_id + "' (known: Q1..Q10)");
  }
  out->query_id = query->id;
  out->schema = query->schema;

  std::string kind = "evaluate";
  if (const std::string* k = FindString(root, "kind")) kind = *k;

  if (kind == "evaluate") {
    core::Method method = core::Method::kOSharing;
    if (const std::string* name = FindString(root, "method")) {
      if (!ParseMethod(*name, &method)) {
        return Fail(error, 400, "bad_method",
                    "unknown method '" + *name +
                        "' (one of: basic, e-basic, e-MQO, q-sharing, "
                        "o-sharing)");
      }
    } else if (root.Find("method") != nullptr) {
      return Fail(error, 400, "bad_method", "\"method\" must be a string");
    }
    out->request = core::Request::MethodEval(query->query, method);
  } else if (kind == "topk") {
    const json::Value* k = root.Find("k");
    if (k == nullptr || !k->is_number() || k->AsDouble() < 1.0 ||
        k->AsDouble() != static_cast<double>(k->AsInt64())) {
      return Fail(error, 400, "bad_k",
                  "topk requires an integer \"k\" >= 1");
    }
    out->request =
        core::Request::TopK(query->query, static_cast<size_t>(k->AsInt64()));
  } else if (kind == "setop") {
    const std::string* right_id = FindString(root, "right");
    if (right_id == nullptr) {
      return Fail(error, 400, "missing_right",
                  "setop requires \"right\": a workload query id");
    }
    const core::WorkloadQuery* right = FindQuery(*right_id);
    if (right == nullptr) {
      return Fail(error, 404, "unknown_query",
                  "unknown query '" + *right_id + "' (known: Q1..Q10)");
    }
    if (right->schema != query->schema) {
      return Fail(error, 400, "cross_schema_set_op",
                  "setop operands must target the same schema (" +
                      std::string(datagen::TargetSchemaName(query->schema)) +
                      " vs " +
                      std::string(datagen::TargetSchemaName(right->schema)) +
                      ")");
    }
    core::SetOpKind op = core::SetOpKind::kUnion;
    if (const std::string* name = FindString(root, "set_op")) {
      if (!ParseSetOp(*name, &op)) {
        return Fail(error, 400, "bad_set_op",
                    "unknown set_op '" + *name +
                        "' (one of: union, intersect, except)");
      }
    }
    out->request = core::Request::SetOp(query->query, right->query, op);
  } else if (kind == "threshold") {
    const json::Value* threshold = root.Find("threshold");
    if (threshold == nullptr || !threshold->is_number() ||
        threshold->AsDouble() <= 0.0 || threshold->AsDouble() > 1.0) {
      return Fail(error, 400, "bad_threshold",
                  "threshold requires \"threshold\" in (0, 1]");
    }
    out->request =
        core::Request::Threshold(query->query, threshold->AsDouble());
  } else {
    return Fail(error, 400, "bad_kind",
                "unknown kind '" + kind +
                    "' (one of: evaluate, topk, setop, threshold)");
  }

  Status valid = core::ValidateRequest(out->request);
  if (!valid.ok()) {
    return Fail(error, 400, "invalid_request", valid.message());
  }
  return true;
}

void AppendResponseJson(const service::QueryResponse& response,
                        json::Value* target, size_t max_rows) {
  target->Set("kind", json::Value::Str(
                          core::RequestKindName(response.response->kind)));
  target->Set("cache_hit", json::Value::Bool(response.cache_hit));
  target->Set("shared", json::Value::Bool(response.shared_in_batch));
  switch (response.response->kind) {
    case core::RequestKind::kEvaluate:
    case core::RequestKind::kSetOp:
      target->Set("result",
                  EvaluateResultJson(response.response->evaluate, max_rows));
      break;
    case core::RequestKind::kTopK:
      target->Set("result", TopKResultJson(response.response->top_k, max_rows));
      break;
    case core::RequestKind::kThreshold:
      target->Set("result",
                  ThresholdResultJson(response.response->threshold, max_rows));
      break;
  }
}

void RegisterRoutes(HttpServer* server, ServiceHub* hub, ApiOptions options) {
  obs::Registry* registry = options.metrics_registry != nullptr
                                ? options.metrics_registry
                                : &obs::DefaultRegistry();
  const size_t max_rows = options.max_rows;

  server->Handle("GET", "/metrics",
                 [registry](const http::Request&, const std::string&,
                            RespondFn respond) {
                   respond(http::Response::Text(200, registry->ExposeText()));
                 });

  server->Handle("GET", "/v1/stats",
                 [server, hub](const http::Request&, const std::string&,
                               RespondFn respond) {
                   respond(http::Response::Json(
                       200, StatsJson(server, hub).Serialize()));
                 });

  server->Handle(
      "POST", "/v1/query",
      [hub, max_rows](const http::Request& request, const std::string&,
                      RespondFn respond) {
        ParsedQuery parsed;
        ApiError error;
        if (!ParseQueryBody(request.body, &parsed, &error)) {
          respond(http::Response::Json(
              error.http_status, JsonErrorBody(error.code, error.message)));
          return;
        }
        service::QueryService* service = hub->ForSchema(parsed.schema);
        if (service == nullptr) {
          respond(http::Response::Json(
              500, JsonErrorBody("internal_error",
                                 "no service for target schema")));
          return;
        }
        std::string query_id = parsed.query_id;
        // The completion callback runs on the evaluating thread (or
        // inline for cache hits); respond marshals back to the loop.
        service->SubmitAsync(
            parsed.request, nullptr,
            [respond, query_id, max_rows](
                const service::QueryResponse& outcome) {
              if (!outcome.status.ok()) {
                respond(http::Response::Json(
                    500, JsonErrorBody("evaluation_failed",
                                       outcome.status.message())));
                return;
              }
              json::Value root = json::Value::Object();
              root.Set("query", json::Value::Str(query_id));
              AppendResponseJson(outcome, &root, max_rows);
              respond(http::Response::Json(200, root.Serialize()));
            });
      });

  server->HandleWebSocket(
      "/v1/stream",
      [hub, max_rows](std::shared_ptr<WsSession> session, std::string message,
                      std::function<void()> done) {
        ParsedQuery parsed;
        ApiError error;
        if (!ParseQueryBody(message, &parsed, &error)) {
          session->SendText(WsErrorFrame(error.code, error.message));
          done();
          return;
        }
        service::QueryService* service = hub->ForSchema(parsed.schema);
        if (service == nullptr) {
          session->SendText(
              WsErrorFrame("internal_error", "no service for target schema"));
          done();
          return;
        }
        auto sink = std::make_shared<StreamSink>(session);
        std::string query_id = parsed.query_id;
        // sink is captured by the callback, keeping it alive for the
        // whole evaluation (callbacks fire after the last OnAnswer).
        service->SubmitAsync(
            parsed.request, sink.get(),
            [session, sink, done, query_id, max_rows](
                const service::QueryResponse& outcome) {
              if (!outcome.status.ok()) {
                session->SendText(WsErrorFrame("evaluation_failed",
                                               outcome.status.message()));
                done();
                return;
              }
              json::Value root = json::Value::Object();
              root.Set("type", json::Value::Str("complete"));
              root.Set("query", json::Value::Str(query_id));
              root.Set("leaves",
                       json::Value::Int(static_cast<int64_t>(sink->leaves())));
              AppendResponseJson(outcome, &root, max_rows);
              session->SendText(root.Serialize());
              done();
            });
      });
}

}  // namespace api
}  // namespace net
}  // namespace urm
