#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "net/http.h"
#include "net/websocket.h"

/// \file connection.h
/// Per-connection state for the server's poll loop: the socket, read/
/// write buffering, the incremental HTTP parser, and — after an
/// upgrade — the WebSocket frame decoder. Connections are owned and
/// driven exclusively by the loop thread; cross-thread completions
/// reference them by id through the server's post queue, never by
/// pointer.

namespace urm {
namespace net {

class WsSession;

struct ConnectionLimits {
  http::ParserLimits parser;
  /// Buffered-output cap: a peer that stops reading while we stream
  /// (e.g. a stalled WebSocket consumer) is disconnected once this
  /// many bytes are queued, rather than growing the buffer without
  /// bound.
  size_t max_outbuf_bytes = 8 * 1024 * 1024;
  /// Buffered-unparsed-input cap (WebSocket mode; in HTTP mode the
  /// parser's own head/body limits bound the buffer).
  size_t max_inbuf_bytes = 2 * 1024 * 1024;
};

/// \brief One accepted client connection.
class Connection {
 public:
  enum class Mode { kHttp, kWebSocket };

  Connection(int fd, uint64_t id, std::string peer_address,
             std::string client_ip, ConnectionLimits limits);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  const std::string& peer_address() const { return peer_address_; }
  const std::string& client_ip() const { return client_ip_; }
  Mode mode() const { return mode_; }

  /// Reads everything the socket has into the input buffer.
  /// Returns false on EOF or a fatal socket error (close the
  /// connection); `*bytes_read` reports what arrived either way.
  bool ReadSome(size_t* bytes_read);

  /// Flushes as much buffered output as the socket accepts. Returns
  /// false on a fatal socket error.
  bool WriteSome(size_t* bytes_written);

  /// Queues bytes to send. Returns false when the output cap is
  /// exceeded — the caller should close the connection.
  bool EnqueueOutput(std::string_view bytes);

  bool want_write() const { return !outbuf_.empty(); }
  bool output_flushed() const { return outbuf_.empty(); }
  size_t buffered_output() const { return outbuf_.size(); }

  /// Unconsumed input bytes (the loop feeds these to the parser or
  /// frame decoder).
  std::string& input() { return inbuf_; }
  bool input_overflow() const {
    return inbuf_.size() > limits_.max_inbuf_bytes;
  }

  http::RequestParser& parser() { return parser_; }
  /// Re-arms the parser for the next request on this keep-alive
  /// connection.
  void ResetParser() { parser_.Reset(); }

  /// Switches to WebSocket mode (after the 101 bytes are queued).
  void UpgradeToWebSocket(ws::FrameDecoder::Options options);
  ws::FrameDecoder& ws_decoder() { return *ws_decoder_; }

  /// The streaming session attached after an upgrade (loop thread
  /// only; the session itself is shared with evaluation threads).
  std::shared_ptr<WsSession> ws_session;

  /// One request may be outstanding per connection: while true the
  /// loop neither reads nor parses further input for it (kernel-level
  /// backpressure on pipelining clients).
  bool request_pending = false;
  /// WebSocket messages whose handler has not yet called its `done`
  /// token (drain waits for these).
  size_t active_ws_messages = 0;
  /// Index into the server's WebSocket route table, set at upgrade
  /// (SIZE_MAX = not upgraded through a registered route).
  size_t ws_route_index = static_cast<size_t>(-1);
  /// Close once the output buffer flushes (error responses, WS close
  /// handshake, drain).
  bool close_after_flush = false;
  /// WebSocket close-handshake frame already sent.
  bool ws_close_sent = false;

 private:
  int fd_;
  uint64_t id_;
  std::string peer_address_;
  std::string client_ip_;
  ConnectionLimits limits_;
  Mode mode_ = Mode::kHttp;
  std::string inbuf_;
  std::string outbuf_;
  size_t out_offset_ = 0;  ///< flushed prefix of outbuf_
  http::RequestParser parser_;
  std::unique_ptr<ws::FrameDecoder> ws_decoder_;
};

}  // namespace net
}  // namespace urm
