#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"
#include "net/websocket.h"

namespace urm {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// WebSocket-level rejections use the stream's error frame shape so
/// clients need a single error decoder (docs/API.md#streaming).
std::string WsErrorFrameBody(std::string_view code, std::string_view message) {
  json::Value error = json::Value::Object();
  error.Set("code", json::Value::Str(std::string(code)));
  error.Set("message", json::Value::Str(std::string(message)));
  json::Value root = json::Value::Object();
  root.Set("type", json::Value::Str("error"));
  root.Set("error", std::move(error));
  return root.Serialize();
}

}  // namespace

std::string JsonErrorBody(std::string_view code, std::string_view message) {
  json::Value error = json::Value::Object();
  error.Set("code", json::Value::Str(std::string(code)));
  error.Set("message", json::Value::Str(std::string(message)));
  json::Value root = json::Value::Object();
  root.Set("error", std::move(error));
  return root.Serialize();
}

/// \brief The server core. Everything below runs on the loop thread
/// unless noted; cross-thread entry points are Post/RequestDrainImpl/
/// the stats getters, and completions always re-enter through Post.
class ServerImpl : public std::enable_shared_from_this<ServerImpl> {
 public:
  explicit ServerImpl(ServerOptions options)
      : options_(std::move(options)), dosguard_(options_.dosguard) {}

  // ----- setup (before Start) -----

  ServerOptions options_;
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
  };
  struct WsRoute {
    std::string path;
    WsMessageHandler on_message;
  };
  std::vector<Route> routes_;
  std::vector<WsRoute> ws_routes_;

  // ----- cross-thread state -----

  Listener listener_;
  WakePipe wake_;
  DosGuard dosguard_;
  std::thread loop_thread_;
  std::mutex join_mu_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool accepting_posts_ = true;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint16_t> bound_port_{0};

  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> requests_started_{0};
  std::atomic<uint64_t> ws_messages_received_{0};
  std::atomic<uint64_t> ws_frames_sent_{0};
  std::atomic<size_t> open_connections_{0};
  std::atomic<size_t> pending_{0};

  // ----- loop-thread state -----

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
  Clock::time_point drain_deadline_{};

  // ----- metrics -----

  obs::Registry* registry_ = nullptr;
  obs::CounterFamilyT* http_requests_family_ = nullptr;
  obs::HistogramFamilyT* latency_family_ = nullptr;
  obs::Counter* ws_frames_in_ = nullptr;
  obs::Counter* ws_frames_out_ = nullptr;
  std::vector<uint64_t> callback_ids_;

  // ----- lifecycle -----

  Status Start() {
    if (!wake_.ok()) return Status::Internal("wake pipe unavailable");
    Status status = listener_.Open(options_.listener);
    if (!status.ok()) return status;
    bound_port_.store(listener_.port(), std::memory_order_release);
    if (options_.enable_metrics) RegisterMetrics();
    started_.store(true, std::memory_order_release);
    loop_thread_ = std::thread([self = shared_from_this()] { self->Loop(); });
    return Status::OK();
  }

  // Any thread.
  void RequestDrainImpl() {
    drain_requested_.store(true, std::memory_order_release);
    wake_.Wake();
  }

  // Any thread; serialized so concurrent Shutdown calls don't race the
  // join.
  void Join() {
    std::lock_guard<std::mutex> lock(join_mu_);
    if (loop_thread_.joinable()) loop_thread_.join();
  }

  // Any thread. Tasks run on the loop thread in post order; dropped
  // once the loop has exited (stragglers from evaluation threads).
  void Post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (!accepting_posts_) return;
      posted_.push_back(std::move(fn));
    }
    wake_.Wake();
  }

  void RegisterMetrics() {
    registry_ = options_.metrics_registry ? options_.metrics_registry
                                          : &obs::DefaultRegistry();
    http_requests_family_ = &registry_->CounterFamily(
        "urm_net_http_requests_total",
        "HTTP requests completed, by route and status code",
        {"route", "code"});
    latency_family_ = &registry_->HistogramFamily(
        "urm_net_request_duration_seconds",
        "Dispatch-to-response latency by route", obs::LatencyBuckets(),
        {"route"});
    auto& frames = registry_->CounterFamily(
        "urm_net_ws_frames_total",
        "WebSocket data frames, by direction (in = client messages, "
        "out = server frames)",
        {"direction"});
    ws_frames_in_ = frames.WithLabels({"in"});
    ws_frames_out_ = frames.WithLabels({"out"});

    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_bytes_total", "Socket bytes moved, by direction",
        obs::MetricType::kCounter, [this](std::vector<obs::Sample>* out) {
          obs::Sample read;
          read.labels = {{"direction", "read"}};
          read.value = static_cast<double>(
              bytes_read_.load(std::memory_order_relaxed));
          out->push_back(std::move(read));
          obs::Sample written;
          written.labels = {{"direction", "written"}};
          written.value = static_cast<double>(
              bytes_written_.load(std::memory_order_relaxed));
          out->push_back(std::move(written));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_connections_open", "Currently open client connections",
        obs::MetricType::kGauge, [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value = static_cast<double>(
              open_connections_.load(std::memory_order_relaxed));
          out->push_back(std::move(s));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_pending_requests",
        "Admitted HTTP requests and WebSocket messages not yet completed",
        obs::MetricType::kGauge, [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value =
              static_cast<double>(pending_.load(std::memory_order_relaxed));
          out->push_back(std::move(s));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_connections_accepted_total",
        "Connections admitted by the DOS guard", obs::MetricType::kCounter,
        [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value = static_cast<double>(dosguard_.stats().connections_admitted);
          out->push_back(std::move(s));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_connections_rejected_total",
        "Connections refused by the DOS guard", obs::MetricType::kCounter,
        [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value = static_cast<double>(dosguard_.stats().connections_rejected);
          out->push_back(std::move(s));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_requests_rejected_total",
        "Requests refused by admission control (rate limit or in-flight "
        "caps)",
        obs::MetricType::kCounter, [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value = static_cast<double>(dosguard_.stats().requests_rejected);
          out->push_back(std::move(s));
        }));
    callback_ids_.push_back(registry_->AddCallback(
        "urm_net_dosguard_tracked_clients",
        "Client addresses currently tracked by the DOS guard",
        obs::MetricType::kGauge, [this](std::vector<obs::Sample>* out) {
          obs::Sample s;
          s.value = static_cast<double>(dosguard_.stats().tracked_clients);
          out->push_back(std::move(s));
        }));
  }

  // Called by ~HttpServer after Join(): the bridges capture `this`, so
  // they must be gone before the facade releases its reference.
  void UnregisterMetrics() {
    if (registry_ == nullptr) return;
    for (uint64_t id : callback_ids_) registry_->RemoveCallback(id);
    callback_ids_.clear();
  }

  // ----- the loop -----

  void Loop() {
    std::vector<pollfd> fds;
    std::vector<uint64_t> ids;
    while (true) {
      fds.clear();
      ids.clear();
      fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
      size_t listener_slot = SIZE_MAX;
      if (listener_.open() && !draining_) {
        listener_slot = fds.size();
        fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      }
      const size_t conn_base = fds.size();
      for (auto& entry : connections_) {
        Connection* c = entry.second.get();
        short events = 0;
        // In HTTP mode reads pause while a request is pending — the
        // kernel's receive buffer is the pipelining backpressure.
        bool want_read = c->mode() == Connection::Mode::kWebSocket
                             ? true
                             : !c->request_pending;
        if (want_read && !c->close_after_flush) events |= POLLIN;
        if (c->want_write()) events |= POLLOUT;
        fds.push_back(pollfd{c->fd(), events, 0});
        ids.push_back(entry.first);
      }

      int timeout_ms = 500;
      if (draining_) {
        auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                          drain_deadline_ - Clock::now())
                          .count();
        timeout_ms = remain < 0 ? 0 : static_cast<int>(std::min<long long>(
                                          remain, 100));
      }
      ::poll(fds.data(), fds.size(), timeout_ms);

      if (fds[0].revents != 0) wake_.Drain();
      RunPosted();
      if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
        BeginDrain();
      }
      if (listener_slot != SIZE_MAX && !draining_ &&
          (fds[listener_slot].revents & POLLIN) != 0) {
        AcceptNew();
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        short revents = fds[conn_base + i].revents;
        if (revents != 0) HandleConnectionEvents(ids[i], revents);
      }
      if (draining_ && DrainStep()) break;
    }
    Teardown();
  }

  void RunPosted() {
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();
  }

  void BeginDrain() {
    draining_ = true;
    drain_deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options_.drain_deadline_seconds));
    listener_.Close();
  }

  void AcceptNew() {
    Listener::Accepted accepted;
    while (listener_.open() && listener_.Accept(&accepted)) {
      AdmitResult admit = dosguard_.AdmitConnection(accepted.client_ip);
      if (admit != AdmitResult::kOk) {
        // Best-effort 503 into the (empty) socket buffer, then close —
        // rejected connections never get a Connection object.
        std::string bytes = http::SerializeResponse(
            http::Response::Json(
                503, JsonErrorBody(AdmitResultName(admit),
                                   "connection rejected")),
            /*keep_alive=*/false);
        ::send(accepted.fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        ::close(accepted.fd);
        continue;
      }
      uint64_t id = next_conn_id_++;
      connections_.emplace(
          id, std::make_unique<Connection>(
                  accepted.fd, id, std::move(accepted.peer_address),
                  std::move(accepted.client_ip), options_.connection));
      open_connections_.store(connections_.size(), std::memory_order_relaxed);
    }
  }

  void HandleConnectionEvents(uint64_t id, short revents) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;  // closed earlier this iteration
    Connection* c = it->second.get();
    if ((revents & (POLLERR | POLLNVAL)) != 0) {
      CloseConnection(id);
      return;
    }
    if ((revents & POLLOUT) != 0) {
      size_t written = 0;
      if (!c->WriteSome(&written)) {
        CloseConnection(id);
        return;
      }
      bytes_written_.fetch_add(written, std::memory_order_relaxed);
    }
    if ((revents & (POLLIN | POLLHUP)) != 0) {
      size_t read = 0;
      bool open = c->ReadSome(&read);
      bytes_read_.fetch_add(read, std::memory_order_relaxed);
      if (!ProcessInput(c)) {
        CloseConnection(id);
        return;
      }
      if (!open) {
        // Peer EOF. Anything it sent was just processed; responses to
        // work still in flight have nowhere to go.
        CloseConnection(id);
        return;
      }
    }
    FlushAndMaybeClose(id);
  }

  bool ProcessInput(Connection* c) {
    return c->mode() == Connection::Mode::kWebSocket ? ProcessWs(c)
                                                     : ProcessHttp(c);
  }

  // Returns false when the connection must close immediately.
  bool ProcessHttp(Connection* c) {
    while (!c->request_pending && !c->close_after_flush) {
      http::RequestParser& parser = c->parser();
      if (!c->input().empty()) {
        size_t used = parser.Feed(c->input());
        c->input().erase(0, used);
      }
      if (parser.failed()) {
        RespondNow(c, parser.error_code(), "bad_request", parser.error(),
                   /*close=*/true, "parse_error", Clock::now());
        break;
      }
      if (!parser.complete()) break;  // need more bytes
      DispatchRequest(c);
      if (c->mode() == Connection::Mode::kWebSocket) return ProcessWs(c);
    }
    return true;
  }

  bool ProcessWs(Connection* c) {
    ws::FrameDecoder& decoder = c->ws_decoder();
    if (!c->input().empty()) {
      decoder.Feed(c->input());
      c->input().clear();
    }
    ws::FrameDecoder::Message message;
    while (!c->close_after_flush && decoder.Next(&message)) {
      switch (message.opcode) {
        case ws::kOpPing:
          if (!c->EnqueueOutput(
                  ws::EncodeFrame(ws::kOpPong, message.payload))) {
            return false;
          }
          break;
        case ws::kOpPong:
          break;
        case ws::kOpClose:
          if (!c->ws_close_sent) {
            c->EnqueueOutput(ws::EncodeFrame(ws::kOpClose, message.payload));
            c->ws_close_sent = true;
          }
          MarkSessionClosed(c);
          c->close_after_flush = true;
          break;
        default:  // text/binary data message
          HandleWsMessage(c, std::move(message.payload));
          break;
      }
    }
    if (decoder.failed() && !c->close_after_flush) {
      if (!c->ws_close_sent) {
        c->EnqueueOutput(ws::EncodeFrame(
            ws::kOpClose,
            ws::EncodeClosePayload(decoder.close_code(), decoder.error())));
        c->ws_close_sent = true;
      }
      MarkSessionClosed(c);
      c->close_after_flush = true;
    }
    return true;
  }

  void HandleWsMessage(Connection* c, std::string payload) {
    ws_messages_received_.fetch_add(1, std::memory_order_relaxed);
    if (ws_frames_in_ != nullptr) ws_frames_in_->Increment();
    if (c->ws_route_index >= ws_routes_.size()) return;
    if (draining_) {
      SendWsErrorFrame(c, "draining", "server is draining");
      return;
    }
    AdmitResult admit = dosguard_.AdmitRequest(c->client_ip());
    if (admit != AdmitResult::kOk) {
      SendWsErrorFrame(c, AdmitResultName(admit),
                       "message rejected by admission control");
      return;
    }
    c->active_ws_messages++;
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto self = shared_from_this();
    uint64_t id = c->id();
    std::string ip = c->client_ip();
    auto done_once = std::make_shared<std::atomic<bool>>(false);
    std::function<void()> done = [self, id, ip, done_once]() {
      if (done_once->exchange(true)) return;
      self->Post([self, id, ip]() {
        self->dosguard_.OnRequestDone(ip);
        self->pending_.fetch_sub(1, std::memory_order_relaxed);
        auto it = self->connections_.find(id);
        if (it != self->connections_.end() &&
            it->second->active_ws_messages > 0) {
          it->second->active_ws_messages--;
        }
      });
    };
    ws_routes_[c->ws_route_index].on_message(c->ws_session, std::move(payload),
                                             std::move(done));
  }

  void SendWsErrorFrame(Connection* c, std::string_view code,
                        std::string_view message) {
    if (!c->EnqueueOutput(
            ws::EncodeFrame(ws::kOpText, WsErrorFrameBody(code, message)))) {
      MarkSessionClosed(c);
      c->close_after_flush = true;
      return;
    }
    ws_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (ws_frames_out_ != nullptr) ws_frames_out_->Increment();
  }

  void DispatchRequest(Connection* c) {
    const http::Request& request = c->parser().request();
    requests_started_.fetch_add(1, std::memory_order_relaxed);
    Clock::time_point start = Clock::now();

    for (size_t i = 0; i < ws_routes_.size(); ++i) {
      const WsRoute& ws_route = ws_routes_[i];
      if (request.path != ws_route.path) continue;
      if (request.method != "GET" || !ws::IsUpgradeRequest(request)) {
        RespondNow(c, 426, "upgrade_required",
                   "this endpoint requires a WebSocket upgrade",
                   /*close=*/false, ws_route.path, start);
        return;
      }
      if (draining_) {
        RespondNow(c, 503, "draining", "server is draining", /*close=*/true,
                   ws_route.path, start);
        return;
      }
      Result<std::string> handshake = ws::AcceptHandshake(request);
      if (!handshake.ok()) {
        RespondNow(c, 400, "bad_handshake", handshake.status().message(),
                   /*close=*/true, ws_route.path, start);
        return;
      }
      if (!c->EnqueueOutput(handshake.ValueOrDie())) {
        c->close_after_flush = true;
        return;
      }
      ws::FrameDecoder::Options decoder_options;
      decoder_options.max_message_bytes =
          options_.connection.parser.max_body_bytes;
      decoder_options.require_masked = true;
      c->UpgradeToWebSocket(decoder_options);
      c->ws_route_index = i;
      auto session = std::make_shared<WsSession>();
      session->impl_ = shared_from_this();
      session->connection_id_ = c->id();
      session->client_ip_ = c->client_ip();
      c->ws_session = std::move(session);
      ObserveRoute(ws_route.path, 101, start);
      return;
    }

    bool path_exists = false;
    const Route* route = FindRoute(request.method, request.path, &path_exists);
    if (route == nullptr) {
      if (path_exists) {
        RespondNow(c, 405, "method_not_allowed",
                   "method " + request.method + " not allowed on " +
                       request.path,
                   /*close=*/false, request.path, start);
      } else {
        RespondNow(c, 404, "not_found", "unknown path '" + request.path + "'",
                   /*close=*/false, "unmatched", start);
      }
      return;
    }
    if (draining_) {
      RespondNow(c, 503, "draining", "server is draining", /*close=*/true,
                 route->path, start);
      return;
    }
    bool admitted = false;
    if (request.method == "POST") {
      // Reads (/v1/stats, /metrics) bypass the token bucket so health
      // scrapes cannot be starved by a chatty query client.
      AdmitResult admit = dosguard_.AdmitRequest(c->client_ip());
      if (admit != AdmitResult::kOk) {
        int code = admit == AdmitResult::kOverloaded ? 503 : 429;
        RespondNow(c, code, AdmitResultName(admit),
                   "request rejected by admission control", /*close=*/false,
                   route->path, start);
        return;
      }
      admitted = true;
    }
    c->request_pending = true;
    pending_.fetch_add(1, std::memory_order_relaxed);

    auto self = shared_from_this();
    uint64_t id = c->id();
    std::string route_path = route->path;
    std::string ip = c->client_ip();
    auto responded_once = std::make_shared<std::atomic<bool>>(false);
    RespondFn respond = [self, id, route_path, ip, admitted, start,
                         responded_once](http::Response response) {
      if (responded_once->exchange(true)) return;
      auto boxed = std::make_shared<http::Response>(std::move(response));
      self->Post([self, id, route_path, ip, admitted, start, boxed]() {
        self->CompleteRequest(id, route_path, ip, admitted, start,
                              std::move(*boxed));
      });
    };
    route->handler(request, c->client_ip(), std::move(respond));
  }

  const Route* FindRoute(const std::string& method, const std::string& path,
                         bool* path_exists) const {
    *path_exists = false;
    for (const Route& route : routes_) {
      if (route.path != path) continue;
      *path_exists = true;
      if (route.method == method) return &route;
    }
    return nullptr;
  }

  /// Synchronous (error) response on the loop thread. Closes after
  /// flush when `close` is set or keep-alive is off; otherwise re-arms
  /// the parser for the next request.
  void RespondNow(Connection* c, int code, std::string_view error_code,
                  std::string_view message, bool close,
                  const std::string& route, Clock::time_point start) {
    bool keep = !close && !draining_ && c->parser().complete() &&
                c->parser().request().keep_alive();
    http::Response response =
        http::Response::Json(code, JsonErrorBody(error_code, message));
    if (!c->EnqueueOutput(http::SerializeResponse(response, keep))) {
      keep = false;
    }
    ObserveRoute(route, code, start);
    if (keep) {
      c->ResetParser();
    } else {
      c->close_after_flush = true;
    }
  }

  // Loop thread, via Post.
  void CompleteRequest(uint64_t id, const std::string& route,
                       const std::string& client_ip, bool admitted,
                       Clock::time_point start, http::Response response) {
    if (admitted) dosguard_.OnRequestDone(client_ip);
    pending_.fetch_sub(1, std::memory_order_relaxed);
    ObserveRoute(route, response.code, start);
    auto it = connections_.find(id);
    if (it == connections_.end()) return;  // client went away
    Connection* c = it->second.get();
    if (!c->request_pending) return;
    bool keep = !draining_ && c->parser().complete() &&
                c->parser().request().keep_alive();
    c->request_pending = false;
    if (!c->EnqueueOutput(http::SerializeResponse(response, keep))) {
      CloseConnection(id);
      return;
    }
    if (keep) {
      c->ResetParser();
    } else {
      c->close_after_flush = true;
    }
    FlushAndMaybeClose(id);
    // A pipelined follow-up may already be buffered.
    auto again = connections_.find(id);
    if (again != connections_.end() && keep &&
        !again->second->input().empty()) {
      if (!ProcessHttp(again->second.get())) {
        CloseConnection(id);
        return;
      }
      FlushAndMaybeClose(id);
    }
  }

  // Loop thread, via Post (WsSession::SendText).
  void SendWsData(uint64_t id, std::string payload) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    Connection* c = it->second.get();
    if (c->mode() != Connection::Mode::kWebSocket || c->ws_close_sent ||
        c->close_after_flush) {
      return;
    }
    if (!c->EnqueueOutput(ws::EncodeFrame(ws::kOpText, payload))) {
      // Slow consumer: the output cap is the backpressure signal —
      // close and let the producer observe closed().
      CloseConnection(id);
      return;
    }
    ws_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (ws_frames_out_ != nullptr) ws_frames_out_->Increment();
    FlushAndMaybeClose(id);
  }

  // Loop thread, via Post (WsSession::Close).
  void CloseWsFromServer(uint64_t id, uint16_t code,
                         const std::string& reason) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    Connection* c = it->second.get();
    if (c->mode() != Connection::Mode::kWebSocket) return;
    if (!c->ws_close_sent) {
      c->EnqueueOutput(ws::EncodeFrame(ws::kOpClose,
                                       ws::EncodeClosePayload(code, reason)));
      c->ws_close_sent = true;
    }
    MarkSessionClosed(c);
    c->close_after_flush = true;
    FlushAndMaybeClose(id);
  }

  void ObserveRoute(const std::string& route, int code,
                    Clock::time_point start) {
    if (http_requests_family_ == nullptr) return;
    http_requests_family_->WithLabels({route, std::to_string(code)})
        ->Increment();
    latency_family_->WithLabels({route})->Observe(SecondsSince(start));
  }

  void MarkSessionClosed(Connection* c) {
    if (c->ws_session) {
      c->ws_session->closed_.store(true, std::memory_order_release);
    }
  }

  void FlushAndMaybeClose(uint64_t id) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    Connection* c = it->second.get();
    size_t written = 0;
    if (!c->WriteSome(&written)) {
      CloseConnection(id);
      return;
    }
    bytes_written_.fetch_add(written, std::memory_order_relaxed);
    if (c->close_after_flush && c->output_flushed()) CloseConnection(id);
  }

  void CloseConnection(uint64_t id) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    MarkSessionClosed(it->second.get());
    dosguard_.OnConnectionClosed(it->second->client_ip());
    connections_.erase(it);
    open_connections_.store(connections_.size(), std::memory_order_relaxed);
  }

  // One drain pass; true when the loop should exit.
  bool DrainStep() {
    std::vector<uint64_t> close_now;
    for (auto& entry : connections_) {
      Connection* c = entry.second.get();
      if (c->mode() == Connection::Mode::kWebSocket) {
        // Streams with work in flight finish first; idle sessions get
        // the going-away close handshake.
        if (c->active_ws_messages == 0 && !c->ws_close_sent) {
          c->EnqueueOutput(ws::EncodeFrame(
              ws::kOpClose, ws::EncodeClosePayload(ws::kCloseGoingAway,
                                                   "server draining")));
          c->ws_close_sent = true;
          MarkSessionClosed(c);
          c->close_after_flush = true;
        }
      } else if (!c->request_pending) {
        c->close_after_flush = true;
      }
      if (!c->output_flushed()) {
        size_t written = 0;
        if (!c->WriteSome(&written)) {
          close_now.push_back(entry.first);
          continue;
        }
        bytes_written_.fetch_add(written, std::memory_order_relaxed);
      }
      if (c->close_after_flush && c->output_flushed()) {
        close_now.push_back(entry.first);
      }
    }
    for (uint64_t id : close_now) CloseConnection(id);
    if (connections_.empty()) return true;
    if (Clock::now() >= drain_deadline_) {
      std::vector<uint64_t> all;
      all.reserve(connections_.size());
      for (auto& entry : connections_) all.push_back(entry.first);
      for (uint64_t id : all) CloseConnection(id);
      return true;
    }
    return false;
  }

  void Teardown() {
    std::vector<uint64_t> all;
    all.reserve(connections_.size());
    for (auto& entry : connections_) all.push_back(entry.first);
    for (uint64_t id : all) CloseConnection(id);
    listener_.Close();
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      accepting_posts_ = false;
      posted_.clear();
    }
    stopped_.store(true, std::memory_order_release);
  }
};

// ----- WsSession -----

void WsSession::SendText(std::string payload) {
  if (!impl_ || closed()) return;
  auto impl = impl_;
  uint64_t id = connection_id_;
  auto boxed = std::make_shared<std::string>(std::move(payload));
  impl->Post([impl, id, boxed]() { impl->SendWsData(id, std::move(*boxed)); });
}

void WsSession::Close(uint16_t code, const std::string& reason) {
  if (!impl_) return;
  auto impl = impl_;
  uint64_t id = connection_id_;
  impl->Post([impl, id, code, reason]() {
    impl->CloseWsFromServer(id, code, reason);
  });
}

// ----- HttpServer facade -----

HttpServer::HttpServer(ServerOptions options)
    : impl_(std::make_shared<ServerImpl>(std::move(options))) {}

HttpServer::~HttpServer() {
  if (!impl_) return;
  Shutdown();
  impl_->UnregisterMetrics();
}

void HttpServer::Handle(std::string method, std::string path,
                        HttpHandler handler) {
  impl_->routes_.push_back(
      {std::move(method), std::move(path), std::move(handler)});
}

void HttpServer::HandleWebSocket(std::string path, WsMessageHandler on_message) {
  impl_->ws_routes_.push_back({std::move(path), std::move(on_message)});
}

Status HttpServer::Start() { return impl_->Start(); }

uint16_t HttpServer::port() const {
  return impl_->bound_port_.load(std::memory_order_acquire);
}

void HttpServer::RequestDrain() { impl_->RequestDrainImpl(); }

void HttpServer::Shutdown() {
  if (!impl_->started_.load(std::memory_order_acquire)) return;
  impl_->RequestDrainImpl();
  impl_->Join();
}

bool HttpServer::running() const {
  return impl_->started_.load(std::memory_order_acquire) &&
         !impl_->stopped_.load(std::memory_order_acquire);
}

void HttpServer::Post(std::function<void()> fn) { impl_->Post(std::move(fn)); }

ServerStats HttpServer::stats() const {
  ServerStats stats;
  stats.bytes_read = impl_->bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = impl_->bytes_written_.load(std::memory_order_relaxed);
  stats.requests_started =
      impl_->requests_started_.load(std::memory_order_relaxed);
  stats.ws_messages_received =
      impl_->ws_messages_received_.load(std::memory_order_relaxed);
  stats.ws_frames_sent =
      impl_->ws_frames_sent_.load(std::memory_order_relaxed);
  stats.open_connections =
      impl_->open_connections_.load(std::memory_order_relaxed);
  stats.pending_requests = impl_->pending_.load(std::memory_order_relaxed);
  return stats;
}

DosGuardStats HttpServer::dosguard_stats() const {
  return impl_->dosguard_.stats();
}

}  // namespace net
}  // namespace urm
