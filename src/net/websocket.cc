#include "net/websocket.h"

#include <cstring>

#include "common/base64.h"
#include "common/sha1.h"

namespace urm {
namespace net {
namespace ws {

namespace {

/// Fixed GUID every WebSocket handshake concatenates (RFC 6455 §1.3).
constexpr char kGuid[] = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

}  // namespace

bool IsUpgradeRequest(const http::Request& request) {
  return request.HasHeaderToken("Upgrade", "websocket") &&
         request.HasHeaderToken("Connection", "Upgrade");
}

std::string ComputeAcceptKey(std::string_view client_key) {
  std::string material(client_key);
  material += kGuid;
  auto digest = Sha1(material);
  return Base64Encode(std::string_view(
      reinterpret_cast<const char*>(digest.data()), digest.size()));
}

Result<std::string> AcceptHandshake(const http::Request& request) {
  if (request.method != "GET") {
    return Status::InvalidArgument("WebSocket upgrade requires GET");
  }
  if (!IsUpgradeRequest(request)) {
    return Status::InvalidArgument(
        "missing Upgrade: websocket / Connection: Upgrade headers");
  }
  const std::string* version = request.FindHeader("Sec-WebSocket-Version");
  if (version == nullptr || *version != "13") {
    return Status::InvalidArgument("Sec-WebSocket-Version must be 13");
  }
  const std::string* key = request.FindHeader("Sec-WebSocket-Key");
  std::string decoded;
  if (key == nullptr || !Base64Decode(*key, &decoded) ||
      decoded.size() != 16) {
    return Status::InvalidArgument(
        "Sec-WebSocket-Key must be 16 base64-encoded bytes");
  }
  std::string response =
      "HTTP/1.1 101 Switching Protocols\r\n"
      "Upgrade: websocket\r\n"
      "Connection: Upgrade\r\n"
      "Sec-WebSocket-Accept: " +
      ComputeAcceptKey(*key) + "\r\n\r\n";
  return response;
}

namespace {

std::string EncodeHeader(uint8_t opcode, size_t length, bool fin,
                         bool masked, uint32_t mask_key) {
  std::string out;
  out.push_back(static_cast<char>((fin ? 0x80 : 0x00) | (opcode & 0x0f)));
  uint8_t mask_bit = masked ? 0x80 : 0x00;
  if (length < 126) {
    out.push_back(static_cast<char>(mask_bit | length));
  } else if (length <= 0xffff) {
    out.push_back(static_cast<char>(mask_bit | 126));
    out.push_back(static_cast<char>((length >> 8) & 0xff));
    out.push_back(static_cast<char>(length & 0xff));
  } else {
    out.push_back(static_cast<char>(mask_bit | 127));
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<char>((static_cast<uint64_t>(length) >>
                                       (8 * i)) & 0xff));
    }
  }
  if (masked) {
    for (int i = 3; i >= 0; --i) {
      out.push_back(static_cast<char>((mask_key >> (8 * i)) & 0xff));
    }
  }
  return out;
}

}  // namespace

std::string EncodeFrame(uint8_t opcode, std::string_view payload, bool fin) {
  std::string out = EncodeHeader(opcode, payload.size(), fin, false, 0);
  out.append(payload.data(), payload.size());
  return out;
}

std::string EncodeMaskedFrame(uint8_t opcode, std::string_view payload,
                              uint32_t mask_key, bool fin) {
  std::string out = EncodeHeader(opcode, payload.size(), fin, true, mask_key);
  uint8_t key[4] = {static_cast<uint8_t>(mask_key >> 24),
                    static_cast<uint8_t>(mask_key >> 16),
                    static_cast<uint8_t>(mask_key >> 8),
                    static_cast<uint8_t>(mask_key)};
  for (size_t i = 0; i < payload.size(); ++i) {
    out.push_back(static_cast<char>(
        static_cast<uint8_t>(payload[i]) ^ key[i & 3]));
  }
  return out;
}

std::string EncodeClosePayload(uint16_t code, std::string_view reason) {
  std::string out;
  out.push_back(static_cast<char>(code >> 8));
  out.push_back(static_cast<char>(code & 0xff));
  out.append(reason.data(), reason.size());
  return out;
}

void FrameDecoder::Fail(uint16_t code, std::string reason) {
  failed_ = true;
  close_code_ = code;
  error_ = std::move(reason);
}

bool FrameDecoder::Next(Message* out) {
  while (!failed_) {
    if (buffer_.size() < 2) return false;
    const uint8_t b0 = static_cast<uint8_t>(buffer_[0]);
    const uint8_t b1 = static_cast<uint8_t>(buffer_[1]);
    const bool fin = (b0 & 0x80) != 0;
    const uint8_t opcode = b0 & 0x0f;
    const bool masked = (b1 & 0x80) != 0;
    if ((b0 & 0x70) != 0) {
      Fail(kCloseProtocolError, "nonzero RSV bits (no extension negotiated)");
      return false;
    }
    if (options_.require_masked && !masked) {
      Fail(kCloseProtocolError, "client frames must be masked");
      return false;
    }
    uint64_t length = b1 & 0x7f;
    size_t header = 2;
    if (length == 126) {
      if (buffer_.size() < 4) return false;
      length = (static_cast<uint64_t>(static_cast<uint8_t>(buffer_[2])) << 8) |
               static_cast<uint8_t>(buffer_[3]);
      header = 4;
    } else if (length == 127) {
      if (buffer_.size() < 10) return false;
      length = 0;
      for (int i = 0; i < 8; ++i) {
        length = (length << 8) | static_cast<uint8_t>(buffer_[2 + i]);
      }
      header = 10;
    }
    const bool control = (opcode & 0x8) != 0;
    if (control && (!fin || length > 125)) {
      Fail(kCloseProtocolError, "fragmented or oversized control frame");
      return false;
    }
    if (length > options_.max_message_bytes ||
        fragments_.size() + length > options_.max_message_bytes) {
      Fail(kCloseTooBig, "message exceeds " +
                             std::to_string(options_.max_message_bytes) +
                             " bytes");
      return false;
    }
    size_t mask_bytes = masked ? 4 : 0;
    if (buffer_.size() < header + mask_bytes + length) return false;

    std::string payload =
        buffer_.substr(header + mask_bytes, static_cast<size_t>(length));
    if (masked) {
      const char* key = buffer_.data() + header;
      for (size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<char>(
            static_cast<uint8_t>(payload[i]) ^
            static_cast<uint8_t>(key[i & 3]));
      }
    }
    buffer_.erase(0, header + mask_bytes + static_cast<size_t>(length));

    if (control) {
      if (opcode != kOpClose && opcode != kOpPing && opcode != kOpPong) {
        Fail(kCloseProtocolError, "unknown control opcode");
        return false;
      }
      out->opcode = opcode;
      out->payload = std::move(payload);
      return true;
    }

    // Data frames: text/binary open a message, continuations extend it.
    if (opcode == kOpText || opcode == kOpBinary) {
      if (fragmented_opcode_ != 0) {
        Fail(kCloseProtocolError, "new data frame inside fragmented message");
        return false;
      }
      if (fin) {
        out->opcode = opcode;
        out->payload = std::move(payload);
        return true;
      }
      fragmented_opcode_ = opcode;
      fragments_ = std::move(payload);
      continue;
    }
    if (opcode == kOpContinuation) {
      if (fragmented_opcode_ == 0) {
        Fail(kCloseProtocolError, "continuation without a started message");
        return false;
      }
      fragments_ += payload;
      if (!fin) continue;
      out->opcode = fragmented_opcode_;
      out->payload = std::move(fragments_);
      fragmented_opcode_ = 0;
      fragments_.clear();
      return true;
    }
    Fail(kCloseProtocolError, "unknown data opcode");
    return false;
  }
  return false;
}

}  // namespace ws
}  // namespace net
}  // namespace urm
