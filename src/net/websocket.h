#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/http.h"

/// \file websocket.h
/// RFC 6455 WebSocket framing for the streaming endpoint: the upgrade
/// handshake (Sec-WebSocket-Accept via common/sha1 + common/base64),
/// a frame encoder, and an incremental decoder with fragmentation
/// reassembly. The server decodes masked client frames and sends
/// unmasked server frames; the masked encoder exists for the in-repo
/// client (tests + bench). Extensions and subprotocols are not
/// negotiated (RSV bits must be zero).

namespace urm {
namespace net {
namespace ws {

constexpr uint8_t kOpContinuation = 0x0;
constexpr uint8_t kOpText = 0x1;
constexpr uint8_t kOpBinary = 0x2;
constexpr uint8_t kOpClose = 0x8;
constexpr uint8_t kOpPing = 0x9;
constexpr uint8_t kOpPong = 0xa;

/// Close status codes used by the server.
constexpr uint16_t kCloseNormal = 1000;
constexpr uint16_t kCloseGoingAway = 1001;
constexpr uint16_t kCloseProtocolError = 1002;
constexpr uint16_t kCloseTooBig = 1009;
constexpr uint16_t kClosePolicyViolation = 1008;

/// True when the request asks for a WebSocket upgrade (Upgrade +
/// Connection tokens present).
bool IsUpgradeRequest(const http::Request& request);

/// base64(SHA1(key + RFC 6455 GUID)) — the Sec-WebSocket-Accept value.
std::string ComputeAcceptKey(std::string_view client_key);

/// Validates the upgrade request (method, version 13, key present) and
/// renders the complete 101 response bytes; InvalidArgument with the
/// reason otherwise.
Result<std::string> AcceptHandshake(const http::Request& request);

/// One server→client frame (unmasked).
std::string EncodeFrame(uint8_t opcode, std::string_view payload,
                        bool fin = true);

/// One client→server frame (masked with `mask_key`, big-endian).
std::string EncodeMaskedFrame(uint8_t opcode, std::string_view payload,
                              uint32_t mask_key, bool fin = true);

/// Close frame payload: 2-byte big-endian code + UTF-8 reason.
std::string EncodeClosePayload(uint16_t code, std::string_view reason);

/// \brief Incremental frame decoder + fragmentation reassembly.
///
/// Feed() bytes off the socket, then drain Next(): control frames
/// (close/ping/pong) surface as their own messages the moment they
/// complete — even interleaved inside a fragmented data message — and
/// data messages surface once their FIN fragment lands. On a protocol
/// violation the decoder latches failed() with the close code the
/// server should send back.
class FrameDecoder {
 public:
  struct Message {
    uint8_t opcode = 0;  ///< kOpText/kOpBinary/kOpClose/kOpPing/kOpPong
    std::string payload;
  };

  struct Options {
    /// Reassembled message byte cap (close 1009 beyond it).
    size_t max_message_bytes = 1024 * 1024;
    /// Server side: client frames MUST be masked (RFC 6455 §5.1);
    /// false for the in-repo client decoding server frames.
    bool require_masked = true;
  };

  // Two constructors (not one defaulted argument): a default argument
  // of Options() here would need the nested initializers before the
  // enclosing class is complete, which GCC rejects.
  FrameDecoder() : FrameDecoder(Options{1024 * 1024, true}) {}
  explicit FrameDecoder(Options options) : options_(options) {}

  void Feed(std::string_view data) { buffer_.append(data.data(), data.size()); }

  /// Decodes the next complete message into `out`; false when more
  /// bytes are needed (or the decoder has failed).
  bool Next(Message* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Close code to send when failed() (1002 protocol error / 1009 too
  /// big).
  uint16_t close_code() const { return close_code_; }

 private:
  void Fail(uint16_t code, std::string reason);

  Options options_;
  std::string buffer_;
  /// In-progress fragmented data message (empty opcode 0 = none).
  uint8_t fragmented_opcode_ = 0;
  std::string fragments_;
  bool failed_ = false;
  std::string error_;
  uint16_t close_code_ = 0;
};

}  // namespace ws
}  // namespace net
}  // namespace urm
