#include "net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace urm {
namespace net {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, static_cast<uint16_t>(0));
  }
  return *this;
}

Status Listener::Open(const ListenerOptions& options) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal(
        "bind(" + options.bind_address + ":" +
        std::to_string(options.port) + "): " + strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options.backlog) != 0) {
    Status status =
        Status::Internal(std::string("listen(): ") + strerror(errno));
    ::close(fd);
    return status;
  }
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return Status::Internal("cannot set listener non-blocking");
  }

  // Read back the bound port (meaningful when options.port was 0).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname(): ") +
                            strerror(errno));
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

bool Listener::Accept(Accepted* out) {
  sockaddr_in peer;
  socklen_t peer_len = sizeof(peer);
  int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
  if (fd < 0) return false;  // EAGAIN / transient accept errors: retry later
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  char ip[INET_ADDRSTRLEN] = "?";
  inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
  out->fd = fd;
  out->client_ip = ip;
  out->peer_address = out->client_ip + ":" + std::to_string(ntohs(peer.sin_port));
  return true;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WakePipe::WakePipe() {
  if (pipe(fds_) != 0) {
    fds_[0] = fds_[1] = -1;
    return;
  }
  SetNonBlocking(fds_[0]);
  SetNonBlocking(fds_[1]);
}

WakePipe::~WakePipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

void WakePipe::Wake() {
  if (fds_[1] < 0) return;
  // Best effort: a full pipe already guarantees a pending wakeup.
  char byte = 'w';
  [[maybe_unused]] ssize_t ignored = ::write(fds_[1], &byte, 1);
}

void WakePipe::Drain() {
  if (fds_[0] < 0) return;
  char buffer[256];
  while (::read(fds_[0], buffer, sizeof(buffer)) > 0) {
  }
}

}  // namespace net
}  // namespace urm
