#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace urm {
namespace net {

Connection::Connection(int fd, uint64_t id, std::string peer_address,
                       std::string client_ip, ConnectionLimits limits)
    : fd_(fd),
      id_(id),
      peer_address_(std::move(peer_address)),
      client_ip_(std::move(client_ip)),
      limits_(limits),
      parser_(limits.parser) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::ReadSome(size_t* bytes_read) {
  *bytes_read = 0;
  char buffer[16 * 1024];
  while (true) {
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      inbuf_.append(buffer, static_cast<size_t>(n));
      *bytes_read += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < sizeof(buffer)) return true;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool Connection::WriteSome(size_t* bytes_written) {
  *bytes_written = 0;
  while (out_offset_ < outbuf_.size()) {
    ssize_t n = ::send(fd_, outbuf_.data() + out_offset_,
                       outbuf_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      out_offset_ += static_cast<size_t>(n);
      *bytes_written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  // Compact once fully flushed (the common case) or when the flushed
  // prefix dominates.
  if (out_offset_ == outbuf_.size()) {
    outbuf_.clear();
    out_offset_ = 0;
  } else if (out_offset_ > 64 * 1024 && out_offset_ > outbuf_.size() / 2) {
    outbuf_.erase(0, out_offset_);
    out_offset_ = 0;
  }
  return true;
}

bool Connection::EnqueueOutput(std::string_view bytes) {
  if (outbuf_.size() - out_offset_ + bytes.size() >
      limits_.max_outbuf_bytes) {
    return false;
  }
  outbuf_.append(bytes.data(), bytes.size());
  return true;
}

void Connection::UpgradeToWebSocket(ws::FrameDecoder::Options options) {
  mode_ = Mode::kWebSocket;
  ws_decoder_ = std::make_unique<ws::FrameDecoder>(options);
}

}  // namespace net
}  // namespace urm
