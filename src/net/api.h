#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/json.h"
#include "core/request.h"
#include "datagen/target_schemas.h"
#include "net/server.h"
#include "relational/delta.h"
#include "service/query_service.h"

namespace urm {
namespace live {
class IngestController;
}  // namespace live
}  // namespace urm

/// \file api.h
/// The versioned JSON API of the network tier, bound onto an
/// HttpServer by RegisterRoutes:
///
///   POST /v1/query   — one request of any kind (evaluate / topk /
///                      setop / threshold) against a paper workload
///                      query; responds with the kind's result JSON.
///   POST /v1/ingest  — one row-level delta batch (insert / update /
///                      delete ops) against a target schema's catalog,
///                      applied atomically with delta-aware cache
///                      invalidation; responds with the ingest receipt.
///   GET  /v1/stats   — serving-tier stats (server loop, DOS guard,
///                      per-schema cache/pool/operator-store/ingest).
///   GET  /metrics    — Prometheus text exposition of the registry.
///   GET  /v1/stream  — WebSocket upgrade; each text message is a
///                      /v1/query body, answered by streamed
///                      {"type":"leaf"} frames while the evaluation
///                      runs and one {"type":"complete"} frame (or
///                      {"type":"error"}).
///
/// Wire shapes, error codes, and versioning rules are specified in
/// docs/API.md; the parser and serializers live here so tests and the
/// bench client can reuse them without a socket.

namespace urm {
namespace net {
namespace api {

/// \brief Resolves the QueryService serving a target schema. The API
/// handlers run on the server loop thread and evaluation threads, so
/// implementations must be thread-safe (urm_server's ServiceDirectory
/// and the test fixtures implement this).
class ServiceHub {
 public:
  virtual ~ServiceHub() = default;

  /// The service for `schema` (instantiating it lazily if needed);
  /// null only on resource exhaustion.
  virtual service::QueryService* ForSchema(datagen::TargetSchemaId schema) = 0;

  /// Visits every service instantiated so far (for /v1/stats).
  virtual void VisitServices(
      const std::function<void(datagen::TargetSchemaId,
                               service::QueryService*)>& fn) = 0;

  /// The ingest controller for `schema`, or null when this hub does
  /// not serve live updates (POST /v1/ingest then responds 501).
  /// Same thread-safety contract as ForSchema.
  virtual live::IngestController* IngestFor(
      datagen::TargetSchemaId /*schema*/) {
    return nullptr;
  }
};

/// One structured API failure: the HTTP status (or WS error frame) plus
/// the machine-readable code catalogued in docs/API.md#errors.
struct ApiError {
  int http_status = 400;
  std::string code;
  std::string message;
};

/// A validated /v1/query body resolved against the paper workload.
struct ParsedQuery {
  core::Request request;
  std::string query_id;  ///< "Q1".."Q10"
  datagen::TargetSchemaId schema = datagen::TargetSchemaId::kExcel;
};

/// Parses and validates one /v1/query (or WS stream message) JSON
/// body. Returns false with `error` filled on any shape, version,
/// lookup, or parameter problem — the caller turns it into a 4xx body
/// or an error frame verbatim.
bool ParseQueryBody(const std::string& body, ParsedQuery* out,
                    ApiError* error);

/// A validated /v1/ingest body: the delta batch plus the target
/// schema whose catalog it mutates.
struct ParsedIngest {
  relational::DeltaBatch batch;
  datagen::TargetSchemaId schema = datagen::TargetSchemaId::kExcel;
};

/// Parses and validates one /v1/ingest JSON body (shape and version
/// only — relation names and row arities are validated against the
/// live catalog by IngestController::Apply). `max_ops` bounds the
/// batch (0 = unbounded; past it the error is 413 batch_too_large).
bool ParseIngestBody(const std::string& body, size_t max_ops,
                     ParsedIngest* out, ApiError* error);

/// Serializes a completed QueryResponse: appends kind, cache_hit,
/// shared, and the kind-specific "result" object onto `target`.
/// `max_rows` caps emitted tuples ("truncated": true past it).
void AppendResponseJson(const service::QueryResponse& response,
                        json::Value* target, size_t max_rows = 1000);

/// One answer row as a JSON array (null / int / double / string cells).
json::Value RowToJson(const relational::Row& row);

struct ApiOptions {
  /// Registry served by /metrics; null = obs::DefaultRegistry().
  obs::Registry* metrics_registry = nullptr;
  /// Tuple cap per HTTP response / completion frame.
  size_t max_rows = 1000;
  /// Op cap per /v1/ingest batch (0 = unbounded); past it the request
  /// is rejected with 413 batch_too_large before touching the catalog.
  size_t max_ingest_ops = 4096;
};

/// Binds the /v1 routes and the /v1/stream WebSocket onto `server`
/// (setup-time, before Start). `hub` must outlive the server.
void RegisterRoutes(HttpServer* server, ServiceHub* hub,
                    ApiOptions options = ApiOptions());

}  // namespace api
}  // namespace net
}  // namespace urm
