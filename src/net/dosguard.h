#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

/// \file dosguard.h
/// Per-client admission control for the network tier: connection caps
/// (global and per client), concurrent in-flight request caps, and a
/// per-client token-bucket request rate limit. "Client" is the peer
/// address string the listener reports; decisions are O(1) under one
/// mutex (the loop thread is the only caller in the server, but the
/// guard is safe to probe from anywhere, e.g. tests).
///
/// The clock is passed in explicitly (defaulting to steady_clock::now)
/// so tests can drive refill deterministically.

namespace urm {
namespace net {

struct DosGuardOptions {
  /// Concurrent connections across all clients; 0 = unlimited.
  size_t max_connections = 1024;
  /// Concurrent connections per client address; 0 = unlimited.
  size_t max_connections_per_client = 64;
  /// Concurrent admitted (not yet completed) requests, global / per
  /// client; 0 = unlimited.
  size_t max_inflight_requests = 256;
  size_t max_inflight_per_client = 32;
  /// Token bucket: sustained requests/second per client and burst
  /// capacity. requests_per_second <= 0 disables rate limiting.
  double requests_per_second = 50.0;
  double burst = 20.0;
  /// Client entries idle (no connections, no in-flight, full bucket)
  /// longer than this are swept on the next admission; 0 sweeps
  /// immediately once idle.
  double idle_entry_seconds = 120.0;
};

/// Why an admission was refused (kOk = admitted).
enum class AdmitResult {
  kOk,
  kTooManyConnections,        ///< global connection cap
  kTooManyClientConnections,  ///< per-client connection cap
  kOverloaded,                ///< global in-flight request cap
  kTooManyClientRequests,     ///< per-client in-flight request cap
  kRateLimited,               ///< token bucket empty
};

const char* AdmitResultName(AdmitResult result);

/// Monotonic counters for the metrics bridges.
struct DosGuardStats {
  size_t connections_admitted = 0;
  size_t connections_rejected = 0;
  size_t requests_admitted = 0;
  size_t requests_rejected = 0;
  size_t open_connections = 0;   ///< point-in-time
  size_t inflight_requests = 0;  ///< point-in-time
  size_t tracked_clients = 0;    ///< point-in-time
};

class DosGuard {
 public:
  using Clock = std::chrono::steady_clock;

  explicit DosGuard(DosGuardOptions options) : options_(options) {}

  /// A new connection from `client`; pair every kOk with exactly one
  /// OnConnectionClosed.
  AdmitResult AdmitConnection(const std::string& client,
                              Clock::time_point now = Clock::now());
  void OnConnectionClosed(const std::string& client);

  /// A new request from `client` (rate limit + in-flight caps); pair
  /// every kOk with exactly one OnRequestDone.
  AdmitResult AdmitRequest(const std::string& client,
                           Clock::time_point now = Clock::now());
  void OnRequestDone(const std::string& client);

  DosGuardStats stats() const;
  const DosGuardOptions& options() const { return options_; }

 private:
  struct ClientEntry {
    size_t connections = 0;
    size_t inflight = 0;
    double tokens = 0.0;
    Clock::time_point last_refill;
    Clock::time_point last_active;
  };

  /// Advances the bucket to `now` (caller holds mu_).
  void Refill(ClientEntry* entry, Clock::time_point now) const;
  ClientEntry& Touch(const std::string& client, Clock::time_point now);
  void SweepIdle(Clock::time_point now);
  void MaybeErase(const std::string& client);

  const DosGuardOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, ClientEntry> clients_;
  size_t open_connections_ = 0;
  size_t inflight_requests_ = 0;
  DosGuardStats stats_;
  Clock::time_point last_sweep_{};
};

}  // namespace net
}  // namespace urm
