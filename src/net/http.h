#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file http.h
/// Dependency-free HTTP/1.1 message layer for the network tier: an
/// incremental request parser (feed bytes as they arrive off the
/// socket; the parser tells you when a full request is available or
/// why the stream is unrecoverable) and a response serializer. Scope
/// is deliberately the subset the /v1 API needs: GET/POST,
/// Content-Length bodies (Transfer-Encoding is rejected with 501),
/// keep-alive, and the WebSocket upgrade handshake headers. Both CRLF
/// and bare-LF line endings are accepted on input (strictly CRLF on
/// output).

namespace urm {
namespace net {
namespace http {

struct Header {
  std::string name;
  std::string value;
};

/// \brief One parsed request. Header lookups are case-insensitive on
/// the header name (values keep their case).
struct Request {
  std::string method;   ///< e.g. "GET", "POST" (kept as sent)
  std::string target;   ///< raw request target, e.g. "/v1/query?x=1"
  std::string path;     ///< target up to the first '?' or '#'
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<Header> headers;
  std::string body;

  /// First header with this name (case-insensitive), or nullptr.
  const std::string* FindHeader(std::string_view name) const;

  /// True when the (comma-separated) header contains `token`,
  /// case-insensitively — e.g. HasHeaderToken("Connection", "upgrade").
  bool HasHeaderToken(std::string_view name, std::string_view token) const;

  /// Keep-alive per HTTP/1.1 defaults: 1.1 unless "Connection: close",
  /// 1.0 only with "Connection: keep-alive".
  bool keep_alive() const;
};

struct ParserLimits {
  /// Request line + headers byte cap (431 beyond it).
  size_t max_head_bytes = 16 * 1024;
  /// Body byte cap via Content-Length (413 beyond it). The connection
  /// layer also bounds total buffered bytes independently.
  size_t max_body_bytes = 1024 * 1024;
};

/// \brief Incremental HTTP/1.1 request parser.
///
/// Feed() consumes bytes until the request is complete or an error is
/// found; call Reset() to parse the next request of a keep-alive
/// connection. On error, `error_code()` is the HTTP status the server
/// should answer with before closing (400/413/431/501/505).
class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = ParserLimits())
      : limits_(limits) {}

  enum class State { kHead, kBody, kComplete, kError };

  /// Consumes as much of `data` as this request needs; returns the
  /// number of bytes consumed (the rest belongs to the next request).
  size_t Feed(std::string_view data);

  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  int error_code() const { return error_code_; }
  const std::string& error() const { return error_; }

  /// The parsed request; meaningful once complete().
  const Request& request() const { return request_; }
  Request& request() { return request_; }

  void Reset();

 private:
  void Fail(int code, std::string reason);
  /// Parses head_ (request line + headers); transitions to
  /// kBody/kComplete/kError.
  void ParseHead();

  ParserLimits limits_;
  State state_ = State::kHead;
  std::string head_;          ///< bytes up to the blank line
  size_t body_expected_ = 0;  ///< Content-Length once parsed
  int error_code_ = 0;
  std::string error_;
  Request request_;
};

/// \brief One response to serialize. `content_type` is skipped when
/// empty (e.g. 204) — the serializer always emits Content-Length.
struct Response {
  int code = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<Header> extra_headers;

  static Response Json(int code, std::string body);
  static Response Text(int code, std::string body);
};

const char* ReasonPhrase(int code);

/// Renders status line + headers + body. `keep_alive` controls the
/// Connection header the peer sees.
std::string SerializeResponse(const Response& response, bool keep_alive);

/// ASCII case-insensitive comparison (header names, tokens).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace http
}  // namespace net
}  // namespace urm
