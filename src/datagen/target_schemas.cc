#include "datagen/target_schemas.h"

#include "common/logging.h"

namespace urm {
namespace datagen {

using matching::SchemaDef;
using matching::SeedScores;
using matching::TableDef;

const char* TargetSchemaName(TargetSchemaId id) {
  switch (id) {
    case TargetSchemaId::kExcel:
      return "Excel";
    case TargetSchemaId::kNoris:
      return "Noris";
    case TargetSchemaId::kParagon:
      return "Paragon";
  }
  return "?";
}

std::vector<TargetSchemaId> AllTargetSchemas() {
  return {TargetSchemaId::kExcel, TargetSchemaId::kNoris,
          TargetSchemaId::kParagon};
}

namespace {

/// Seeds shared by all three schemas for the attribute names that appear
/// in more than one of them. Scores mimic COMA++ composite similarities:
/// every queried attribute has >= 2 candidate source attributes so the
/// k-best mappings genuinely disagree (the paper's uncertainty source).
/// Entries whose target attribute a schema does not define are skipped.
void AddCommonPoSeeds(const SchemaDef& schema, SeedScores* seeds) {
  auto put = [&](const std::string& attr, const std::string& src,
                 double score) {
    std::string qualified = "PO." + attr;
    if (!schema.HasAttribute(qualified)) return;
    (*seeds)[{qualified, src}] = score;
  };
  put("orderNum", "orders.o_orderkey", 0.85);
  put("orderNum", "lineitem.l_orderkey", 0.845);
  put("orderNum", "orders.o_custkey", 0.84);
  put("telephone", "customer.c_phone", 0.85);
  put("telephone", "supplier.s_phone", 0.845);
  put("invoiceTo", "customer.c_name", 0.66);
  put("invoiceTo", "orders.o_clerk", 0.655);
  put("invoiceTo", "supplier.s_name", 0.65);
  put("priority", "orders.o_orderpriority", 0.88);
  put("company", "customer.c_name", 0.60);
  put("company", "supplier.s_name", 0.595);
  put("company", "customer.c_mktsegment", 0.59);
  put("deliverToStreet", "customer.c_address", 0.70);
  put("deliverToStreet", "supplier.s_address", 0.695);
  put("deliverTo", "customer.c_name", 0.64);
  put("deliverTo", "orders.o_clerk", 0.635);
  put("deliverTo", "supplier.s_name", 0.63);
  put("billTo", "customer.c_name", 0.65);
  put("billTo", "orders.o_clerk", 0.645);
  put("billTo", "supplier.s_name", 0.64);
  put("shipToAddress", "customer.c_address", 0.72);
  put("shipToAddress", "supplier.s_address", 0.715);
  put("shipToPhone", "customer.c_phone", 0.82);
  put("shipToPhone", "supplier.s_phone", 0.815);
  put("billToAddress", "customer.c_address", 0.71);
  put("billToAddress", "supplier.s_address", 0.705);
  put("customerNum", "customer.c_custkey", 0.80);
  put("customerNum", "orders.o_custkey", 0.75);
  put("poDate", "orders.o_orderdate", 0.80);
  put("status", "orders.o_orderstatus", 0.82);
  put("status", "lineitem.l_linestatus", 0.70);
  put("grandTotal", "orders.o_totalprice", 0.75);
  put("salesRep", "orders.o_clerk", 0.62);
}

void AddCommonItemSeeds(const SchemaDef& schema, SeedScores* seeds) {
  auto put = [&](const std::string& attr, const std::string& src,
                 double score) {
    std::string qualified = "Item." + attr;
    if (!schema.HasAttribute(qualified)) return;
    (*seeds)[{qualified, src}] = score;
  };
  put("itemNum", "lineitem.l_partkey", 0.80);
  put("itemNum", "part.p_partkey", 0.795);
  put("itemNum", "partsupp.ps_partkey", 0.79);
  put("itemNum", "lineitem.l_suppkey", 0.785);
  put("orderNum", "lineitem.l_orderkey", 0.82);
  put("orderNum", "orders.o_orderkey", 0.815);
  put("orderNum", "orders.o_custkey", 0.81);
  put("quantity", "lineitem.l_quantity", 0.88);
  put("quantity", "partsupp.ps_availqty", 0.875);
  put("unitPrice", "part.p_retailprice", 0.72);
  put("unitPrice", "partsupp.ps_supplycost", 0.715);
  put("unitPrice", "lineitem.l_extendedprice", 0.71);
  put("price", "lineitem.l_extendedprice", 0.74);
  put("price", "part.p_retailprice", 0.735);
  put("price", "partsupp.ps_supplycost", 0.73);
  put("lineNumber", "lineitem.l_linenumber", 0.85);
  put("shipDate", "lineitem.l_shipdate", 0.85);
  put("discountPct", "lineitem.l_discount", 0.80);
}

TargetSchemaBundle MakeExcel() {
  // 28 PO attributes + 20 Item attributes = 48 (paper: Excel has 48).
  SchemaDef schema("Excel", {});
  URM_CHECK_OK(schema.AddTable(TableDef{
      "PO",
      {"orderNum",        "poDate",         "status",
       "telephone",       "invoiceTo",      "priority",
       "company",         "contactName",    "deliverToStreet",
       "deliverToCity",   "deliverToZip",   "deliverToCountry",
       "billingStreet",   "billingCity",    "billingZip",
       "billingCountry",  "currency",       "paymentTerms",
       "shipVia",         "freightCharge",  "taxRate",
       "subtotal",        "grandTotal",     "customerNum",
       "salesRep",        "departmentCode", "projectCode",
       "remarks"}}));
  URM_CHECK_OK(schema.AddTable(TableDef{
      "Item",
      {"itemNum",       "orderNum",       "partDescription",
       "quantity",      "unit",           "unitPrice",
       "extendedPrice", "discountPct",    "taxAmount",
       "lineNumber",    "shipDate",       "promiseDate",
       "warehouseCode", "backorderedQty", "uomCode",
       "catalogNum",    "manufacturer",   "weight",
       "color",         "notes"}}));
  URM_CHECK_EQ(schema.NumAttributes(), 48u);

  SeedScores seeds;
  AddCommonPoSeeds(schema, &seeds);
  AddCommonItemSeeds(schema, &seeds);
  seeds[{"PO.taxRate", "lineitem.l_tax"}] = 0.60;
  seeds[{"Item.extendedPrice", "lineitem.l_extendedprice"}] = 0.82;
  return TargetSchemaBundle{std::move(schema), std::move(seeds)};
}

TargetSchemaBundle MakeNoris() {
  // 38 PO attributes + 28 Item attributes = 66 (paper: Noris has 66).
  SchemaDef schema("Noris", {});
  URM_CHECK_OK(schema.AddTable(TableDef{
      "PO",
      {"orderNum",         "orderDate",       "orderType",
       "telephone",        "faxNumber",       "invoiceTo",
       "deliverTo",        "deliverToStreet", "deliverToCity",
       "deliverToRegion",  "deliverToPostal", "deliverToNation",
       "invoiceStreet",    "invoiceCity",     "invoiceRegion",
       "invoicePostal",    "invoiceNation",   "contactPerson",
       "contactEmail",     "customerNum",     "customerRef",
       "departmentName",   "costCenter",      "currencyCode",
       "exchangeRate",     "paymentMethod",   "paymentDays",
       "shippingMethod",   "shippingTerms",   "insuranceFlag",
       "priorityClass",    "approvalStatus",  "approvedBy",
       "totalBeforeTax",   "totalTax",        "grandTotal",
       "revisionNumber",   "remarks"}}));
  URM_CHECK_OK(schema.AddTable(TableDef{
      "Item",
      {"itemNum",        "orderNum",       "position",
       "materialNumber", "materialGroup",  "shortText",
       "quantity",       "quantityUnit",   "unitPrice",
       "priceUnit",      "netValue",       "grossValue",
       "discountPct",    "surcharge",      "taxCode",
       "plant",          "storageBin",     "requestedDate",
       "confirmedDate",  "shipDate",       "vendorNumber",
       "vendorName",     "trackingNumber", "batchNumber",
       "serialNumber",   "inspectionFlag", "returnFlag",
       "notes"}}));
  URM_CHECK_EQ(schema.NumAttributes(), 66u);

  SeedScores seeds;
  AddCommonPoSeeds(schema, &seeds);
  AddCommonItemSeeds(schema, &seeds);
  seeds[{"PO.priorityClass", "orders.o_orderpriority"}] = 0.74;
  seeds[{"Item.vendorNumber", "supplier.s_suppkey"}] = 0.70;
  seeds[{"Item.vendorName", "supplier.s_name"}] = 0.72;
  seeds[{"Item.returnFlag", "lineitem.l_returnflag"}] = 0.84;
  return TargetSchemaBundle{std::move(schema), std::move(seeds)};
}

TargetSchemaBundle MakeParagon() {
  // 40 PO attributes + 29 Item attributes = 69 (paper: Paragon has 69).
  SchemaDef schema("Paragon", {});
  URM_CHECK_OK(schema.AddTable(TableDef{
      "PO",
      {"orderNum",        "orderDate",       "orderStatus",
       "telephone",       "invoiceTo",       "billTo",
       "billToAddress",   "billToCity",      "billToState",
       "billToZip",       "billToCountry",   "billToPhone",
       "shipTo",          "shipToAddress",   "shipToCity",
       "shipToState",     "shipToZip",       "shipToCountry",
       "shipToPhone",     "customerNum",     "customerPO",
       "accountNumber",   "creditTerms",     "creditLimit",
       "salesPerson",     "salesRegion",     "commissionPct",
       "freightTerms",    "carrierCode",     "priority",
       "promiseDate",     "cancelDate",      "taxExemptFlag",
       "taxRate",         "subtotal",        "freightCharge",
       "totalDiscount",   "grandTotal",      "enteredBy",
       "remarks"}}));
  URM_CHECK_OK(schema.AddTable(TableDef{
      "Item",
      {"itemNum",        "orderNum",      "lineNumber",
       "price",          "quantity",      "quantityShipped",
       "quantityOpen",   "unitOfMeasure", "description",
       "productClass",   "productLine",   "warehouse",
       "binLocation",    "leadTime",      "shipDate",
       "requestDate",    "discountPct",   "listPrice",
       "netPrice",       "extendedValue", "costAmount",
       "marginPct",      "taxableFlag",   "commodityCode",
       "revisionLevel",  "drawingNumber", "vendorItemNum",
       "backorderFlag",  "notes"}}));
  URM_CHECK_EQ(schema.NumAttributes(), 69u);

  SeedScores seeds;
  AddCommonPoSeeds(schema, &seeds);
  AddCommonItemSeeds(schema, &seeds);
  seeds[{"PO.billToPhone", "customer.c_phone"}] = 0.80;
  seeds[{"PO.billToPhone", "supplier.s_phone"}] = 0.74;
  seeds[{"Item.listPrice", "part.p_retailprice"}] = 0.76;
  seeds[{"Item.costAmount", "partsupp.ps_supplycost"}] = 0.72;
  return TargetSchemaBundle{std::move(schema), std::move(seeds)};
}

}  // namespace

TargetSchemaBundle GetTargetSchema(TargetSchemaId id) {
  switch (id) {
    case TargetSchemaId::kExcel:
      return MakeExcel();
    case TargetSchemaId::kNoris:
      return MakeNoris();
    case TargetSchemaId::kParagon:
      return MakeParagon();
  }
  URM_CHECK(false) << "unknown target schema";
  return {};
}

}  // namespace datagen
}  // namespace urm
