#pragma once

#include <cstdint>

#include "common/status.h"
#include "matching/schema_def.h"
#include "relational/catalog.h"

/// \file tpch.h
/// Deterministic TPC-H-style source instance generator. The paper uses
/// dbgen to produce a 100 MB instance (~1M tuples) over the 8-relation,
/// 46-attribute TPC-H schema; we synthesize an equivalent instance
/// in-process so experiments are reproducible without external tools.
/// Value pools deliberately contain the constants used by the workload
/// queries ('335-1736', 'Mary', 'ABC', 'Central', '00001', ...).

namespace urm {
namespace datagen {

/// Knobs for instance generation.
struct TpchOptions {
  /// Approximate target size in MB; row counts scale linearly
  /// (100 MB ~ 866k tuples, mirroring TPC-H SF 0.1).
  double target_mb = 10.0;
  uint64_t seed = 42;
};

/// The logical TPC-H schema (8 relations, 46 attributes) as seen by the
/// matcher.
matching::SchemaDef TpchSchema();

/// Generates the source instance `D`. Relations are registered under
/// their schema names with columns qualified "<relation>.<attribute>".
Result<relational::Catalog> GenerateTpch(const TpchOptions& options);

/// Row counts used for a given target size (exposed for tests).
struct TpchRowCounts {
  size_t region, nation, supplier, customer, part, partsupp, orders,
      lineitem;
  size_t Total() const {
    return region + nation + supplier + customer + part + partsupp +
           orders + lineitem;
  }
};
TpchRowCounts RowCountsFor(double target_mb);

}  // namespace datagen
}  // namespace urm
