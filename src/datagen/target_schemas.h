#pragma once

#include <string>
#include <vector>

#include "matching/matcher.h"
#include "matching/schema_def.h"

/// \file target_schemas.h
/// The three purchase-order target schemas used in the paper's
/// evaluation — Excel (48 attributes), Noris (66) and Paragon (69) — in
/// the relationalized form the paper queries (tables `PO` and `Item`).
/// The schemas come from COMA++'s public purchase-order benchmark; we
/// author equivalent attribute lists here, together with the curated
/// *seed scores* that stand in for COMA++'s instance/terminology
/// evidence when matching against TPC-H (see DESIGN.md §5).

namespace urm {
namespace datagen {

enum class TargetSchemaId {
  kExcel,
  kNoris,
  kParagon,
};

const char* TargetSchemaName(TargetSchemaId id);

/// A target schema plus the matcher seeds used with it.
struct TargetSchemaBundle {
  matching::SchemaDef schema;
  matching::SeedScores seeds;
};

/// Returns the bundle for one of the three evaluation schemas.
TargetSchemaBundle GetTargetSchema(TargetSchemaId id);

/// All three ids, in paper order.
std::vector<TargetSchemaId> AllTargetSchemas();

}  // namespace datagen
}  // namespace urm
