#include "datagen/tpch.h"

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "relational/relation.h"

namespace urm {
namespace datagen {

using relational::Catalog;
using relational::ColumnDef;
using relational::Relation;
using relational::RelationSchema;
using relational::Row;
using relational::Value;
using relational::ValueType;

namespace {

/// Zero-padded numeric key, e.g. 1 -> "00001". Keys are strings so that
/// target-query constants like itemNum = '00001' are type-compatible.
std::string Key(size_t n, int width = 5) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*zu", width, n);
  return buf;
}

// Value pools. Each pool includes the constants the workload queries
// select on, so every query has non-trivial matches.
const std::vector<std::string>& PhonePool() {
  static const std::vector<std::string> pool = [] {
    std::vector<std::string> p = {"335-1736"};
    Rng rng(7001);
    for (int i = 0; i < 199; ++i) {
      p.push_back(std::to_string(rng.Uniform(100, 999)) + "-" +
                  std::to_string(rng.Uniform(1000, 9999)));
    }
    return p;
  }();
  return pool;
}

const std::vector<std::string>& NamePool() {
  static const std::vector<std::string> pool = {
      "Mary",  "Alice",  "Bob",   "Cindy",  "David", "Erin",
      "Frank", "Grace",  "Henry", "Irene",  "Jack",  "Karen",
      "Liam",  "Nina",   "Oscar", "Paula",  "Quinn", "Rita",
      "Steve", "Teresa", "Uma",   "Victor", "Wendy", "Xavier"};
  return pool;
}

const std::vector<std::string>& AddressPool() {
  static const std::vector<std::string> pool = {
      "Central",   "ABC",        "Pokfulam",  "Queensway", "Nathan",
      "Hennessy",  "Connaught",  "Des Voeux", "Gloucester", "Harcourt",
      "Jaffe",     "Lockhart",   "Johnston",  "Hollywood",  "Stanley",
      "Caine",     "Bonham",     "Robinson",  "Kennedy",    "Aberdeen"};
  return pool;
}

const std::vector<std::string>& CompanyPool() {
  static const std::vector<std::string> pool = {
      "ABC",      "Acme",     "Globex", "Initech", "Umbrella",
      "Stark",    "Wayne",    "Wonka",  "Tyrell",  "Cyberdyne",
      "Hooli",    "Vandelay", "Oscorp", "Gringotts", "Monarch"};
  return pool;
}

const std::vector<std::string>& SegmentPool() {
  static const std::vector<std::string> pool = {
      "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"};
  return pool;
}

const std::vector<std::string>& NationPool() {
  static const std::vector<std::string> pool = {
      "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA",
      "EGYPT",   "FRANCE",    "GERMANY", "INDIA", "JAPAN",
      "KENYA",   "MOROCCO",   "PERU",   "ROMANIA", "RUSSIA",
      "UK",      "US",        "VIETNAM", "IRAN",  "IRAQ",
      "JORDAN",  "KOREA",     "SPAIN",  "MALTA",  "CUBA"};
  return pool;
}

std::string Date(Rng& rng) {
  int y = static_cast<int>(rng.Uniform(1992, 1998));
  int m = static_cast<int>(rng.Uniform(1, 12));
  int d = static_cast<int>(rng.Uniform(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

RelationSchema MakeSchema(
    const std::string& rel,
    const std::vector<std::pair<std::string, ValueType>>& cols) {
  RelationSchema schema;
  for (const auto& [name, type] : cols) {
    URM_CHECK_OK(schema.AddColumn(ColumnDef{rel + "." + name, type}));
  }
  return schema;
}

}  // namespace

matching::SchemaDef TpchSchema() {
  matching::SchemaDef schema("TPC-H", {});
  URM_CHECK_OK(schema.AddTable(
      {"region", {"r_regionkey", "r_name", "r_comment"}}));
  URM_CHECK_OK(schema.AddTable(
      {"nation", {"n_nationkey", "n_name", "n_regionkey"}}));
  URM_CHECK_OK(schema.AddTable(
      {"supplier",
       {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal"}}));
  URM_CHECK_OK(schema.AddTable(
      {"customer",
       {"c_custkey", "c_name", "c_address", "c_phone", "c_acctbal",
        "c_nationkey", "c_mktsegment"}}));
  URM_CHECK_OK(schema.AddTable(
      {"part",
       {"p_partkey", "p_name", "p_brand", "p_type", "p_size",
        "p_retailprice"}}));
  URM_CHECK_OK(schema.AddTable(
      {"partsupp",
       {"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}}));
  URM_CHECK_OK(schema.AddTable(
      {"orders",
       {"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
        "o_orderdate", "o_orderpriority", "o_clerk"}}));
  URM_CHECK_OK(schema.AddTable(
      {"lineitem",
       {"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
        "l_quantity", "l_extendedprice", "l_discount", "l_tax",
        "l_returnflag", "l_linestatus", "l_shipdate"}}));
  URM_CHECK_EQ(schema.NumAttributes(), 46u);
  return schema;
}

TpchRowCounts RowCountsFor(double target_mb) {
  // TPC-H SF1 is roughly 1 GB; scale row counts linearly, with small
  // relations floored so the schema is never degenerate.
  double sf = target_mb / 1000.0;
  auto scaled = [sf](double base, size_t floor_n) {
    size_t n = static_cast<size_t>(base * sf);
    return n < floor_n ? floor_n : n;
  };
  TpchRowCounts counts{};
  counts.region = 5;
  counts.nation = 25;
  counts.supplier = scaled(10000, 20);
  counts.customer = scaled(150000, 100);
  counts.part = scaled(200000, 100);
  counts.partsupp = scaled(800000, 200);
  counts.orders = scaled(1500000, 300);
  counts.lineitem = scaled(6000000, 1200);
  return counts;
}

Result<Catalog> GenerateTpch(const TpchOptions& options) {
  if (options.target_mb <= 0.0) {
    return Status::InvalidArgument("target_mb must be positive");
  }
  TpchRowCounts counts = RowCountsFor(options.target_mb);
  Rng rng(options.seed);
  Catalog catalog;

  {  // region
    Relation rel(MakeSchema("region", {{"r_regionkey", ValueType::kString},
                                       {"r_name", ValueType::kString},
                                       {"r_comment", ValueType::kString}}));
    const char* names[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};
    std::vector<Row> rows;
    rows.reserve(counts.region);
    for (size_t i = 0; i < counts.region; ++i) {
      rows.push_back({Key(i + 1, 2), names[i % 5], rng.String(12)});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "region", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // nation
    Relation rel(MakeSchema("nation", {{"n_nationkey", ValueType::kString},
                                       {"n_name", ValueType::kString},
                                       {"n_regionkey", ValueType::kString}}));
    std::vector<Row> rows;
    rows.reserve(counts.nation);
    for (size_t i = 0; i < counts.nation; ++i) {
      rows.push_back(
          {Key(i + 1, 2), NationPool()[i % NationPool().size()],
           Key(rng.Uniform(1, static_cast<int64_t>(counts.region)), 2)});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "nation", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // supplier
    Relation rel(MakeSchema("supplier", {{"s_suppkey", ValueType::kString},
                                         {"s_name", ValueType::kString},
                                         {"s_address", ValueType::kString},
                                         {"s_phone", ValueType::kString},
                                         {"s_acctbal", ValueType::kDouble}}));
    std::vector<Row> rows;
    rows.reserve(counts.supplier);
    for (size_t i = 0; i < counts.supplier; ++i) {
      rows.push_back({Key(i + 1), rng.Choice(CompanyPool()),
                      rng.Choice(AddressPool()),
                      PhonePool()[rng.SkewedIndex(PhonePool().size())],
                      rng.NextDouble() * 10000.0});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "supplier", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // customer
    Relation rel(MakeSchema("customer",
                            {{"c_custkey", ValueType::kString},
                             {"c_name", ValueType::kString},
                             {"c_address", ValueType::kString},
                             {"c_phone", ValueType::kString},
                             {"c_acctbal", ValueType::kDouble},
                             {"c_nationkey", ValueType::kString},
                             {"c_mktsegment", ValueType::kString}}));
    std::vector<Row> rows;
    rows.reserve(counts.customer);
    for (size_t i = 0; i < counts.customer; ++i) {
      rows.push_back(
          {Key(i + 1), NamePool()[rng.SkewedIndex(NamePool().size())],
           AddressPool()[rng.SkewedIndex(AddressPool().size())],
           PhonePool()[rng.SkewedIndex(PhonePool().size())],
           rng.NextDouble() * 10000.0,
           Key(rng.Uniform(1, static_cast<int64_t>(counts.nation)), 2),
           rng.Choice(SegmentPool())});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "customer", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // part
    Relation rel(MakeSchema("part", {{"p_partkey", ValueType::kString},
                                     {"p_name", ValueType::kString},
                                     {"p_brand", ValueType::kString},
                                     {"p_type", ValueType::kString},
                                     {"p_size", ValueType::kInt64},
                                     {"p_retailprice", ValueType::kDouble}}));
    const std::vector<std::string> types = {"STANDARD", "SMALL", "MEDIUM",
                                            "LARGE", "ECONOMY", "PROMO"};
    std::vector<Row> rows;
    rows.reserve(counts.part);
    for (size_t i = 0; i < counts.part; ++i) {
      rows.push_back({Key(i + 1), rng.String(10),
                      "Brand#" + std::to_string(rng.Uniform(1, 5)) +
                          std::to_string(rng.Uniform(1, 5)),
                      rng.Choice(types), rng.Uniform(1, 50),
                      900.0 + rng.NextDouble() * 1100.0});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "part", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // partsupp
    Relation rel(MakeSchema("partsupp",
                            {{"ps_partkey", ValueType::kString},
                             {"ps_suppkey", ValueType::kString},
                             {"ps_availqty", ValueType::kInt64},
                             {"ps_supplycost", ValueType::kDouble}}));
    std::vector<Row> rows;
    rows.reserve(counts.partsupp);
    for (size_t i = 0; i < counts.partsupp; ++i) {
      rows.push_back(
          {Key(rng.Uniform(1, static_cast<int64_t>(counts.part))),
           Key(rng.Uniform(1, static_cast<int64_t>(counts.supplier))),
           rng.Uniform(1, 9999), rng.NextDouble() * 1000.0});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "partsupp", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // orders
    Relation rel(MakeSchema("orders",
                            {{"o_orderkey", ValueType::kString},
                             {"o_custkey", ValueType::kString},
                             {"o_orderstatus", ValueType::kString},
                             {"o_totalprice", ValueType::kDouble},
                             {"o_orderdate", ValueType::kString},
                             {"o_orderpriority", ValueType::kInt64},
                             {"o_clerk", ValueType::kString}}));
    const std::vector<std::string> statuses = {"O", "F", "P"};
    std::vector<Row> rows;
    rows.reserve(counts.orders);
    for (size_t i = 0; i < counts.orders; ++i) {
      rows.push_back(
          {Key(i + 1),
           Key(rng.Uniform(1, static_cast<int64_t>(counts.customer))),
           rng.Choice(statuses), rng.NextDouble() * 500000.0, Date(rng),
           rng.Uniform(1, 5),
           NamePool()[rng.SkewedIndex(NamePool().size())]});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "orders", std::make_shared<const Relation>(std::move(rel))));
  }

  {  // lineitem
    Relation rel(MakeSchema("lineitem",
                            {{"l_orderkey", ValueType::kString},
                             {"l_partkey", ValueType::kString},
                             {"l_suppkey", ValueType::kString},
                             {"l_linenumber", ValueType::kInt64},
                             {"l_quantity", ValueType::kInt64},
                             {"l_extendedprice", ValueType::kDouble},
                             {"l_discount", ValueType::kDouble},
                             {"l_tax", ValueType::kDouble},
                             {"l_returnflag", ValueType::kString},
                             {"l_linestatus", ValueType::kString},
                             {"l_shipdate", ValueType::kString}}));
    const std::vector<std::string> flags = {"A", "N", "R"};
    std::vector<Row> rows;
    rows.reserve(counts.lineitem);
    for (size_t i = 0; i < counts.lineitem; ++i) {
      rows.push_back(
          {Key(rng.Uniform(1, static_cast<int64_t>(counts.orders))),
           Key(rng.Uniform(1, static_cast<int64_t>(counts.part))),
           Key(rng.Uniform(1, static_cast<int64_t>(counts.supplier))),
           rng.Uniform(1, 7), rng.Uniform(1, 50),
           rng.NextDouble() * 100000.0, rng.NextDouble() * 0.1,
           rng.NextDouble() * 0.08, rng.Choice(flags),
           rng.Choice(flags), Date(rng)});
    }
    URM_CHECK_OK(rel.AddRows(std::move(rows)));
    URM_RETURN_NOT_OK(catalog.Register(
        "lineitem", std::make_shared<const Relation>(std::move(rel))));
  }

  return catalog;
}

}  // namespace datagen
}  // namespace urm
