#include "algebra/fingerprint.h"

#include <cstdio>

#include "common/hash_util.h"

namespace urm {
namespace algebra {

namespace {

/// 64-bit mix (splitmix64 finalizer): order-sensitive accumulation.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

uint64_t MixString(uint64_t h, const std::string& s) {
  return Mix(h, Fnv1a(s));
}

uint64_t HashValue(uint64_t h, const relational::Value& v) {
  h = Mix(h, static_cast<uint64_t>(v.type()));
  return Mix(h, static_cast<uint64_t>(v.Hash()));
}

uint64_t HashPredicate(uint64_t h, const Predicate& p) {
  h = MixString(h, p.lhs);
  h = Mix(h, static_cast<uint64_t>(p.op));
  if (p.rhs_attr.has_value()) {
    h = Mix(h, 1);
    h = MixString(h, *p.rhs_attr);
  } else {
    h = Mix(h, 2);
    h = HashValue(h, p.rhs_value);
  }
  return h;
}

uint64_t HashNode(uint64_t h, const PlanPtr& plan) {
  if (plan == nullptr) return Mix(h, 0);
  h = Mix(h, static_cast<uint64_t>(plan->kind) + 1);
  switch (plan->kind) {
    case PlanKind::kScan:
      h = MixString(h, plan->table);
      h = MixString(h, plan->alias);
      return h;
    case PlanKind::kRelationLeaf:
      h = MixString(h, plan->label);
      return h;
    case PlanKind::kSelect:
      h = HashPredicate(h, plan->predicate);
      return HashNode(h, plan->child);
    case PlanKind::kProject:
      h = Mix(h, plan->attrs.size());
      for (const auto& a : plan->attrs) h = MixString(h, a);
      return HashNode(h, plan->child);
    case PlanKind::kProduct:
      h = HashNode(h, plan->child);
      return HashNode(h, plan->right);
    case PlanKind::kAggregate:
      h = Mix(h, static_cast<uint64_t>(plan->agg));
      h = MixString(h, plan->agg_attr);
      return HashNode(h, plan->child);
    case PlanKind::kDistinct:
      return HashNode(h, plan->child);
  }
  return h;
}

}  // namespace

std::string PlanFingerprint::ToString() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx:%016llx",
                static_cast<unsigned long long>(plan_hash),
                static_cast<unsigned long long>(context_hash));
  return buf;
}

size_t PlanFingerprintHash::operator()(const PlanFingerprint& fp) const {
  return static_cast<size_t>(Mix(fp.plan_hash, fp.context_hash));
}

uint64_t HashPlan(const PlanPtr& plan) {
  return HashNode(0xcbf29ce484222325ULL, plan);
}

uint64_t MixHash(uint64_t h, uint64_t v) { return Mix(h, v); }

PlanFingerprint MakeFingerprint(const PlanPtr& plan,
                                uint64_t context_hash) {
  PlanFingerprint fp;
  fp.plan_hash = HashPlan(plan);
  fp.context_hash = context_hash;
  return fp;
}

}  // namespace algebra
}  // namespace urm
