#include "algebra/optimize.h"

#include <algorithm>

#include "common/logging.h"

namespace urm {
namespace algebra {

using relational::Catalog;
using relational::ColumnDef;
using relational::RelationSchema;

Result<RelationSchema> StaticSchema(const PlanPtr& plan,
                                    const Catalog& catalog) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto rel = catalog.Get(plan->table);
      if (!rel.ok()) return rel.status();
      const RelationSchema& base = rel.ValueOrDie()->schema();
      if (plan->alias.empty()) return base;
      RelationSchema renamed;
      for (const auto& col : base.columns()) {
        URM_RETURN_NOT_OK(renamed.AddColumn(ColumnDef{
            plan->alias + "." + relational::AttributePart(col.name),
            col.type}));
      }
      return renamed;
    }
    case PlanKind::kRelationLeaf:
      return plan->relation->schema();
    case PlanKind::kSelect:
      return StaticSchema(plan->child, catalog);
    case PlanKind::kProject: {
      auto child = StaticSchema(plan->child, catalog);
      if (!child.ok()) return child.status();
      return child.ValueOrDie().Select(plan->attrs);
    }
    case PlanKind::kProduct: {
      auto left = StaticSchema(plan->child, catalog);
      if (!left.ok()) return left.status();
      auto right = StaticSchema(plan->right, catalog);
      if (!right.ok()) return right.status();
      return left.ValueOrDie().Concat(right.ValueOrDie());
    }
    case PlanKind::kAggregate: {
      RelationSchema out;
      URM_RETURN_NOT_OK(out.AddColumn(ColumnDef{
          plan->agg == AggKind::kCount ? "count" : "sum",
          plan->agg == AggKind::kCount ? relational::ValueType::kInt64
                                       : relational::ValueType::kDouble}));
      return out;
    }
    case PlanKind::kDistinct:
      return StaticSchema(plan->child, catalog);
  }
  return Status::Internal("unreachable");
}

namespace {

/// Splits nested Cartesian products into their independent factors
/// (Select and other node kinds are barriers).
void FlattenProducts(const PlanPtr& plan, std::vector<PlanPtr>* factors) {
  if (plan->kind == PlanKind::kProduct) {
    FlattenProducts(plan->child, factors);
    FlattenProducts(plan->right, factors);
    return;
  }
  factors->push_back(plan);
}

/// Left-deep product of `factors` (which must be non-empty).
PlanPtr CombineFactors(const std::vector<PlanPtr>& factors) {
  URM_CHECK(!factors.empty());
  PlanPtr out = factors[0];
  for (size_t i = 1; i < factors.size(); ++i) {
    out = MakeProduct(out, factors[i]);
  }
  return out;
}

/// Pushes a single predicate into `plan` as deep as possible; returns
/// the resulting tree. For a predicate over a product the product is
/// *reassociated* so that the predicate lands on exactly the factors it
/// references — a join predicate then touches a two-factor product that
/// the evaluator executes as a hash join, and unrelated factors are
/// never multiplied in.
Result<PlanPtr> PushPredicate(const Predicate& pred, const PlanPtr& plan,
                              const Catalog& catalog) {
  if (plan->kind == PlanKind::kSelect) {
    // Push below sibling selections so products are reached.
    auto pushed = PushPredicate(pred, plan->child, catalog);
    if (!pushed.ok()) return pushed.status();
    return MakeSelect(std::move(pushed).ValueOrDie(), plan->predicate);
  }
  if (plan->kind != PlanKind::kProduct) {
    return MakeSelect(plan, pred);
  }

  std::vector<PlanPtr> factors;
  FlattenProducts(plan, &factors);

  // Locate the factor(s) holding the referenced attributes.
  const auto refs = pred.ReferencedAttributes();
  std::vector<size_t> hits;
  for (const auto& ref : refs) {
    bool found = false;
    for (size_t i = 0; i < factors.size(); ++i) {
      auto schema = StaticSchema(factors[i], catalog);
      if (!schema.ok()) return schema.status();
      if (schema.ValueOrDie().IndexOf(ref).has_value()) {
        if (std::find(hits.begin(), hits.end(), i) == hits.end()) {
          hits.push_back(i);
        }
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("predicate attribute not in any factor: " +
                              ref);
    }
  }

  if (hits.size() == 1) {
    auto pushed = PushPredicate(pred, factors[hits[0]], catalog);
    if (!pushed.ok()) return pushed.status();
    factors[hits[0]] = std::move(pushed).ValueOrDie();
    return CombineFactors(factors);
  }
  // Join predicate across two factors: bind exactly those two.
  size_t lo = std::min(hits[0], hits[1]), hi = std::max(hits[0], hits[1]);
  PlanPtr joined =
      MakeSelect(MakeProduct(factors[lo], factors[hi]), pred);
  std::vector<PlanPtr> rebuilt;
  for (size_t i = 0; i < factors.size(); ++i) {
    if (i == lo) {
      rebuilt.push_back(joined);
    } else if (i != hi) {
      rebuilt.push_back(factors[i]);
    }
  }
  return CombineFactors(rebuilt);
}

}  // namespace

Result<PlanPtr> PushDownSelections(const PlanPtr& plan,
                                   const Catalog& catalog) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kRelationLeaf:
      return plan;
    case PlanKind::kSelect: {
      auto child = PushDownSelections(plan->child, catalog);
      if (!child.ok()) return child.status();
      return PushPredicate(plan->predicate,
                           std::move(child).ValueOrDie(), catalog);
    }
    case PlanKind::kProject: {
      auto child = PushDownSelections(plan->child, catalog);
      if (!child.ok()) return child.status();
      return MakeProject(std::move(child).ValueOrDie(), plan->attrs);
    }
    case PlanKind::kProduct: {
      auto left = PushDownSelections(plan->child, catalog);
      if (!left.ok()) return left.status();
      auto right = PushDownSelections(plan->right, catalog);
      if (!right.ok()) return right.status();
      return MakeProduct(std::move(left).ValueOrDie(),
                         std::move(right).ValueOrDie());
    }
    case PlanKind::kAggregate: {
      auto child = PushDownSelections(plan->child, catalog);
      if (!child.ok()) return child.status();
      return MakeAggregate(std::move(child).ValueOrDie(), plan->agg,
                           plan->agg_attr);
    }
    case PlanKind::kDistinct: {
      auto child = PushDownSelections(plan->child, catalog);
      if (!child.ok()) return child.status();
      return MakeDistinct(std::move(child).ValueOrDie());
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace algebra
}  // namespace urm
