#include "algebra/evaluate.h"

#include "algebra/optimize.h"
#include "columnar/columnar_relation.h"
#include "common/logging.h"

namespace urm {
namespace algebra {

using relational::ColumnDef;
using relational::Relation;
using relational::RelationPtr;
using relational::RelationSchema;
using relational::Row;
using relational::Value;
using relational::ValueType;

namespace {

Result<RelationPtr> EvaluateScan(const PlanNode& node,
                                 const EvalContext& ctx) {
  URM_CHECK(ctx.catalog != nullptr);
  auto base = ctx.catalog->Get(node.table);
  if (!base.ok()) return base.status();
  RelationPtr rel = std::move(base).ValueOrDie();
  if (ctx.stats != nullptr) ctx.stats->scans++;
  if (node.alias.empty()) return rel;
  // Re-qualify columns to the instance alias; row storage is shared.
  RelationSchema renamed;
  for (const auto& col : rel->schema().columns()) {
    URM_RETURN_NOT_OK(renamed.AddColumn(
        ColumnDef{node.alias + "." + relational::AttributePart(col.name),
                  col.type}));
  }
  auto view = rel->WithSchema(std::move(renamed));
  if (!view.ok()) return view.status();
  return std::make_shared<const Relation>(std::move(view).ValueOrDie());
}

columnar::Cmp ToColumnarCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return columnar::Cmp::kEq;
    case CmpOp::kNe:
      return columnar::Cmp::kNe;
    case CmpOp::kLt:
      return columnar::Cmp::kLt;
    case CmpOp::kLe:
      return columnar::Cmp::kLe;
    case CmpOp::kGt:
      return columnar::Cmp::kGt;
    case CmpOp::kGe:
      return columnar::Cmp::kGe;
  }
  return columnar::Cmp::kEq;
}

Result<RelationPtr> EvaluateSelect(const PlanNode& node, RelationPtr input,
                                   const EvalContext& ctx) {
  auto bound = BoundPredicate::Bind(node.predicate, input->schema());
  if (!bound.ok()) return bound.status();
  const BoundPredicate& pred = bound.ValueOrDie();

  // Codec-aware path: an attr-vs-const predicate over an input whose
  // compressed encoding is live (catalog relations and their aliased
  // views) evaluates on the encoded column and gathers the selection
  // vector — no row-at-a-time loop, and only the predicate column's
  // encoded bytes are read to decide membership.
  if (!pred.rhs_index().has_value()) {
    if (const columnar::ColumnarRelation* enc = input->ColumnarIfEncoded()) {
      const columnar::Column& col = enc->column(pred.lhs_index());
      columnar::SelectionVector sel;
      col.EvalPredicate(ToColumnarCmp(pred.op()), pred.rhs_value(), &sel);
      Relation out = input->Gather(sel);
      if (ctx.stats != nullptr) {
        ctx.stats->columnar_scans++;
        ctx.stats->bytes_scanned += col.EncodedBytes();
        ctx.stats->logical_bytes_scanned += col.LogicalBytes();
        ctx.stats->tuples_produced += out.num_rows();
      }
      return std::make_shared<const Relation>(std::move(out));
    }
  }

  Relation out(input->schema());
  size_t touched_bytes = 0;
  for (const Row& row : input->rows()) {
    touched_bytes += relational::ApproxValueBytes(row[pred.lhs_index()]);
    if (pred.rhs_index().has_value()) {
      touched_bytes += relational::ApproxValueBytes(row[*pred.rhs_index()]);
    }
    if (pred.Matches(row)) {
      URM_CHECK_OK(out.AddRow(row));
    }
  }
  if (ctx.stats != nullptr) {
    ctx.stats->row_scans++;
    ctx.stats->bytes_scanned += touched_bytes;
    ctx.stats->logical_bytes_scanned += touched_bytes;
    ctx.stats->tuples_produced += out.num_rows();
  }
  return std::make_shared<const Relation>(std::move(out));
}

/// Cardinality of a plan's result. Products are counted as the product
/// of their sides' cardinalities without materializing rows; this keeps
/// COUNT over Cartesian covers (the paper's Q10 shape) tractable.
Result<double> CountRows(const PlanPtr& plan, const EvalContext& ctx) {
  if (plan->kind == PlanKind::kProduct) {
    auto left = CountRows(plan->child, ctx);
    if (!left.ok()) return left.status();
    auto right = CountRows(plan->right, ctx);
    if (!right.ok()) return right.status();
    return left.ValueOrDie() * right.ValueOrDie();
  }
  auto rel = Evaluate(plan, ctx);
  if (!rel.ok()) return rel.status();
  return static_cast<double>(rel.ValueOrDie()->num_rows());
}

struct ColumnSum {
  double sum = 0.0;
  bool all_int = true;
};

Result<ColumnSum> SumOverRelation(const RelationPtr& rel,
                                  const std::string& attr) {
  auto idx = rel->schema().IndexOf(attr);
  if (!idx.has_value()) {
    return Status::NotFound("SUM attribute not found: " + attr);
  }
  ColumnSum out;
  for (const Row& row : rel->rows()) {
    const Value& v = row[*idx];
    // NULLs and non-numeric values contribute nothing: a mapping can
    // plausibly (if wrongly) match a SUM attribute to a string column,
    // and the query must still evaluate under every possible mapping.
    if (v.is_null() || !v.is_numeric()) continue;
    if (v.type() != ValueType::kInt64) out.all_int = false;
    out.sum += v.NumericValue();
  }
  return out;
}

/// SUM(attr) over a plan. For a Product, the side owning `attr` is
/// summed and scaled by the other side's cardinality (exact under
/// Cartesian semantics), avoiding materialization.
Result<ColumnSum> SumColumn(const PlanPtr& plan, const std::string& attr,
                            const EvalContext& ctx) {
  if (plan->kind == PlanKind::kProduct) {
    URM_CHECK(ctx.catalog != nullptr);
    auto left_schema = StaticSchema(plan->child, *ctx.catalog);
    if (!left_schema.ok()) return left_schema.status();
    bool in_left = left_schema.ValueOrDie().IndexOf(attr).has_value();
    const PlanPtr& owner = in_left ? plan->child : plan->right;
    const PlanPtr& other = in_left ? plan->right : plan->child;
    auto part = SumColumn(owner, attr, ctx);
    if (!part.ok()) return part.status();
    auto scale = CountRows(other, ctx);
    if (!scale.ok()) return scale.status();
    ColumnSum out = part.ValueOrDie();
    out.sum *= scale.ValueOrDie();
    return out;
  }
  auto rel = Evaluate(plan, ctx);
  if (!rel.ok()) return rel.status();
  return SumOverRelation(rel.ValueOrDie(), attr);
}

Result<RelationPtr> EvaluateAggregate(const PlanNode& node,
                                      const EvalContext& ctx) {
  Row out_row;
  RelationSchema out_schema;
  if (node.agg == AggKind::kCount) {
    auto count = CountRows(node.child, ctx);
    if (!count.ok()) return count.status();
    URM_RETURN_NOT_OK(
        out_schema.AddColumn(ColumnDef{"count", ValueType::kInt64}));
    out_row.push_back(Value(static_cast<int64_t>(count.ValueOrDie())));
  } else {
    auto sum = SumColumn(node.child, node.agg_attr, ctx);
    if (!sum.ok()) return sum.status();
    const ColumnSum& s = sum.ValueOrDie();
    URM_RETURN_NOT_OK(out_schema.AddColumn(ColumnDef{
        "sum", s.all_int ? ValueType::kInt64 : ValueType::kDouble}));
    if (s.all_int) {
      out_row.push_back(Value(static_cast<int64_t>(s.sum)));
    } else {
      out_row.push_back(Value(s.sum));
    }
  }
  Relation out(std::move(out_schema));
  URM_CHECK_OK(out.AddRow(std::move(out_row)));
  if (ctx.stats != nullptr) ctx.stats->tuples_produced += 1;
  return std::make_shared<const Relation>(std::move(out));
}

/// Evaluates Distinct(Project(...)) by *splitting* the projection across
/// Cartesian products: distinct(π(A × B)) = distinct(π_A(A)) ×
/// distinct(π_B(B)) when every projected column comes from one side.
/// A side contributing no projected columns reduces to an existence
/// check (one zero-column row when non-empty). This keeps set-semantics
/// answers over Cartesian covers small without changing their content.
Result<RelationPtr> EvalDistinctProject(const std::vector<std::string>& attrs,
                                        const PlanPtr& node,
                                        const EvalContext& ctx) {
  if (node->kind == PlanKind::kProduct && ctx.catalog != nullptr) {
    auto left_schema = StaticSchema(node->child, *ctx.catalog);
    if (left_schema.ok()) {
      std::vector<std::string> left_attrs, right_attrs;
      bool clean_split = true;
      for (const auto& a : attrs) {
        bool in_left = left_schema.ValueOrDie().IndexOf(a).has_value();
        (in_left ? left_attrs : right_attrs).push_back(a);
        if (!in_left) {
          // Must be resolvable on the right; verified when evaluated.
        }
        (void)clean_split;
      }
      auto left = EvalDistinctProject(left_attrs, node->child, ctx);
      if (!left.ok()) return left.status();
      auto right = EvalDistinctProject(right_attrs, node->right, ctx);
      if (!right.ok()) return right.status();
      auto prod = left.ValueOrDie()->Product(*right.ValueOrDie());
      if (!prod.ok()) return prod.status();
      return std::make_shared<const Relation>(std::move(prod).ValueOrDie());
    }
  }
  auto rel = Evaluate(node, ctx);
  if (!rel.ok()) return rel.status();
  if (attrs.empty()) {
    // Existence reduction: zero columns, one row iff non-empty.
    Relation out{RelationSchema{}};
    if (!rel.ValueOrDie()->empty()) {
      URM_CHECK_OK(out.AddRow(Row{}));
    }
    return std::make_shared<const Relation>(std::move(out));
  }
  auto projected = rel.ValueOrDie()->Project(attrs);
  if (!projected.ok()) return projected.status();
  return std::make_shared<const Relation>(
      projected.ValueOrDie().Distinct());
}

// Equi-join of left and right on one column each (hash build on the
// smaller side). Result schema = left ++ right, as for Product+Select.
Result<RelationPtr> HashJoin(RelationPtr left, size_t left_col,
                             RelationPtr right, size_t right_col,
                             const EvalContext& ctx) {
  auto schema = left->schema().Concat(right->schema());
  if (!schema.ok()) return schema.status();
  Relation out(std::move(schema).ValueOrDie());

  bool build_left = left->num_rows() <= right->num_rows();
  const Relation& build = build_left ? *left : *right;
  const Relation& probe = build_left ? *right : *left;
  size_t build_col = build_left ? left_col : right_col;
  size_t probe_col = build_left ? right_col : left_col;

  std::unordered_multimap<size_t, size_t> table;
  table.reserve(build.num_rows());
  for (size_t i = 0; i < build.num_rows(); ++i) {
    const Value& v = build.rows()[i][build_col];
    if (v.is_null()) continue;  // NULL never joins
    table.emplace(v.Hash(), i);
  }
  for (const Row& probe_row : probe.rows()) {
    const Value& v = probe_row[probe_col];
    if (v.is_null()) continue;
    auto [begin, end] = table.equal_range(v.Hash());
    for (auto it = begin; it != end; ++it) {
      const Row& build_row = build.rows()[it->second];
      if (!(build_row[build_col] == v)) continue;  // hash collision
      const Row& l = build_left ? build_row : probe_row;
      const Row& r = build_left ? probe_row : build_row;
      Row combined = l;
      combined.insert(combined.end(), r.begin(), r.end());
      URM_CHECK_OK(out.AddRow(std::move(combined)));
    }
  }
  if (ctx.stats != nullptr) ctx.stats->tuples_produced += out.num_rows();
  return std::make_shared<const Relation>(std::move(out));
}

// Attempts to evaluate Select(Product(a, b)) with a cross-side equality
// predicate as a hash join. Returns nullopt if the shape does not apply
// (caller falls back to materializing the product).
Result<RelationPtr> TryFusedJoin(const PlanNode& select_node,
                                 const EvalContext& ctx, bool* applied) {
  *applied = false;
  const Predicate& pred = select_node.predicate;
  if (!pred.is_join_predicate() || pred.op != CmpOp::kEq ||
      select_node.child->kind != PlanKind::kProduct) {
    return RelationPtr(nullptr);
  }
  auto left = Evaluate(select_node.child->child, ctx);
  if (!left.ok()) return left.status();
  auto right = Evaluate(select_node.child->right, ctx);
  if (!right.ok()) return right.status();
  RelationPtr l = std::move(left).ValueOrDie();
  RelationPtr r = std::move(right).ValueOrDie();

  auto ll = l->schema().IndexOf(pred.lhs);
  auto rr = r->schema().IndexOf(*pred.rhs_attr);
  size_t lcol, rcol;
  if (ll.has_value() && rr.has_value()) {
    lcol = *ll;
    rcol = *rr;
  } else {
    auto lr = l->schema().IndexOf(*pred.rhs_attr);
    auto rl = r->schema().IndexOf(pred.lhs);
    if (!lr.has_value() || !rl.has_value()) return RelationPtr(nullptr);
    lcol = *lr;
    rcol = *rl;
  }
  *applied = true;
  // The fused pair still counts as two executed operators (product and
  // selection) so operator statistics match the unfused evaluation.
  if (ctx.stats != nullptr) ctx.stats->operators_executed++;
  return HashJoin(std::move(l), lcol, std::move(r), rcol, ctx);
}

}  // namespace

Result<RelationPtr> Evaluate(const PlanPtr& plan, const EvalContext& ctx) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");

  // Leaves are cheap; only consult the memo for operator nodes.
  std::string key;
  if (ctx.cache != nullptr && plan->kind != PlanKind::kScan &&
      plan->kind != PlanKind::kRelationLeaf) {
    key = Canonical(plan);
    auto it = ctx.cache->find(key);
    if (it != ctx.cache->end()) {
      if (ctx.stats != nullptr) ctx.stats->cache_hits++;
      return it->second;
    }
    // Symmetric with the hit side so hit rates derived from the
    // counters are meaningful for the e-MQO memo too.
    if (ctx.stats != nullptr) ctx.stats->cache_misses++;
  }

  Result<RelationPtr> result = Status::Internal("unreachable");
  switch (plan->kind) {
    case PlanKind::kScan:
      result = EvaluateScan(*plan, ctx);
      break;
    case PlanKind::kRelationLeaf:
      result = plan->relation;
      break;
    case PlanKind::kSelect: {
      bool fused = false;
      auto join = TryFusedJoin(*plan, ctx, &fused);
      if (!join.ok()) return join.status();
      if (fused) {
        result = std::move(join);
        break;
      }
      auto child = Evaluate(plan->child, ctx);
      if (!child.ok()) return child.status();
      result = EvaluateSelect(*plan, std::move(child).ValueOrDie(), ctx);
      break;
    }
    case PlanKind::kProject: {
      auto child = Evaluate(plan->child, ctx);
      if (!child.ok()) return child.status();
      auto projected =
          std::move(child).ValueOrDie()->Project(plan->attrs);
      if (!projected.ok()) return projected.status();
      if (ctx.stats != nullptr) {
        ctx.stats->tuples_produced += projected.ValueOrDie().num_rows();
      }
      result = std::make_shared<const Relation>(
          std::move(projected).ValueOrDie());
      break;
    }
    case PlanKind::kProduct: {
      auto left = Evaluate(plan->child, ctx);
      if (!left.ok()) return left.status();
      auto right = Evaluate(plan->right, ctx);
      if (!right.ok()) return right.status();
      auto prod = left.ValueOrDie()->Product(*right.ValueOrDie());
      if (!prod.ok()) return prod.status();
      if (ctx.stats != nullptr) {
        ctx.stats->tuples_produced += prod.ValueOrDie().num_rows();
      }
      result =
          std::make_shared<const Relation>(std::move(prod).ValueOrDie());
      break;
    }
    case PlanKind::kAggregate: {
      result = EvaluateAggregate(*plan, ctx);
      break;
    }
    case PlanKind::kDistinct: {
      if (plan->child->kind == PlanKind::kProject) {
        result = EvalDistinctProject(plan->child->attrs,
                                     plan->child->child, ctx);
        // The split also executed the projection; account for it so the
        // operator counter matches the plan shape.
        if (result.ok() && ctx.stats != nullptr) {
          ctx.stats->operators_executed++;
        }
      } else {
        auto child = Evaluate(plan->child, ctx);
        if (!child.ok()) return child.status();
        result = std::make_shared<const Relation>(
            child.ValueOrDie()->Distinct());
      }
      break;
    }
  }
  if (!result.ok()) return result.status();

  // kDistinct is an answer-semantics artifact, not a query operator; it
  // is excluded from the operator count (see CountOperators).
  if (ctx.stats != nullptr && plan->kind != PlanKind::kScan &&
      plan->kind != PlanKind::kRelationLeaf &&
      plan->kind != PlanKind::kDistinct) {
    ctx.stats->operators_executed++;
  }
  if (!key.empty() && ctx.cache != nullptr &&
      (ctx.cache_filter == nullptr || ctx.cache_filter->count(key) > 0)) {
    ctx.cache->emplace(std::move(key), result.ValueOrDie());
  }
  return result;
}

Result<RelationPtr> Evaluate(const PlanPtr& plan,
                             const relational::Catalog& catalog) {
  EvalContext ctx;
  ctx.catalog = &catalog;
  return Evaluate(plan, ctx);
}

}  // namespace algebra
}  // namespace urm
