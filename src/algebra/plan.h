#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "relational/relation.h"

/// \file plan.h
/// Relational algebra plan trees. The same node type serves both *target
/// queries* (leaves are Scans of target tables) and *source queries*
/// (leaves are Scans of source relations, or — inside o-sharing e-units —
/// already-materialized intermediate relations).

namespace urm {
namespace algebra {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

enum class PlanKind {
  kScan,        ///< leaf: named table with an instance alias
  kRelationLeaf,///< leaf: materialized relation (o-sharing intermediate)
  kSelect,      ///< unary: filter by Predicate
  kProject,     ///< unary: column projection (bag semantics)
  kProduct,     ///< binary: Cartesian product
  kAggregate,   ///< unary: COUNT(*) or SUM(attr), single-row output
  kDistinct,    ///< unary: duplicate elimination (set semantics)
};

enum class AggKind {
  kCount,
  kSum,
};

const char* AggKindName(AggKind kind);

/// \brief Immutable algebra node, shared by pointer.
///
/// Field usage by kind:
///   kScan:         table, alias
///   kRelationLeaf: relation, label
///   kSelect:       child, predicate
///   kProject:      child, attrs
///   kProduct:      child (left), right
///   kAggregate:    child, agg, agg_attr (empty for COUNT)
struct PlanNode {
  PlanKind kind = PlanKind::kScan;

  std::string table;
  std::string alias;

  relational::RelationPtr relation;
  std::string label;

  Predicate predicate;

  std::vector<std::string> attrs;

  AggKind agg = AggKind::kCount;
  std::string agg_attr;

  PlanPtr child;
  PlanPtr right;
};

/// Leaf scanning `table`; output columns are renamed "<alias>.<attr>".
/// With an empty alias, columns keep their stored names.
PlanPtr MakeScan(std::string table, std::string alias = "");

/// Leaf wrapping a materialized relation. `label` is used in plan
/// printing and canonicalization (choose a unique label per
/// materialization).
PlanPtr MakeRelationLeaf(relational::RelationPtr relation,
                         std::string label);

/// σ_predicate(child)
PlanPtr MakeSelect(PlanPtr child, Predicate predicate);

/// π_attrs(child) — bag semantics; answer-level duplicate aggregation is
/// done by the probabilistic evaluators.
PlanPtr MakeProject(PlanPtr child, std::vector<std::string> attrs);

/// left × right
PlanPtr MakeProduct(PlanPtr left, PlanPtr right);

/// COUNT(*)(child) or SUM(attr)(child); emits exactly one row.
PlanPtr MakeAggregate(PlanPtr child, AggKind kind, std::string attr = "");

/// δ(child) — duplicate elimination. Reformulated (non-aggregate)
/// queries are wrapped in Distinct because the paper aggregates
/// duplicate answers per mapping (set semantics).
PlanPtr MakeDistinct(PlanPtr child);

/// Number of operator nodes (Select/Project/Product/Aggregate; leaves
/// excluded). The paper's `l`.
size_t CountOperators(const PlanPtr& plan);

/// All attribute names referenced by operators in the tree, in a
/// deterministic first-occurrence order (selections and join predicates,
/// projections, aggregate attributes).
std::vector<std::string> ReferencedAttributes(const PlanPtr& plan);

/// All Scan leaves in left-to-right order.
std::vector<const PlanNode*> CollectScans(const PlanPtr& plan);

/// Stable canonical serialization. Two plans with equal canonical
/// strings are structurally identical queries; used to detect duplicate
/// source queries (e-basic) and shared subexpressions (e-MQO).
std::string Canonical(const PlanPtr& plan);

/// Pretty multi-line rendering for debugging/documentation.
std::string ToString(const PlanPtr& plan);

}  // namespace algebra
}  // namespace urm
