#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "algebra/plan.h"

/// \file fingerprint.h
/// Structural plan fingerprints for the serving tier. Two plans built
/// independently hash equal iff they are structurally identical — same
/// operator tree, tables, aliases, predicates (including comparison
/// operator and constant), projection lists, and aggregate specs; this
/// is the hash companion of Canonical() without materializing the
/// canonical string.
///
/// A full PlanFingerprint additionally carries a context hash (the
/// evaluation method and the mapping-set hash at the service layer), so
/// cached answers are invalidated by construction when the method or
/// the active mapping set changes.

namespace urm {
namespace algebra {

/// \brief Cache key: structural plan hash + evaluation-context hash.
struct PlanFingerprint {
  uint64_t plan_hash = 0;
  uint64_t context_hash = 0;

  bool operator==(const PlanFingerprint& other) const {
    return plan_hash == other.plan_hash &&
           context_hash == other.context_hash;
  }
  bool operator!=(const PlanFingerprint& other) const {
    return !(*this == other);
  }

  /// Hex rendering, e.g. "4be2d1c09a330f77:00000000000000aa".
  std::string ToString() const;
};

/// Hasher for unordered containers keyed by PlanFingerprint.
struct PlanFingerprintHash {
  size_t operator()(const PlanFingerprint& fp) const;
};

/// Canonical structural hash of the plan tree. RelationLeaf nodes hash
/// by label (labels are unique per materialization by contract).
uint64_t HashPlan(const PlanPtr& plan);

/// Order-sensitive 64-bit hash accumulation (the mix used by HashPlan),
/// exposed so higher layers can fold request parameters — kind, method,
/// k, set-op, threshold — into a plan hash (core::FingerprintRequest).
uint64_t MixHash(uint64_t h, uint64_t v);

/// Combines the plan hash with an evaluation-context hash.
PlanFingerprint MakeFingerprint(const PlanPtr& plan,
                                uint64_t context_hash = 0);

}  // namespace algebra
}  // namespace urm
