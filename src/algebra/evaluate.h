#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "algebra/plan.h"
#include "common/status.h"
#include "relational/catalog.h"

/// \file evaluate.h
/// Materializing recursive evaluator for algebra plans over a Catalog.
/// Tracks operator/tuple statistics (used by the paper's Table IV) and
/// optionally memoizes subexpression results by canonical form (used by
/// the e-MQO baseline).

namespace urm {
namespace algebra {

/// Counters accumulated during evaluation.
struct EvalStats {
  size_t operators_executed = 0;  ///< Select/Project/Product/Aggregate runs
  size_t scans = 0;               ///< base-table scans
  size_t tuples_produced = 0;     ///< rows emitted by all operators
  /// Memoized operator evaluations reused instead of recomputed: e-MQO
  /// subplan memo hits plus o-sharing operator-cache hits (private
  /// per-engine memo and the cross-query OperatorStore combined).
  size_t cache_hits = 0;
  size_t cache_misses = 0;  ///< operator-cache lookups that computed fresh
  /// Result-relation bytes served from an o-sharing operator cache —
  /// the materialization work sharing saved (ApproxBytes of reused
  /// results). e-MQO memo hits count in cache_hits only: weighing them
  /// would rescan the relation on every hit.
  size_t cache_bytes_saved = 0;
  /// Subset of cache_hits served by the *shared* cross-query
  /// OperatorStore (another query or a sibling parallel branch
  /// materialized the operator), including single-flight waits.
  size_t store_hits = 0;
  /// Selections answered by codec-aware columnar scans (selection
  /// vectors evaluated on the encoded form, no row materialization).
  size_t columnar_scans = 0;
  /// Selections that fell back to the row-at-a-time loop (join
  /// predicates, or inputs without a cached encoding).
  size_t row_scans = 0;
  /// Bytes selections actually read: encoded bytes of the scanned
  /// column(s) on the columnar path, touched-cell bytes on the row
  /// path.
  size_t bytes_scanned = 0;
  /// Row-format bytes of the same cells — what the scans *would* have
  /// read without compression. bytes_scanned / logical_bytes_scanned
  /// is the live compression ratio of the scan mix.
  size_t logical_bytes_scanned = 0;

  EvalStats& operator+=(const EvalStats& other) {
    operators_executed += other.operators_executed;
    scans += other.scans;
    tuples_produced += other.tuples_produced;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_bytes_saved += other.cache_bytes_saved;
    store_hits += other.store_hits;
    columnar_scans += other.columnar_scans;
    row_scans += other.row_scans;
    bytes_scanned += other.bytes_scanned;
    logical_bytes_scanned += other.logical_bytes_scanned;
    return *this;
  }
};

/// Shared-subexpression memo: canonical plan string -> result.
using EvalCache = std::unordered_map<std::string, relational::RelationPtr>;

/// Evaluation environment. `stats` and `cache` may be null.
struct EvalContext {
  const relational::Catalog* catalog = nullptr;
  EvalStats* stats = nullptr;
  EvalCache* cache = nullptr;
  /// When set, only subplans whose canonical form is in this set are
  /// *stored* in the cache (lookups always consult the cache). e-MQO
  /// uses this to memoize exactly its chosen materialization set.
  const std::unordered_set<std::string>* cache_filter = nullptr;
};

/// Evaluates `plan` bottom-up, materializing every operator.
///
/// Scan leaves fetch from the catalog and are re-qualified to the scan
/// alias; RelationLeaf nodes return their payload. With a cache present,
/// every subplan is looked up / stored by canonical form.
Result<relational::RelationPtr> Evaluate(const PlanPtr& plan,
                                         const EvalContext& ctx);

/// Convenience: evaluate against a catalog without stats or cache.
Result<relational::RelationPtr> Evaluate(
    const PlanPtr& plan, const relational::Catalog& catalog);

}  // namespace algebra
}  // namespace urm
