#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "algebra/plan.h"
#include "common/status.h"
#include "relational/catalog.h"

/// \file evaluate.h
/// Materializing recursive evaluator for algebra plans over a Catalog.
/// Tracks operator/tuple statistics (used by the paper's Table IV) and
/// optionally memoizes subexpression results by canonical form (used by
/// the e-MQO baseline).

namespace urm {
namespace algebra {

/// Counters accumulated during evaluation.
struct EvalStats {
  size_t operators_executed = 0;  ///< Select/Project/Product/Aggregate runs
  size_t scans = 0;               ///< base-table scans
  size_t tuples_produced = 0;     ///< rows emitted by all operators
  size_t cache_hits = 0;          ///< memoized subplans reused (e-MQO)

  EvalStats& operator+=(const EvalStats& other) {
    operators_executed += other.operators_executed;
    scans += other.scans;
    tuples_produced += other.tuples_produced;
    cache_hits += other.cache_hits;
    return *this;
  }
};

/// Shared-subexpression memo: canonical plan string -> result.
using EvalCache = std::unordered_map<std::string, relational::RelationPtr>;

/// Evaluation environment. `stats` and `cache` may be null.
struct EvalContext {
  const relational::Catalog* catalog = nullptr;
  EvalStats* stats = nullptr;
  EvalCache* cache = nullptr;
  /// When set, only subplans whose canonical form is in this set are
  /// *stored* in the cache (lookups always consult the cache). e-MQO
  /// uses this to memoize exactly its chosen materialization set.
  const std::unordered_set<std::string>* cache_filter = nullptr;
};

/// Evaluates `plan` bottom-up, materializing every operator.
///
/// Scan leaves fetch from the catalog and are re-qualified to the scan
/// alias; RelationLeaf nodes return their payload. With a cache present,
/// every subplan is looked up / stored by canonical form.
Result<relational::RelationPtr> Evaluate(const PlanPtr& plan,
                                         const EvalContext& ctx);

/// Convenience: evaluate against a catalog without stats or cache.
Result<relational::RelationPtr> Evaluate(
    const PlanPtr& plan, const relational::Catalog& catalog);

}  // namespace algebra
}  // namespace urm
