#pragma once

#include "algebra/plan.h"
#include "common/status.h"
#include "relational/catalog.h"

/// \file optimize.h
/// Minimal logical optimization applied to *source* plans before
/// execution: selection pushdown below Cartesian products. Together with
/// the evaluator's select-over-product hash-join fusion this makes the
/// paper's reformulated queries (covers are Cartesian products of source
/// relations) tractable; it does not change results, only evaluation
/// order, so operator-count statistics are reported from the optimized
/// plan consistently for every method.

namespace urm {
namespace algebra {

/// Static output schema of a plan (column names/types), resolving Scan
/// leaves against `catalog`.
Result<relational::RelationSchema> StaticSchema(
    const PlanPtr& plan, const relational::Catalog& catalog);

/// Pushes each Select as far down as its referenced attributes allow
/// (below Products toward the side that contains them). Selections whose
/// attributes span both product sides remain just above that product
/// (where the evaluator fuses them into a hash join). Projections and
/// aggregates are barriers.
Result<PlanPtr> PushDownSelections(const PlanPtr& plan,
                                   const relational::Catalog& catalog);

}  // namespace algebra
}  // namespace urm
