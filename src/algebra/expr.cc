#include "algebra/expr.h"

#include "common/hash_util.h"
#include "common/logging.h"

namespace urm {
namespace algebra {

using relational::RelationSchema;
using relational::Row;
using relational::Value;

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CmpOp::kGt:
      return rhs < lhs;
    case CmpOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::vector<std::string> attrs = {lhs};
  if (rhs_attr.has_value()) attrs.push_back(*rhs_attr);
  return attrs;
}

Predicate Predicate::RenameAttributes(
    const std::vector<std::pair<std::string, std::string>>& rename) const {
  auto lookup = [&](const std::string& name) -> std::string {
    for (const auto& [from, to] : rename) {
      if (from == name) return to;
    }
    URM_CHECK(false) << "no rename for attribute " << name;
    return name;
  };
  Predicate out = *this;
  out.lhs = lookup(lhs);
  if (rhs_attr.has_value()) out.rhs_attr = lookup(*rhs_attr);
  return out;
}

bool Predicate::operator==(const Predicate& other) const {
  return lhs == other.lhs && op == other.op && rhs_attr == other.rhs_attr &&
         rhs_value == other.rhs_value &&
         rhs_attr.has_value() == other.rhs_attr.has_value();
}

uint64_t Predicate::CacheHash() const {
  // Mirrors operator==: each compared field feeds the hash, and values
  // use Value::Hash (itself consistent with Value::operator==).
  size_t seed = Fnv1a(lhs);
  HashCombine(seed, static_cast<size_t>(op));
  HashCombine(seed, rhs_attr.has_value() ? Fnv1a(*rhs_attr) : 0x5ca1ab1eULL);
  HashCombine(seed, rhs_value.Hash());
  return seed;
}

std::string Predicate::ToString() const {
  std::string out = lhs;
  out += " ";
  out += CmpOpSymbol(op);
  out += " ";
  if (rhs_attr.has_value()) {
    out += *rhs_attr;
  } else {
    out += "'" + rhs_value.ToString() + "'";
  }
  return out;
}

Result<BoundPredicate> BoundPredicate::Bind(const Predicate& predicate,
                                            const RelationSchema& schema) {
  BoundPredicate bound;
  auto lhs_idx = schema.IndexOf(predicate.lhs);
  if (!lhs_idx.has_value()) {
    return Status::NotFound("predicate attribute not found: " +
                            predicate.lhs + " in " + schema.ToString());
  }
  bound.lhs_index_ = *lhs_idx;
  bound.op_ = predicate.op;
  if (predicate.rhs_attr.has_value()) {
    auto rhs_idx = schema.IndexOf(*predicate.rhs_attr);
    if (!rhs_idx.has_value()) {
      return Status::NotFound("predicate attribute not found: " +
                              *predicate.rhs_attr + " in " +
                              schema.ToString());
    }
    bound.rhs_index_ = *rhs_idx;
  } else {
    bound.rhs_value_ = predicate.rhs_value;
  }
  return bound;
}

bool BoundPredicate::Matches(const Row& row) const {
  const Value& lhs = row[lhs_index_];
  const Value& rhs =
      rhs_index_.has_value() ? row[*rhs_index_] : rhs_value_;
  return CompareValues(lhs, op_, rhs);
}

}  // namespace algebra
}  // namespace urm
