#include "algebra/plan.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace urm {
namespace algebra {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
  }
  return "?";
}

PlanPtr MakeScan(std::string table, std::string alias) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table = std::move(table);
  node->alias = std::move(alias);
  return node;
}

PlanPtr MakeRelationLeaf(relational::RelationPtr relation,
                         std::string label) {
  URM_CHECK(relation != nullptr);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kRelationLeaf;
  node->relation = std::move(relation);
  node->label = std::move(label);
  return node;
}

PlanPtr MakeSelect(PlanPtr child, Predicate predicate) {
  URM_CHECK(child != nullptr);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSelect;
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr MakeProject(PlanPtr child, std::vector<std::string> attrs) {
  URM_CHECK(child != nullptr);
  URM_CHECK(!attrs.empty());
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  node->child = std::move(child);
  node->attrs = std::move(attrs);
  return node;
}

PlanPtr MakeProduct(PlanPtr left, PlanPtr right) {
  URM_CHECK(left != nullptr);
  URM_CHECK(right != nullptr);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProduct;
  node->child = std::move(left);
  node->right = std::move(right);
  return node;
}

PlanPtr MakeAggregate(PlanPtr child, AggKind kind, std::string attr) {
  URM_CHECK(child != nullptr);
  if (kind == AggKind::kSum) {
    URM_CHECK(!attr.empty()) << "SUM requires an attribute";
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->child = std::move(child);
  node->agg = kind;
  node->agg_attr = std::move(attr);
  return node;
}

PlanPtr MakeDistinct(PlanPtr child) {
  URM_CHECK(child != nullptr);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kDistinct;
  node->child = std::move(child);
  return node;
}

size_t CountOperators(const PlanPtr& plan) {
  if (plan == nullptr) return 0;
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kRelationLeaf:
      return 0;
    case PlanKind::kDistinct:
      // An artifact of set-semantics answer aggregation, not one of the
      // query's operators.
      return CountOperators(plan->child);
    case PlanKind::kProduct:
      return 1 + CountOperators(plan->child) + CountOperators(plan->right);
    default:
      return 1 + CountOperators(plan->child);
  }
}

namespace {

void CollectAttrs(const PlanPtr& plan, std::vector<std::string>* out) {
  if (plan == nullptr) return;
  auto add = [out](const std::string& a) {
    if (std::find(out->begin(), out->end(), a) == out->end()) {
      out->push_back(a);
    }
  };
  switch (plan->kind) {
    case PlanKind::kScan:
    case PlanKind::kRelationLeaf:
      return;
    case PlanKind::kSelect:
      for (const auto& a : plan->predicate.ReferencedAttributes()) add(a);
      CollectAttrs(plan->child, out);
      return;
    case PlanKind::kProject:
      for (const auto& a : plan->attrs) add(a);
      CollectAttrs(plan->child, out);
      return;
    case PlanKind::kProduct:
      CollectAttrs(plan->child, out);
      CollectAttrs(plan->right, out);
      return;
    case PlanKind::kAggregate:
      if (!plan->agg_attr.empty()) add(plan->agg_attr);
      CollectAttrs(plan->child, out);
      return;
    case PlanKind::kDistinct:
      CollectAttrs(plan->child, out);
      return;
  }
}

void CollectScansImpl(const PlanPtr& plan,
                      std::vector<const PlanNode*>* out) {
  if (plan == nullptr) return;
  if (plan->kind == PlanKind::kScan) {
    out->push_back(plan.get());
    return;
  }
  CollectScansImpl(plan->child, out);
  CollectScansImpl(plan->right, out);
}

void CanonicalImpl(const PlanPtr& plan, std::string* out) {
  if (plan == nullptr) {
    out->append("()");
    return;
  }
  switch (plan->kind) {
    case PlanKind::kScan:
      out->append("scan[");
      out->append(plan->table);
      out->append(" as ");
      out->append(plan->alias);
      out->append("]");
      return;
    case PlanKind::kRelationLeaf:
      out->append("rel[");
      out->append(plan->label);
      out->append("]");
      return;
    case PlanKind::kSelect:
      out->append("select[");
      out->append(plan->predicate.ToString());
      out->append("](");
      CanonicalImpl(plan->child, out);
      out->append(")");
      return;
    case PlanKind::kProject:
      out->append("project[");
      out->append(Join(plan->attrs, ","));
      out->append("](");
      CanonicalImpl(plan->child, out);
      out->append(")");
      return;
    case PlanKind::kProduct:
      out->append("product(");
      CanonicalImpl(plan->child, out);
      out->append(",");
      CanonicalImpl(plan->right, out);
      out->append(")");
      return;
    case PlanKind::kAggregate:
      out->append(AggKindName(plan->agg));
      out->append("[");
      out->append(plan->agg_attr);
      out->append("](");
      CanonicalImpl(plan->child, out);
      out->append(")");
      return;
    case PlanKind::kDistinct:
      out->append("distinct(");
      CanonicalImpl(plan->child, out);
      out->append(")");
      return;
  }
}

void ToStringImpl(const PlanPtr& plan, int indent, std::string* out) {
  if (plan == nullptr) return;
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (plan->kind) {
    case PlanKind::kScan:
      out->append("Scan " + plan->table +
                  (plan->alias.empty() ? "" : " AS " + plan->alias) + "\n");
      return;
    case PlanKind::kRelationLeaf:
      out->append("Relation " + plan->label + " [" +
                  std::to_string(plan->relation->num_rows()) + " rows]\n");
      return;
    case PlanKind::kSelect:
      out->append("Select " + plan->predicate.ToString() + "\n");
      ToStringImpl(plan->child, indent + 1, out);
      return;
    case PlanKind::kProject:
      out->append("Project " + Join(plan->attrs, ", ") + "\n");
      ToStringImpl(plan->child, indent + 1, out);
      return;
    case PlanKind::kProduct:
      out->append("Product\n");
      ToStringImpl(plan->child, indent + 1, out);
      ToStringImpl(plan->right, indent + 1, out);
      return;
    case PlanKind::kAggregate:
      out->append(std::string(AggKindName(plan->agg)) +
                  (plan->agg_attr.empty() ? "(*)" : "(" + plan->agg_attr + ")") +
                  "\n");
      ToStringImpl(plan->child, indent + 1, out);
      return;
    case PlanKind::kDistinct:
      out->append("Distinct\n");
      ToStringImpl(plan->child, indent + 1, out);
      return;
  }
}

}  // namespace

std::vector<std::string> ReferencedAttributes(const PlanPtr& plan) {
  std::vector<std::string> out;
  CollectAttrs(plan, &out);
  return out;
}

std::vector<const PlanNode*> CollectScans(const PlanPtr& plan) {
  std::vector<const PlanNode*> out;
  CollectScansImpl(plan, &out);
  return out;
}

std::string Canonical(const PlanPtr& plan) {
  std::string out;
  CanonicalImpl(plan, &out);
  return out;
}

std::string ToString(const PlanPtr& plan) {
  std::string out;
  ToStringImpl(plan, 0, &out);
  return out;
}

}  // namespace algebra
}  // namespace urm
