#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value.h"

/// \file expr.h
/// Selection predicates. A predicate is a single comparison between an
/// attribute reference and either a constant or another attribute (the
/// paper's queries use conjunctions of such comparisons, expressed as
/// stacked selection operators).

namespace urm {
namespace algebra {

/// Comparison operators supported in selection predicates.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpOpSymbol(CmpOp op);

/// Applies `op` to two values. Comparisons involving NULL are false
/// (SQL-style), except kNe which is also false on NULL (three-valued
/// logic collapsed to boolean: unknown -> false).
bool CompareValues(const relational::Value& lhs, CmpOp op,
                   const relational::Value& rhs);

/// \brief `lhs op rhs` where lhs is an attribute reference and rhs is
/// either a constant or a second attribute reference.
///
/// Attribute references are (possibly qualified) column names; at the
/// target level they refer to target-table-instance attributes (e.g.
/// "po1.orderNum"), after reformulation to source columns (e.g.
/// "po1$orders.o_orderkey").
struct Predicate {
  std::string lhs;
  CmpOp op = CmpOp::kEq;
  /// Exactly one of rhs_attr / rhs_value is used.
  std::optional<std::string> rhs_attr;
  relational::Value rhs_value;

  static Predicate AttrCmpValue(std::string lhs, CmpOp op,
                                relational::Value value) {
    Predicate p;
    p.lhs = std::move(lhs);
    p.op = op;
    p.rhs_value = std::move(value);
    return p;
  }

  static Predicate AttrCmpAttr(std::string lhs, CmpOp op, std::string rhs) {
    Predicate p;
    p.lhs = std::move(lhs);
    p.op = op;
    p.rhs_attr = std::move(rhs);
    return p;
  }

  bool is_join_predicate() const { return rhs_attr.has_value(); }

  /// All attribute names referenced (1 or 2).
  std::vector<std::string> ReferencedAttributes() const;

  /// Copy with attribute names rewritten through `rename` (must be
  /// defined for every referenced attribute).
  Predicate RenameAttributes(
      const std::vector<std::pair<std::string, std::string>>& rename) const;

  bool operator==(const Predicate& other) const;

  /// Structural hash consistent with operator== (equal predicates hash
  /// equal). The o-sharing operator memos key on (input identity, this
  /// hash) and verify candidate hits with operator==, so the memo hot
  /// path never renders or string-compares a predicate.
  uint64_t CacheHash() const;

  /// e.g. "po1.orderNum = '00001'" or "po1.orderNum = po2.orderNum".
  std::string ToString() const;
};

/// \brief A predicate resolved to column indexes of a concrete schema.
/// Bind once per relation, then evaluate per row.
class BoundPredicate {
 public:
  /// Fails if a referenced attribute is absent or ambiguous.
  static Result<BoundPredicate> Bind(const Predicate& predicate,
                                     const relational::RelationSchema& schema);

  bool Matches(const relational::Row& row) const;

  /// Resolved shape, exposed so the evaluator can route attr-vs-const
  /// predicates to the codec-aware columnar scan.
  size_t lhs_index() const { return lhs_index_; }
  CmpOp op() const { return op_; }
  const std::optional<size_t>& rhs_index() const { return rhs_index_; }
  const relational::Value& rhs_value() const { return rhs_value_; }

 private:
  BoundPredicate() = default;

  size_t lhs_index_ = 0;
  CmpOp op_ = CmpOp::kEq;
  std::optional<size_t> rhs_index_;
  relational::Value rhs_value_;
};

}  // namespace algebra
}  // namespace urm
