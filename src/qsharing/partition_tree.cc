#include "qsharing/partition_tree.h"

#include "common/logging.h"

namespace urm {
namespace qsharing {

using reformulation::SignatureSlot;
using reformulation::TargetQueryInfo;

Result<PartitionTree> PartitionTree::Build(
    const TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings) {
  PartitionTree tree;
  tree.root_ = std::make_unique<Node>();
  tree.num_levels_ = info.slots.size() + 1;

  for (const auto& m : mappings) {
    // Walk the slots top-down (Algorithm 3's put), creating edges and
    // nodes as needed. A required slot left unmapped sends the mapping
    // to the unanswerable bucket.
    Node* node = tree.root_.get();
    bool unanswerable = false;
    for (const SignatureSlot& slot : info.slots) {
      auto target_attr = info.TargetAttrForRef(slot.ref);
      if (!target_attr.ok()) return target_attr.status();
      auto src = m.SourceFor(target_attr.ValueOrDie());
      std::string label;
      if (src.has_value()) {
        label = *src;
      } else if (slot.required) {
        unanswerable = true;
        break;
      } else {
        label = "-";  // cover-only attribute absent from this mapping
      }
      Node* child = nullptr;
      for (auto& [edge_label, edge_child] : node->edges) {
        if (edge_label == label) {
          child = edge_child.get();
          break;
        }
      }
      if (child == nullptr) {
        node->edges.emplace_back(label, std::make_unique<Node>());
        child = node->edges.back().second.get();
        tree.num_nodes_++;
      }
      node = child;
    }

    size_t bucket;
    if (unanswerable) {
      if (tree.unanswerable_index_ == npos) {
        tree.unanswerable_index_ = tree.partitions_.size();
        tree.partitions_.emplace_back();
      }
      bucket = tree.unanswerable_index_;
    } else {
      if (node->bucket == npos) {
        node->bucket = tree.partitions_.size();
        tree.partitions_.emplace_back();
      }
      bucket = node->bucket;
    }
    tree.partitions_[bucket].members.push_back(&m);
    tree.partitions_[bucket].total_probability += m.probability();
  }
  return tree;
}

}  // namespace qsharing
}  // namespace urm
