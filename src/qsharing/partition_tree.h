#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapping/mapping.h"
#include "reformulation/target_query.h"

/// \file partition_tree.h
/// The paper's partition tree (§IV-A, Algorithm 3): an (l+1)-level trie
/// whose k-th level corresponds to the k-th target attribute of the
/// query. Each edge is labeled with the source attribute a mapping
/// matches that target attribute to; each leaf bucket collects a
/// partition of mappings that reformulate the query identically.

namespace urm {
namespace qsharing {

/// A leaf bucket: mappings inducing the same source query.
struct MappingPartition {
  std::vector<const mapping::Mapping*> members;
  double total_probability = 0.0;

  /// The representative mapping (paper: "an arbitrary mapping in P_j";
  /// we pick the first inserted, deterministically).
  const mapping::Mapping* representative() const { return members.front(); }
};

/// \brief Trie over the query's signature slots.
class PartitionTree {
 public:
  /// Builds the tree by inserting every mapping (Algorithm 3's
  /// partition routine). Levels follow `info.slots`; mappings that
  /// cannot answer the query collect in a dedicated unanswerable
  /// bucket.
  static Result<PartitionTree> Build(
      const reformulation::TargetQueryInfo& info,
      const std::vector<mapping::Mapping>& mappings);

  /// Leaf buckets, in insertion order. The unanswerable bucket (if
  /// any) is last and flagged via `unanswerable_index()`.
  const std::vector<MappingPartition>& partitions() const {
    return partitions_;
  }

  /// Index of the unanswerable bucket, or npos.
  size_t unanswerable_index() const { return unanswerable_index_; }
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Number of internal trie nodes (exposed for tests/ablations).
  size_t num_nodes() const { return num_nodes_; }
  size_t num_levels() const { return num_levels_; }

 private:
  struct Node {
    /// Outgoing edges: source-attribute label -> child. A leaf instead
    /// carries a bucket index.
    std::vector<std::pair<std::string, std::unique_ptr<Node>>> edges;
    size_t bucket = npos;
  };

  PartitionTree() = default;

  std::unique_ptr<Node> root_;
  std::vector<MappingPartition> partitions_;
  size_t unanswerable_index_ = npos;
  size_t num_nodes_ = 1;
  size_t num_levels_ = 0;
};

}  // namespace qsharing
}  // namespace urm
