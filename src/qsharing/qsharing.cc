#include "qsharing/qsharing.h"

#include "common/timer.h"

namespace urm {
namespace qsharing {

using baselines::MethodResult;
using baselines::WeightedMapping;

std::vector<WeightedMapping> Represent(const PartitionTree& tree,
                                       double* unanswerable_probability) {
  std::vector<WeightedMapping> reps;
  if (unanswerable_probability != nullptr) *unanswerable_probability = 0.0;
  for (size_t i = 0; i < tree.partitions().size(); ++i) {
    const MappingPartition& p = tree.partitions()[i];
    if (i == tree.unanswerable_index()) {
      if (unanswerable_probability != nullptr) {
        *unanswerable_probability = p.total_probability;
      }
      continue;
    }
    reps.push_back(
        WeightedMapping{p.representative(), p.total_probability});
  }
  return reps;
}

Result<MethodResult> RunQSharing(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const baselines::ExecOptions& exec) {
  Timer timer;
  auto tree = PartitionTree::Build(info, mappings);
  if (!tree.ok()) return tree.status();
  double unanswerable = 0.0;
  std::vector<WeightedMapping> reps =
      Represent(tree.ValueOrDie(), &unanswerable);
  double partition_seconds = timer.Lap();

  auto result = baselines::RunBasic(info, reps, catalog, reformulator, exec);
  if (!result.ok()) return result.status();
  MethodResult out = std::move(result).ValueOrDie();
  out.rewrite_seconds += partition_seconds;
  out.partitions = tree.ValueOrDie().partitions().size();
  if (unanswerable > 0.0) out.answers.AddNull(unanswerable);
  return out;
}

}  // namespace qsharing
}  // namespace urm
