#pragma once

#include <vector>

#include "baselines/baselines.h"
#include "common/status.h"
#include "qsharing/partition_tree.h"

/// \file qsharing.h
/// q-sharing (paper §IV, Algorithm 1): partition the mapping set with
/// the partition tree, pick one representative mapping per partition
/// (probability = the partition's total), then run basic over the
/// representatives. Reformulation happens f times instead of h times,
/// and each distinct source query executes once.

namespace urm {
namespace qsharing {

/// Runs Algorithm 1. The unanswerable partition contributes the θ
/// outcome directly. Partitions are independent by construction
/// (Algorithm 1 step 2 picks one representative each), so with
/// `exec.parallel()` the representative source queries evaluate
/// concurrently; answers merge in partition order, bit-identical to
/// the sequential run.
Result<baselines::MethodResult> RunQSharing(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    const baselines::ExecOptions& exec = baselines::ExecOptions());

/// The represent routine (Algorithm 1, step 2), exposed for reuse by
/// o-sharing and tests: one weighted representative per partition.
/// The unanswerable partition (if present) is skipped; its probability
/// is returned through `unanswerable_probability`.
std::vector<baselines::WeightedMapping> Represent(
    const PartitionTree& tree, double* unanswerable_probability);

}  // namespace qsharing
}  // namespace urm
