#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

/// \file schema_def.h
/// Logical schema descriptions used by the matcher and the mapping
/// model. A SchemaDef knows names only — the physical side (types, rows)
/// lives in relational::Catalog.

namespace urm {
namespace matching {

/// A table (relation) of a schema: name plus attribute names.
struct TableDef {
  std::string name;
  std::vector<std::string> attributes;
};

/// \brief A named schema: an ordered list of tables.
///
/// Attributes are identified by their qualified name "<table>.<attr>".
class SchemaDef {
 public:
  SchemaDef() = default;
  SchemaDef(std::string name, std::vector<TableDef> tables)
      : name_(std::move(name)), tables_(std::move(tables)) {}

  const std::string& name() const { return name_; }
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Adds a table; fails on duplicate table name.
  Status AddTable(TableDef table);

  /// Table by name.
  Result<TableDef> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// All attributes as qualified names "<table>.<attr>", schema order.
  std::vector<std::string> AllAttributes() const;

  /// Total attribute count across tables (the paper reports 46/48/66/69).
  size_t NumAttributes() const;

  /// True if the qualified attribute exists.
  bool HasAttribute(const std::string& qualified) const;

 private:
  std::string name_;
  std::vector<TableDef> tables_;
};

}  // namespace matching
}  // namespace urm
