#pragma once

#include <string>
#include <string_view>

/// \file similarity.h
/// String similarity measures used by the name-based schema matcher.
/// All measures return values in [0, 1], 1 meaning identical.

namespace urm {
namespace matching {

/// Levenshtein edit distance (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity (transposition-aware).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common prefix (p = 0.1, max 4 chars).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of character trigram sets; strings are padded with
/// '#' so that short identifiers still produce trigrams.
double TrigramSimilarity(std::string_view a, std::string_view b);

/// Composite character-level similarity: the maximum of Jaro-Winkler,
/// normalized Levenshtein, and trigram similarity. The max (rather than
/// a blend) reflects COMA++'s composite strategy of combining matchers
/// optimistically.
double CompositeStringSimilarity(std::string_view a, std::string_view b);

}  // namespace matching
}  // namespace urm
