#include "matching/similarity.h"

#include <algorithm>
#include <set>
#include <vector>

namespace urm {
namespace matching {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  size_t window = std::max(a.size(), b.size()) / 2;
  window = window > 0 ? window - 1 : 0;

  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  auto trigrams = [](std::string_view s) {
    std::set<std::string> grams;
    std::string padded = "##" + std::string(s) + "##";
    for (size_t i = 0; i + 3 <= padded.size(); ++i) {
      grams.insert(padded.substr(i, 3));
    }
    return grams;
  };
  std::set<std::string> ga = trigrams(a), gb = trigrams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  size_t common = 0;
  for (const auto& g : ga) {
    if (gb.count(g) > 0) ++common;
  }
  size_t total = ga.size() + gb.size() - common;
  if (total == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(total);
}

double CompositeStringSimilarity(std::string_view a, std::string_view b) {
  double best = JaroWinklerSimilarity(a, b);
  best = std::max(best, NormalizedLevenshtein(a, b));
  best = std::max(best, TrigramSimilarity(a, b));
  return best;
}

}  // namespace matching
}  // namespace urm
