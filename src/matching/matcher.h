#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "matching/schema_def.h"
#include "matching/synonyms.h"

/// \file matcher.h
/// Name-based schema matcher. Stands in for COMA++ (closed source): it
/// produces the same artifact COMA++ would — a list of attribute
/// correspondences with similarity scores in (0, 1] — from identifier
/// tokens, a synonym dictionary, and optional curated *seed scores*
/// (playing the role of COMA++'s instance/terminology evidence).

namespace urm {
namespace matching {

/// \brief A scored attribute correspondence (source_attr, target_attr).
///
/// Attribute names are qualified "<table>.<attr>" within their schema.
struct Correspondence {
  std::string source_attr;
  std::string target_attr;
  double score = 0.0;

  bool operator==(const Correspondence& other) const {
    return source_attr == other.source_attr &&
           target_attr == other.target_attr;
  }
  bool operator<(const Correspondence& other) const {
    if (target_attr != other.target_attr) {
      return target_attr < other.target_attr;
    }
    return source_attr < other.source_attr;
  }
  std::string ToString() const;
};

/// Extra evidence the matcher folds in: (target_attr, source_attr) ->
/// score. Defined alongside the target schemas in datagen.
using SeedScores = std::map<std::pair<std::string, std::string>, double>;

struct MatcherOptions {
  /// Name-based correspondences scoring below this are dropped (seeded
  /// pairs are always kept).
  double threshold = 0.74;
  /// Weight of the table-name context in the final score.
  double table_weight = 0.15;
  /// Weight multiplier for filler tokens (see IsFillerToken).
  double filler_weight = 0.2;
};

/// \brief Computes the scored correspondence list between two schemas.
class NameMatcher {
 public:
  explicit NameMatcher(SynonymDictionary dictionary = SynonymDictionary::Default(),
                       MatcherOptions options = MatcherOptions());

  /// Name-based similarity of two qualified attributes (no seeds).
  double AttributeSimilarity(const std::string& source_qualified,
                             const std::string& target_qualified) const;

  /// All correspondences scoring >= threshold, sorted by target then
  /// source attribute. `seeds` entries are merged in with max().
  std::vector<Correspondence> Match(const SchemaDef& source,
                                    const SchemaDef& target,
                                    const SeedScores& seeds = {}) const;

 private:
  double TokenSetSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) const;

  SynonymDictionary dictionary_;
  MatcherOptions options_;
};

}  // namespace matching
}  // namespace urm
