#include "matching/synonyms.h"

#include <algorithm>

#include "matching/similarity.h"

namespace urm {
namespace matching {

SynonymDictionary SynonymDictionary::Empty() { return SynonymDictionary(); }

SynonymDictionary SynonymDictionary::Default() {
  SynonymDictionary dict;
  dict.AddGroup({"phone", "telephone", "tel", "mobile", "fax"});
  dict.AddGroup({"addr", "address", "street", "road", "location"});
  dict.AddGroup({"num", "number", "no", "id", "key", "code"});
  dict.AddGroup({"order", "orders", "po", "purchase"});
  dict.AddGroup({"item", "line", "lineitem", "product", "part", "article"});
  dict.AddGroup({"price", "cost", "amount", "charge"});
  dict.AddGroup({"total", "sum", "grand"});
  dict.AddGroup({"qty", "quantity", "availqty", "count"});
  dict.AddGroup({"bill", "invoice", "payment"});
  dict.AddGroup({"ship", "deliver", "delivery", "send", "dispatch"});
  dict.AddGroup({"cust", "customer", "client", "buyer", "account"});
  dict.AddGroup({"company", "organization", "firm", "name"});
  dict.AddGroup({"date", "day", "time"});
  dict.AddGroup({"status", "state", "flag", "linestatus"});
  dict.AddGroup({"priority", "urgency", "orderpriority"});
  dict.AddGroup({"clerk", "contact", "person", "rep", "agent"});
  dict.AddGroup({"nation", "country", "region"});
  dict.AddGroup({"segment", "market", "mktsegment", "category", "type"});
  dict.AddGroup({"balance", "acctbal", "credit"});
  dict.AddGroup({"discount", "rebate", "reduction"});
  dict.AddGroup({"tax", "duty", "vat"});
  dict.AddGroup({"size", "volume", "dimension"});
  dict.AddGroup({"supplier", "supp", "vendor", "seller"});
  dict.AddGroup({"comment", "note", "remark", "description", "desc"});
  dict.AddGroup({"unit", "each", "single"});
  dict.AddGroup({"retailprice", "unitprice", "price"});
  dict.AddGroup({"extendedprice", "subtotal", "linetotal"});
  return dict;
}

void SynonymDictionary::AddGroup(const std::vector<std::string>& tokens) {
  int group = next_group_++;
  for (const auto& t : tokens) {
    group_of_[t].push_back(group);
  }
}

bool SynonymDictionary::AreSynonyms(const std::string& a,
                                    const std::string& b) const {
  auto ia = group_of_.find(a);
  auto ib = group_of_.find(b);
  if (ia == group_of_.end() || ib == group_of_.end()) return false;
  for (int ga : ia->second) {
    if (std::find(ib->second.begin(), ib->second.end(), ga) !=
        ib->second.end()) {
      return true;
    }
  }
  return false;
}

double SynonymDictionary::TokenScore(const std::string& a,
                                     const std::string& b) const {
  if (a == b) return 1.0;
  if (AreSynonyms(a, b)) return 0.9;
  return CompositeStringSimilarity(a, b);
}

bool IsFillerToken(const std::string& token) {
  return token.size() <= 2;
}

}  // namespace matching
}  // namespace urm
