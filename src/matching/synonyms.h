#pragma once

#include <string>
#include <unordered_map>
#include <vector>

/// \file synonyms.h
/// Token synonym dictionary standing in for COMA++'s auxiliary
/// terminology dictionaries. Identifier tokens ("phone", "telephone")
/// that belong to the same group score 0.9; this is what lets purely
/// name-based matching recover semantic correspondences like
/// telephone -> c_phone.

namespace urm {
namespace matching {

/// \brief Groups of interchangeable identifier tokens.
class SynonymDictionary {
 public:
  /// Dictionary with the built-in purchase-order/ERP groups used in the
  /// experiments (phone/telephone, addr/street, num/key/id, ...).
  static SynonymDictionary Default();

  /// Empty dictionary (token score falls back to string similarity).
  static SynonymDictionary Empty();

  /// Registers a group of mutually synonymous tokens (lowercase).
  void AddGroup(const std::vector<std::string>& tokens);

  /// True if `a` and `b` (lowercase) share a group.
  bool AreSynonyms(const std::string& a, const std::string& b) const;

  /// Token-level similarity: 1.0 exact, 0.9 synonyms, else character
  /// similarity (CompositeStringSimilarity).
  double TokenScore(const std::string& a, const std::string& b) const;

  size_t num_groups() const { return next_group_; }

 private:
  std::unordered_map<std::string, std::vector<int>> group_of_;
  int next_group_ = 0;
};

/// True for short glue tokens ("to", "of") and the one-letter TPC-H
/// relation prefixes ("c", "o", "l", ...). These carry little meaning
/// and are down-weighted by the matcher.
bool IsFillerToken(const std::string& token);

}  // namespace matching
}  // namespace urm
