#include "matching/schema_def.h"

namespace urm {
namespace matching {

Status SchemaDef::AddTable(TableDef table) {
  if (HasTable(table.name)) {
    return Status::AlreadyExists("duplicate table: " + table.name);
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<TableDef> SchemaDef::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return t;
  }
  return Status::NotFound("table not found: " + name + " in schema " +
                          name_);
}

bool SchemaDef::HasTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return true;
  }
  return false;
}

std::vector<std::string> SchemaDef::AllAttributes() const {
  std::vector<std::string> out;
  for (const auto& t : tables_) {
    for (const auto& a : t.attributes) {
      out.push_back(t.name + "." + a);
    }
  }
  return out;
}

size_t SchemaDef::NumAttributes() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.attributes.size();
  return n;
}

bool SchemaDef::HasAttribute(const std::string& qualified) const {
  size_t pos = qualified.rfind('.');
  if (pos == std::string::npos) return false;
  std::string table = qualified.substr(0, pos);
  std::string attr = qualified.substr(pos + 1);
  for (const auto& t : tables_) {
    if (t.name != table) continue;
    for (const auto& a : t.attributes) {
      if (a == attr) return true;
    }
  }
  return false;
}

}  // namespace matching
}  // namespace urm
