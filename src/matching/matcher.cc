#include "matching/matcher.h"

#include <algorithm>

#include "common/string_util.h"
#include "matching/similarity.h"
#include "relational/schema.h"

namespace urm {
namespace matching {

std::string Correspondence::ToString() const {
  return "(" + source_attr + ", " + target_attr + ", " +
         std::to_string(score) + ")";
}

NameMatcher::NameMatcher(SynonymDictionary dictionary,
                         MatcherOptions options)
    : dictionary_(std::move(dictionary)), options_(options) {}

double NameMatcher::TokenSetSimilarity(
    const std::vector<std::string>& a,
    const std::vector<std::string>& b) const {
  if (a.empty() || b.empty()) return 0.0;
  // Directed score: every token of `from` finds its best counterpart in
  // `to`, weighted down for filler tokens. Symmetrized by averaging.
  auto directed = [&](const std::vector<std::string>& from,
                      const std::vector<std::string>& to) {
    double total = 0.0, weight_sum = 0.0;
    for (const auto& ft : from) {
      double w = IsFillerToken(ft) ? options_.filler_weight : 1.0;
      double best = 0.0;
      for (const auto& tt : to) {
        best = std::max(best, dictionary_.TokenScore(ft, tt));
      }
      total += w * best;
      weight_sum += w;
    }
    return weight_sum > 0.0 ? total / weight_sum : 0.0;
  };
  return (directed(a, b) + directed(b, a)) / 2.0;
}

double NameMatcher::AttributeSimilarity(
    const std::string& source_qualified,
    const std::string& target_qualified) const {
  std::string src_table = relational::InstancePart(source_qualified);
  std::string src_attr = relational::AttributePart(source_qualified);
  std::string tgt_table = relational::InstancePart(target_qualified);
  std::string tgt_attr = relational::AttributePart(target_qualified);

  double attr_sim = TokenSetSimilarity(TokenizeIdentifier(src_attr),
                                       TokenizeIdentifier(tgt_attr));
  double table_sim = TokenSetSimilarity(TokenizeIdentifier(src_table),
                                        TokenizeIdentifier(tgt_table));
  return (1.0 - options_.table_weight) * attr_sim +
         options_.table_weight * table_sim;
}

std::vector<Correspondence> NameMatcher::Match(
    const SchemaDef& source, const SchemaDef& target,
    const SeedScores& seeds) const {
  std::vector<Correspondence> out;
  const auto source_attrs = source.AllAttributes();
  const auto target_attrs = target.AllAttributes();
  for (const auto& tgt : target_attrs) {
    for (const auto& src : source_attrs) {
      double score = AttributeSimilarity(src, tgt);
      auto seed = seeds.find({tgt, src});
      if (seed != seeds.end()) {
        // Seeds are curated evidence (COMA++'s instance/terminology
        // matchers); they are kept regardless of the name threshold.
        out.push_back(Correspondence{src, tgt,
                                     std::max(score, seed->second)});
        continue;
      }
      if (score >= options_.threshold) {
        out.push_back(Correspondence{src, tgt, score});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace matching
}  // namespace urm
