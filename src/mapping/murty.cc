#include "mapping/murty.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "mapping/hungarian.h"

namespace urm {
namespace mapping {

namespace {

/// A Murty search node: a cell of the solution space described by
/// forced and forbidden (row, col) pairs, plus the best solution within
/// the cell.
struct Node {
  std::vector<std::pair<int, int>> forced;
  std::vector<std::pair<int, int>> forbidden;
  std::vector<int> row_to_col;  // best assignment within the cell
  double cost = 0.0;            // its (min) cost
};

struct NodeCostGreater {
  bool operator()(const Node& a, const Node& b) const {
    return a.cost > b.cost;
  }
};

}  // namespace

Result<std::vector<MatchingSolution>> KBestMatchings(
    int num_rows, int num_cols, const std::vector<WeightedEdge>& edges,
    int k) {
  if (num_rows < 0 || num_cols < 0) {
    return Status::InvalidArgument("negative dimensions");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");

  double max_weight = 0.0;
  for (const auto& e : edges) {
    if (e.row < 0 || e.row >= num_rows || e.col < 0 || e.col >= num_cols) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    if (e.weight <= 0.0) {
      return Status::InvalidArgument("edge weights must be positive");
    }
    max_weight = std::max(max_weight, e.weight);
  }

  // Square embedding: N = R + C. Entry base cost W ensures minimizing
  // cost maximizes total weight (cost = N*W - sum of chosen weights).
  const int R = num_rows, C = num_cols, N = R + C;
  const double W = max_weight + 1.0;
  std::vector<std::vector<double>> base(
      static_cast<size_t>(N),
      std::vector<double>(static_cast<size_t>(N), kForbiddenCost));
  for (const auto& e : edges) {
    base[e.row][e.col] = W - e.weight;
  }
  for (int i = 0; i < R; ++i) base[i][C + i] = W;      // row skip
  for (int j = 0; j < C; ++j) base[R + j][j] = W;      // col skip
  for (int i = R; i < N; ++i) {
    for (int j = C; j < N; ++j) base[i][j] = W;        // dummy-dummy
  }

  auto solve = [&](const Node& node) -> AssignmentResult {
    std::vector<std::vector<double>> cost = base;
    for (const auto& [i, j] : node.forbidden) {
      cost[i][j] = kForbiddenCost;
    }
    for (const auto& [i, j] : node.forced) {
      for (int jj = 0; jj < N; ++jj) {
        if (jj != j) cost[i][jj] = kForbiddenCost;
      }
    }
    return SolveAssignment(cost);
  };

  auto to_solution = [&](const std::vector<int>& row_to_col) {
    MatchingSolution sol;
    for (int i = 0; i < R; ++i) {
      int j = row_to_col[i];
      if (j < C) {
        sol.edges.emplace_back(i, j);
        sol.weight += W - base[i][j];
      }
    }
    return sol;
  };

  std::priority_queue<Node, std::vector<Node>, NodeCostGreater> queue;
  {
    Node root;
    AssignmentResult best = solve(root);
    if (best.feasible) {
      root.row_to_col = std::move(best.row_to_col);
      root.cost = best.cost;
      queue.push(std::move(root));
    }
  }

  std::vector<MatchingSolution> out;
  while (!queue.empty() && static_cast<int>(out.size()) < k) {
    Node node = queue.top();
    queue.pop();
    out.push_back(to_solution(node.row_to_col));

    // Partition the cell on the real rows' assignments only; matchings
    // differing in dummy-row bookkeeping share a real signature and
    // must not be enumerated again.
    Node child;
    child.forced = node.forced;
    child.forbidden = node.forbidden;
    for (int i = 0; i < R; ++i) {
      // Skip rows already forced by an ancestor cell.
      bool already_forced = false;
      for (const auto& [fi, fj] : node.forced) {
        if (fi == i) {
          already_forced = true;
          break;
        }
      }
      if (!already_forced) {
        Node branch = child;
        branch.forbidden.emplace_back(i, node.row_to_col[i]);
        AssignmentResult sub = solve(branch);
        if (sub.feasible) {
          branch.row_to_col = std::move(sub.row_to_col);
          branch.cost = sub.cost;
          queue.push(std::move(branch));
        }
      }
      child.forced.emplace_back(i, node.row_to_col[i]);
    }
  }
  return out;
}

}  // namespace mapping
}  // namespace urm
