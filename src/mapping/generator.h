#pragma once

#include <vector>

#include "common/status.h"
#include "mapping/mapping.h"
#include "matching/matcher.h"

/// \file generator.h
/// Derives the paper's uncertain-matching model from a matcher output:
/// the h maximum-score one-to-one partial mappings, with probabilities
/// normalized over the set (§II: "The probability of each mapping is
/// derived by normalizing the mapping's similarity score over the total
/// scores of the h mappings").

namespace urm {
namespace mapping {

struct MappingGenOptions {
  /// Number of possible mappings to enumerate (the paper's h).
  int h = 100;
};

/// Generates the h best mappings from a scored correspondence list.
/// The result is sorted by score (descending); probabilities sum to 1.
/// Mappings with an empty correspondence set are dropped, so fewer than
/// h mappings can be returned when the correspondence graph is small.
Result<std::vector<Mapping>> GenerateMappings(
    const std::vector<matching::Correspondence>& correspondences,
    const MappingGenOptions& options);

/// Restricts a mapping set to its first h mappings (they are sorted by
/// score), renormalizing probabilities — how the paper varies |M| in
/// the experiments without re-running the matcher.
std::vector<Mapping> TakeTopMappings(const std::vector<Mapping>& mappings,
                                     size_t h);

}  // namespace mapping
}  // namespace urm
