#include "mapping/hungarian.h"

#include <limits>

#include "common/logging.h"

namespace urm {
namespace mapping {

AssignmentResult SolveAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  AssignmentResult result;
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  for (const auto& row : cost) {
    URM_CHECK_EQ(static_cast<int>(row.size()), n) << "matrix not square";
  }

  const double kInf = std::numeric_limits<double>::infinity();
  // 1-based potentials/arrays; p[j] = row matched to column j.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      int i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.row_to_col.assign(n, -1);
  result.cost = 0.0;
  result.feasible = true;
  for (int j = 1; j <= n; ++j) {
    int i = p[j];
    result.row_to_col[i - 1] = j - 1;
    double c = cost[i - 1][j - 1];
    result.cost += c;
    if (c >= kForbiddenCost) result.feasible = false;
  }
  return result;
}

}  // namespace mapping
}  // namespace urm
