#include "mapping/mapping.h"

#include <algorithm>
#include <cstring>

#include "common/hash_util.h"

namespace urm {
namespace mapping {

Status Mapping::Add(const std::string& target_attr,
                    const std::string& source_attr) {
  for (const auto& [tgt, src] : pairs_) {
    if (tgt == target_attr) {
      return Status::AlreadyExists("target already mapped: " + target_attr);
    }
    if (src == source_attr) {
      return Status::AlreadyExists("source already used: " + source_attr);
    }
  }
  auto entry = std::make_pair(target_attr, source_attr);
  pairs_.insert(
      std::upper_bound(pairs_.begin(), pairs_.end(), entry), entry);
  return Status::OK();
}

std::optional<std::string> Mapping::SourceFor(
    const std::string& target_attr) const {
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), target_attr,
      [](const auto& pair, const std::string& key) {
        return pair.first < key;
      });
  if (it != pairs_.end() && it->first == target_attr) return it->second;
  return std::nullopt;
}

size_t Mapping::IntersectionSize(const Mapping& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < pairs_.size() && j < other.pairs_.size()) {
    if (pairs_[i] == other.pairs_[j]) {
      ++count;
      ++i;
      ++j;
    } else if (pairs_[i] < other.pairs_[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::string Mapping::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + pairs_[i].second + " -> " + pairs_[i].first + ")";
  }
  out += "} p=" + std::to_string(probability_);
  return out;
}

double OverlapRatio(const Mapping& a, const Mapping& b) {
  size_t common = a.IntersectionSize(b);
  size_t total = a.size() + b.size() - common;
  if (total == 0) return 1.0;
  return static_cast<double>(common) / static_cast<double>(total);
}

double MappingSetOverlapRatio(const std::vector<Mapping>& mappings) {
  if (mappings.size() < 2) return 1.0;
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < mappings.size(); ++i) {
    for (size_t j = i + 1; j < mappings.size(); ++j) {
      sum += OverlapRatio(mappings[i], mappings[j]);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double TotalProbability(const std::vector<Mapping>& mappings) {
  double total = 0.0;
  for (const auto& m : mappings) total += m.probability();
  return total;
}

uint64_t MappingSetHash(const std::vector<Mapping>& mappings) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (const auto& m : mappings) {
    for (const auto& [tgt, src] : m.pairs()) {
      HashCombine(seed, static_cast<size_t>(Fnv1a(tgt)));
      HashCombine(seed, static_cast<size_t>(Fnv1a(src)));
    }
    double p = m.probability();
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p), "double must be 64-bit");
    std::memcpy(&bits, &p, sizeof(bits));
    HashCombine(seed, static_cast<size_t>(bits));
  }
  return static_cast<uint64_t>(seed);
}

}  // namespace mapping
}  // namespace urm
