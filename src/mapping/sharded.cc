#include "mapping/sharded.h"

#include <algorithm>
#include <cstring>

#include "common/hash_util.h"
#include "obs/log.h"

namespace urm {
namespace mapping {

ShardedMappingSet ShardedMappingSet::Build(
    const std::vector<Mapping>& mappings, size_t num_shards) {
  ShardedMappingSet out;
  const size_t h = mappings.size();
  if (h == 0) return out;
  const size_t s = std::max<size_t>(1, std::min(num_shards, h));

  out.shards_.reserve(s);
  const size_t base = h / s;
  const size_t extra = h % s;
  size_t next = 0;
  for (size_t i = 0; i < s; ++i) {
    MappingShard shard;
    shard.first = next;
    const size_t count = base + (i < extra ? 1 : 0);
    shard.mappings.assign(mappings.begin() + static_cast<long>(next),
                          mappings.begin() + static_cast<long>(next + count));
    next += count;
    for (const Mapping& m : shard.mappings) shard.mass += m.probability();
    if (shard.mass > 0.0) {
      for (Mapping& m : shard.mappings) {
        m.set_probability(m.probability() / shard.mass);
      }
    }
    shard.hash = MappingSetHash(shard.mappings);
    out.shards_.push_back(std::move(shard));
  }

  size_t seed = 0x9e3779b97f4a7c15ULL;
  HashCombine(seed, s);
  for (const MappingShard& shard : out.shards_) {
    HashCombine(seed, static_cast<size_t>(shard.hash));
    uint64_t mass_bits = 0;
    static_assert(sizeof(mass_bits) == sizeof(shard.mass),
                  "double must be 64-bit");
    std::memcpy(&mass_bits, &shard.mass, sizeof(mass_bits));
    HashCombine(seed, static_cast<size_t>(mass_bits));
  }
  out.config_hash_ = static_cast<uint64_t>(seed);
  URM_LOG(Debug, "shard") << "built sharded view: h=" << h << " shards=" << s
                          << " (" << base << "-" << base + (extra > 0 ? 1 : 0)
                          << " mappings/shard)";
  return out;
}

double ShardedMappingSet::total_mass() const {
  double total = 0.0;
  for (const MappingShard& shard : shards_) total += shard.mass;
  return total;
}

uint64_t ShardContextHash(uint64_t mapping_set_hash, size_t num_shards) {
  if (num_shards <= 1) return mapping_set_hash;
  size_t seed = static_cast<size_t>(mapping_set_hash);
  HashCombine(seed, static_cast<size_t>(0x5348415244u));  // "SHARD"
  HashCombine(seed, num_shards);
  return static_cast<uint64_t>(seed);
}

}  // namespace mapping
}  // namespace urm
