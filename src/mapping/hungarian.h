#pragma once

#include <vector>

/// \file hungarian.h
/// Minimum-cost perfect assignment on a square matrix (Hungarian
/// algorithm with potentials, O(n^3)). Substrate for Murty's k-best
/// matching enumeration, which the paper cites ([9],[10]) as the way
/// possible mappings are generated from a similarity matrix.

namespace urm {
namespace mapping {

/// Cost treated as "edge absent". Solutions using such edges are
/// reported infeasible.
constexpr double kForbiddenCost = 1e9;

struct AssignmentResult {
  /// row_to_col[i] = column assigned to row i.
  std::vector<int> row_to_col;
  /// Total cost of the assignment (sum of chosen entries).
  double cost = 0.0;
  /// False when no assignment avoiding kForbiddenCost edges exists.
  bool feasible = false;
};

/// Solves min-cost perfect assignment for an n x n cost matrix.
/// All costs must be >= 0 (kForbiddenCost marks missing edges).
AssignmentResult SolveAssignment(
    const std::vector<std::vector<double>>& cost);

}  // namespace mapping
}  // namespace urm
