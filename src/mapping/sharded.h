#pragma once

#include <cstdint>
#include <vector>

#include "mapping/mapping.h"

/// \file sharded.h
/// Sharded mapping sets: the h possible mappings partitioned into S
/// contiguous, probability-renormalized shards so the serving tier can
/// evaluate them concurrently (one engine clone per shard) and merge
/// the per-shard AnswerSets deterministically. The paper's experiments
/// stop at h ≈ 10³ because every method walks the whole mapping set in
/// one pass; sharding the mapping dimension unlocks h ≫ 10³ and maps
/// directly onto distributed serving (one shard per node).
///
/// Semantics: the mappings of a set are mutually exclusive and their
/// probabilities sum to 1, so for any answer tuple t
///
///     Pr(t) = Σ_m Pr(m)·[t ∈ answer under m]
///           = Σ_s mass_s · Σ_{m ∈ shard s} Pr'_s(m)·[t ∈ answer under m]
///
/// where mass_s is the shard's original probability mass and Pr'_s the
/// probability renormalized within the shard (Pr(m) / mass_s). Each
/// shard is therefore a well-formed mapping set in its own right
/// (probabilities sum to ~1, so every per-shard algorithm — including
/// the u-trace mass bounds that drive top-k / threshold early
/// termination — runs unchanged), and the merge reweights each shard's
/// answer probabilities by mass_s and accumulates in shard order.
///
/// Shards are contiguous ranges of the source set (which is sorted by
/// score), so the merge order is deterministic and, for exactly
/// representable probabilities, the merged probabilities are
/// bit-identical to the unsharded evaluation; for arbitrary doubles the
/// renormalize/reweight round-trip agrees within a few ulp (the
/// determinism property tests assert 1e-12).

namespace urm {
namespace mapping {

/// \brief One shard: a contiguous slice of the source mapping set with
/// probabilities renormalized to sum to ~1.
///
/// Immutable after ShardedMappingSet::Build; safe to read from any
/// number of concurrent shard evaluations.
struct MappingShard {
  /// The shard's mappings, probabilities renormalized by 1/mass.
  std::vector<Mapping> mappings;
  /// Original probability mass of the slice (Σ over all shards ≈ 1);
  /// the merge weight for this shard's answer probabilities.
  double mass = 0.0;
  /// Index of the shard's first mapping in the source set (shards
  /// cover [first, first + mappings.size()) contiguously).
  size_t first = 0;
  /// MappingSetHash of the renormalized shard — the shard's identity.
  /// Stable across repeated Build calls over the same source set, so
  /// per-shard store entries and fences key on it (see
  /// osharing::OperatorKey::shard_epoch): the shard-local epoch value
  /// that keeps one shard's materializations distinct from its
  /// siblings' while staying reusable across queries.
  uint64_t hash = 0;
};

/// \brief The h mappings partitioned into S contiguous
/// probability-renormalized shards.
///
/// Build is deterministic: same source set and shard count produce the
/// same shards, masses, and hashes. The object is immutable afterwards
/// and safe to share across threads.
class ShardedMappingSet {
 public:
  /// Partitions `mappings` into min(num_shards, h) contiguous shards of
  /// near-equal size (the first h % S shards take one extra mapping)
  /// and renormalizes each shard's probabilities by its mass. A
  /// zero-mass slice (degenerate input) keeps its original
  /// probabilities and merges with weight 0. num_shards == 0 is
  /// treated as 1; an empty source set produces zero shards.
  static ShardedMappingSet Build(const std::vector<Mapping>& mappings,
                                 size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  const MappingShard& shard(size_t i) const { return shards_[i]; }
  const std::vector<MappingShard>& shards() const { return shards_; }

  /// Σ shard masses; ~1 for a well-formed source set.
  double total_mass() const;

  /// Order-sensitive hash of the full shard configuration (shard
  /// count + every shard's hash and mass bits) — changes whenever the
  /// source set, its probabilities, or the shard count change.
  uint64_t config_hash() const { return config_hash_; }

 private:
  std::vector<MappingShard> shards_;
  uint64_t config_hash_ = 0;
};

/// O(1) companion of ShardedMappingSet::config_hash for cache keys: the
/// serving tier folds the shard count into the (already memoized)
/// mapping-set hash without materializing the shards, so fingerprints
/// of sharded and unsharded evaluations of the same request never
/// collide. ShardContextHash(hash, 0) == ShardContextHash(hash, 1) ==
/// hash: a single shard is the unsharded evaluation.
uint64_t ShardContextHash(uint64_t mapping_set_hash, size_t num_shards);

}  // namespace mapping
}  // namespace urm
