#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file mapping.h
/// Possible mappings (the paper's m_i): one-to-one partial sets of
/// attribute correspondences between a source and a target schema, each
/// carrying a probability of being the correct mapping. Probabilities of
/// a mapping set are mutually exclusive and sum to 1.

namespace urm {
namespace mapping {

/// \brief One possible mapping: sorted (target_attr -> source_attr)
/// pairs plus a similarity score and a probability.
///
/// Attribute names are qualified "<table>.<attr>" in their respective
/// schemas. The correspondence list is kept sorted by target attribute
/// for O(log n) lookup and cheap set operations.
class Mapping {
 public:
  Mapping() = default;

  /// Adds a correspondence. Fails if the target attribute is already
  /// mapped or the source attribute already used (one-to-one).
  Status Add(const std::string& target_attr,
             const std::string& source_attr);

  /// Source attribute matched to `target_attr`, or nullopt (partial
  /// mappings leave attributes unmatched).
  std::optional<std::string> SourceFor(
      const std::string& target_attr) const;

  /// Correspondences as (target_attr, source_attr), sorted by target.
  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  double score() const { return score_; }
  void set_score(double s) { score_ = s; }
  double probability() const { return probability_; }
  void set_probability(double p) { probability_ = p; }

  /// Number of correspondences shared with `other` (|m_i ∩ m_j|).
  size_t IntersectionSize(const Mapping& other) const;

  /// Correspondence-set equality (scores/probabilities ignored).
  bool SamePairs(const Mapping& other) const {
    return pairs_ == other.pairs_;
  }

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
  double score_ = 0.0;
  double probability_ = 0.0;
};

/// The paper's o-ratio of two mappings: |m_i ∩ m_j| / |m_i ∪ m_j|.
/// Two empty mappings have o-ratio 1.
double OverlapRatio(const Mapping& a, const Mapping& b);

/// Average pairwise o-ratio over a mapping set (paper §VIII-B.1).
/// Returns 1 for sets with fewer than two mappings.
double MappingSetOverlapRatio(const std::vector<Mapping>& mappings);

/// Sum of probabilities (should be ~1 for a well-formed set).
double TotalProbability(const std::vector<Mapping>& mappings);

/// Order-sensitive structural hash of a mapping set: every
/// correspondence pair plus the exact probability bits of each mapping.
/// The serving tier folds this into answer-cache keys so cached results
/// are invalidated when the active mapping set (or its renormalized
/// probabilities) changes.
uint64_t MappingSetHash(const std::vector<Mapping>& mappings);

}  // namespace mapping
}  // namespace urm
