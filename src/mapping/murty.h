#pragma once

#include <utility>
#include <vector>

#include "common/status.h"

/// \file murty.h
/// Murty's algorithm for enumerating the k best (maximum-weight)
/// bipartite matchings, allowing nodes to stay unmatched (partial
/// matchings). This is the "bipartite matching algorithm" the paper
/// cites ([9],[10]) for deriving the h possible mappings with the
/// highest similarity scores from a matcher's similarity matrix.
///
/// Duplicate suppression: the assignment problem is embedded in a square
/// matrix with per-row skip columns and per-column skip rows; Murty
/// partitioning branches only on *real-row* assignments, so matchings
/// that differ solely in dummy bookkeeping are never enumerated twice.

namespace urm {
namespace mapping {

/// A scored candidate pair (row = target attribute index, col = source
/// attribute index).
struct WeightedEdge {
  int row = 0;
  int col = 0;
  double weight = 0.0;
};

/// One enumerated matching: chosen (row, col) pairs and total weight.
struct MatchingSolution {
  std::vector<std::pair<int, int>> edges;  ///< sorted by row
  double weight = 0.0;
};

/// Returns up to `k` distinct partial matchings in non-increasing weight
/// order. Weights must be positive (a zero-weight edge is never
/// preferable to leaving both nodes unmatched).
Result<std::vector<MatchingSolution>> KBestMatchings(
    int num_rows, int num_cols, const std::vector<WeightedEdge>& edges,
    int k);

}  // namespace mapping
}  // namespace urm
