#include "mapping/generator.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "mapping/murty.h"

namespace urm {
namespace mapping {

Result<std::vector<Mapping>> GenerateMappings(
    const std::vector<matching::Correspondence>& correspondences,
    const MappingGenOptions& options) {
  if (options.h <= 0) {
    return Status::InvalidArgument("h must be positive");
  }
  // Index the attributes that actually occur in correspondences; the
  // assignment problem stays small even for wide schemas.
  std::map<std::string, int> target_ids, source_ids;
  std::vector<std::string> targets, sources;
  for (const auto& c : correspondences) {
    if (target_ids.emplace(c.target_attr, targets.size()).second) {
      targets.push_back(c.target_attr);
    }
    if (source_ids.emplace(c.source_attr, sources.size()).second) {
      sources.push_back(c.source_attr);
    }
  }

  std::vector<WeightedEdge> edges;
  edges.reserve(correspondences.size());
  for (const auto& c : correspondences) {
    if (c.score <= 0.0) {
      return Status::InvalidArgument("correspondence score must be > 0: " +
                                     c.ToString());
    }
    edges.push_back(WeightedEdge{target_ids[c.target_attr],
                                 source_ids[c.source_attr], c.score});
  }

  auto solutions =
      KBestMatchings(static_cast<int>(targets.size()),
                     static_cast<int>(sources.size()), edges, options.h);
  if (!solutions.ok()) return solutions.status();

  std::vector<Mapping> mappings;
  double total_score = 0.0;
  for (const auto& sol : solutions.ValueOrDie()) {
    if (sol.edges.empty()) continue;  // the empty mapping is not useful
    Mapping m;
    for (const auto& [row, col] : sol.edges) {
      URM_RETURN_NOT_OK(m.Add(targets[static_cast<size_t>(row)],
                              sources[static_cast<size_t>(col)]));
    }
    m.set_score(sol.weight);
    total_score += sol.weight;
    mappings.push_back(std::move(m));
  }
  for (auto& m : mappings) {
    m.set_probability(total_score > 0.0 ? m.score() / total_score : 0.0);
  }
  return mappings;
}

std::vector<Mapping> TakeTopMappings(const std::vector<Mapping>& mappings,
                                     size_t h) {
  std::vector<Mapping> out(
      mappings.begin(),
      mappings.begin() + std::min(h, mappings.size()));
  double total = 0.0;
  for (const auto& m : out) total += m.score();
  for (auto& m : out) {
    m.set_probability(total > 0.0 ? m.score() / total : 0.0);
  }
  return out;
}

}  // namespace mapping
}  // namespace urm
