#include "relational/value.h"

#include <cmath>

#include "common/hash_util.h"
#include "common/logging.h"

namespace urm {
namespace relational {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(repr_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(repr_)) return ValueType::kInt64;
  if (std::holds_alternative<double>(repr_)) return ValueType::kDouble;
  return ValueType::kString;
}

int64_t Value::AsInt64() const {
  URM_CHECK(std::holds_alternative<int64_t>(repr_)) << "not an int64";
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  URM_CHECK(std::holds_alternative<double>(repr_)) << "not a double";
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  URM_CHECK(std::holds_alternative<std::string>(repr_)) << "not a string";
  return std::get<std::string>(repr_);
}

double Value::NumericValue() const {
  if (std::holds_alternative<int64_t>(repr_)) {
    return static_cast<double>(std::get<int64_t>(repr_));
  }
  URM_CHECK(std::holds_alternative<double>(repr_)) << "not numeric";
  return std::get<double>(repr_);
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    return NumericValue() == other.NumericValue();
  }
  if (type() != other.type()) return false;
  return std::get<std::string>(repr_) == std::get<std::string>(other.repr_);
}

bool Value::operator<(const Value& other) const {
  // NULL < numeric < string; numerics compare numerically.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL
  if (ra == 1) return NumericValue() < other.NumericValue();
  return std::get<std::string>(repr_) < std::get<std::string>(other.repr_);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt64:
      // Hash via the numeric (double) view so 2 and 2.0 collide, matching
      // operator==.
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(repr_)));
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(repr_));
    case ValueType::kString:
      return static_cast<size_t>(Fnv1a(std::get<std::string>(repr_)));
  }
  return 0;
}

size_t ApproxValueBytes(const Value& v) {
  size_t bytes = 8;
  if (v.type() == ValueType::kString) bytes += v.AsString().size();
  return bytes;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(repr_));
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        return std::to_string(static_cast<int64_t>(d)) + ".0";
      }
      return std::to_string(d);
    }
    case ValueType::kString:
      return std::get<std::string>(repr_);
  }
  return "?";
}

}  // namespace relational
}  // namespace urm
