#include "relational/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace urm {
namespace relational {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char separator) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::InvalidArgument(
            "quote inside unquoted field: " + line);
      }
      in_quotes = true;
    } else if (c == separator) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote: " + line);
  }
  fields.push_back(std::move(cur));
  return fields;
}

namespace {

std::string QuoteField(const std::string& field, char separator) {
  bool needs_quotes =
      field.find(separator) != std::string::npos ||
      field.find('"') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Value ConvertField(const std::string& field, ValueType type) {
  if (type == ValueType::kString) return Value(field);
  if (field.empty()) return Value::Null();
  char* end = nullptr;
  if (type == ValueType::kInt64) {
    long long v = std::strtoll(field.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Value::Null();
    return Value(static_cast<int64_t>(v));
  }
  double d = std::strtod(field.c_str(), &end);
  if (end == nullptr || *end != '\0') return Value::Null();
  return Value(d);
}

}  // namespace

std::string FormatCsvLine(const Row& row, char separator) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(separator);
    if (!row[i].is_null()) {
      out += QuoteField(row[i].ToString(), separator);
    }
  }
  return out;
}

Result<Relation> ReadCsv(std::istream& in, const RelationSchema& schema,
                         const CsvOptions& options,
                         CsvLoadStats* load_stats) {
  // Column-major accumulation: fields convert straight into per-column
  // vectors, which compress directly into the relation's columnar
  // backing — no row vector is ever built here.
  std::vector<std::vector<Value>> columns(schema.num_columns());
  size_t rows = 0;
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && options.header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    auto fields = ParseCsvLine(line, options.separator);
    if (!fields.ok()) return fields.status();
    if (fields.ValueOrDie().size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": " +
          std::to_string(fields.ValueOrDie().size()) + " fields, schema "
          "expects " + std::to_string(schema.num_columns()));
    }
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      columns[i].push_back(
          ConvertField(fields.ValueOrDie()[i], schema.column(i).type));
    }
    ++rows;
  }
  if (schema.num_columns() == 0) {
    // Zero-column schemas cannot carry a columnar encoding; only the
    // degenerate empty relation is representable.
    if (rows > 0) {
      return Status::InvalidArgument("CSV rows with a zero-column schema");
    }
    return Relation(schema);
  }
  columnar::ColumnarRelationPtr encoded =
      columnar::ColumnarRelation::FromColumns(schema, std::move(columns));
  if (load_stats != nullptr) {
    load_stats->columns = encoded->Stats();
    load_stats->rows = encoded->num_rows();
    load_stats->encoded_bytes = encoded->EncodedBytes();
    load_stats->logical_bytes = encoded->LogicalBytes();
  }
  return Relation::FromColumnar(schema, std::move(encoded));
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const RelationSchema& schema,
                             const CsvOptions& options,
                             CsvLoadStats* load_stats) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open file: " + path);
  }
  return ReadCsv(in, schema, options, load_stats);
}

Status WriteCsv(const Relation& relation, std::ostream& out,
                const CsvOptions& options) {
  if (options.header) {
    std::string header;
    for (size_t i = 0; i < relation.schema().num_columns(); ++i) {
      if (i > 0) header.push_back(options.separator);
      header += QuoteField(relation.schema().column(i).name,
                           options.separator);
    }
    out << header << "\n";
  }
  for (const Row& row : relation.rows()) {
    out << FormatCsvLine(row, options.separator) << "\n";
  }
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot create file: " + path);
  }
  return WriteCsv(relation, out, options);
}

}  // namespace relational
}  // namespace urm
