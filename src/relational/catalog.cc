#include "relational/catalog.h"

namespace urm {
namespace relational {

Status Catalog::Register(const std::string& name, RelationPtr relation) {
  // Encode outside the lock: Columnar() is the expensive part and is
  // itself thread-safe.
  if (auto_encode_ && relation != nullptr) relation->Columnar();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation already registered: " + name);
  }
  relations_.emplace(name, std::move(relation));
  return Status::OK();
}

void Catalog::Put(const std::string& name, RelationPtr relation) {
  if (auto_encode_ && relation != nullptr) relation->Columnar();
  std::unique_lock<std::shared_mutex> lock(mu_);
  relations_[name] = std::move(relation);
}

Catalog::StorageStats Catalog::Storage() const {
  StorageStats stats;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, rel] : relations_) {
    const columnar::ColumnarRelation* enc = rel->ColumnarIfEncoded();
    if (enc == nullptr) continue;
    stats.encoded_relations++;
    stats.encoded_bytes += enc->EncodedBytes();
    stats.logical_bytes += enc->LogicalBytes();
    stats.columns_plain += enc->CodecCount(columnar::CodecKind::kPlain);
    stats.columns_delta += enc->CodecCount(columnar::CodecKind::kDelta);
    stats.columns_rle += enc->CodecCount(columnar::CodecKind::kRle);
    stats.columns_dictionary +=
        enc->CodecCount(columnar::CodecKind::kDictionary);
  }
  return stats;
}

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    names.push_back(name);
  }
  return names;
}

size_t Catalog::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) {
    bytes += rel->ApproxBytes();
  }
  return bytes;
}

size_t Catalog::TotalRows() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t rows = 0;
  for (const auto& [name, rel] : relations_) {
    rows += rel->num_rows();
  }
  return rows;
}

}  // namespace relational
}  // namespace urm
