#include "relational/catalog.h"

namespace urm {
namespace relational {

Status Catalog::Register(const std::string& name, RelationPtr relation) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation already registered: " + name);
  }
  relations_.emplace(name, std::move(relation));
  return Status::OK();
}

void Catalog::Put(const std::string& name, RelationPtr relation) {
  relations_[name] = std::move(relation);
}

Result<RelationPtr> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    names.push_back(name);
  }
  return names;
}

size_t Catalog::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [name, rel] : relations_) {
    bytes += rel->ApproxBytes();
  }
  return bytes;
}

size_t Catalog::TotalRows() const {
  size_t rows = 0;
  for (const auto& [name, rel] : relations_) {
    rows += rel->num_rows();
  }
  return rows;
}

}  // namespace relational
}  // namespace urm
