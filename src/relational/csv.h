#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "relational/relation.h"

/// \file csv.h
/// CSV import/export for relations, so users can run the probabilistic
/// query engine over their own source instances instead of the built-in
/// generator. Dialect: comma separator, double-quote quoting with ""
/// escapes, one record per line, no embedded newlines.

namespace urm {
namespace relational {

struct CsvOptions {
  char separator = ',';
  /// When reading: skip the first line (column headers). When writing:
  /// emit a header line with the qualified column names.
  bool header = true;
};

/// Parses one CSV line into raw fields (quoting handled; no type
/// conversion). Exposed for tests.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                              char separator);

/// Renders one row as a CSV line (NULL -> empty field; fields
/// containing the separator or quotes are quoted).
std::string FormatCsvLine(const Row& row, char separator);

/// Per-column encoding report from a CSV load (codec chosen by the
/// column's value distribution, encoded vs row-format bytes).
struct CsvLoadStats {
  std::vector<columnar::ColumnStats> columns;
  size_t rows = 0;
  size_t encoded_bytes = 0;  ///< sum over columns
  size_t logical_bytes = 0;  ///< row-format footprint of the same data
};

/// Reads a relation from a stream. Fields are converted per the schema
/// column types (kInt64/kDouble parsed; unparseable or empty fields
/// become NULL; kString taken verbatim). Fails on arity mismatches.
///
/// Values are accumulated column-major and compressed directly into
/// the relation's columnar backing — no intermediate row
/// materialization; rows decode lazily on first row-wise access. Pass
/// `load_stats` to receive the per-column codec/size report.
Result<Relation> ReadCsv(std::istream& in, const RelationSchema& schema,
                         const CsvOptions& options = CsvOptions(),
                         CsvLoadStats* load_stats = nullptr);

/// Reads a relation from a file.
Result<Relation> ReadCsvFile(const std::string& path,
                             const RelationSchema& schema,
                             const CsvOptions& options = CsvOptions(),
                             CsvLoadStats* load_stats = nullptr);

/// Writes a relation to a stream.
Status WriteCsv(const Relation& relation, std::ostream& out,
                const CsvOptions& options = CsvOptions());

/// Writes a relation to a file.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options = CsvOptions());

}  // namespace relational
}  // namespace urm
