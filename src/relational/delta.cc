#include "relational/delta.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/timer.h"
#include "relational/catalog.h"

namespace urm {
namespace relational {

const char* DeltaOpKindName(DeltaOpKind kind) {
  switch (kind) {
    case DeltaOpKind::kInsert:
      return "insert";
    case DeltaOpKind::kUpdate:
      return "update";
    case DeltaOpKind::kDelete:
      return "delete";
  }
  return "unknown";
}

Result<ApplyResult> Catalog::ApplyDelta(const DeltaBatch& batch) {
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  ApplyResult result;
  if (batch.ops.empty()) {
    result.data_epoch = data_epoch();
    return result;
  }

  // Phase 1: snapshot the touched relations and validate every op
  // against them. Any failure returns before anything is applied.
  std::map<std::string, RelationPtr> touched;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const DeltaOp& op : batch.ops) {
      auto it = touched.find(op.relation);
      if (it == touched.end()) {
        auto found = relations_.find(op.relation);
        if (found == relations_.end()) {
          return Status::NotFound("relation not found: " + op.relation);
        }
        it = touched.emplace(op.relation, found->second).first;
      }
      const size_t arity = it->second->schema().num_columns();
      if (op.row.size() != arity) {
        return Status::InvalidArgument(
            DeltaOpKindName(op.kind) + std::string(" row arity ") +
            std::to_string(op.row.size()) + " != schema arity " +
            std::to_string(arity) + " for relation " + op.relation);
      }
      if (op.kind == DeltaOpKind::kUpdate && op.new_row.size() != arity) {
        return Status::InvalidArgument(
            "update new_row arity " + std::to_string(op.new_row.size()) +
            " != schema arity " + std::to_string(arity) + " for relation " +
            op.relation);
      }
    }
  }

  // Phase 2: rebuild each touched relation outside the catalog locks.
  // Readers keep serving the old snapshot while rows are copied and
  // the columnar backing is re-encoded (once per relation per batch).
  std::map<std::string, RelationPtr> rebuilt;
  for (const auto& [name, old] : touched) {
    std::vector<Row> rows = old->rows();
    for (const DeltaOp& op : batch.ops) {
      if (op.relation != name) continue;
      switch (op.kind) {
        case DeltaOpKind::kInsert:
          rows.push_back(op.row);
          result.rows_inserted++;
          break;
        case DeltaOpKind::kUpdate:
          for (Row& r : rows) {
            if (RowsEqual(r, op.row)) {
              r = op.new_row;
              result.rows_updated++;
            }
          }
          break;
        case DeltaOpKind::kDelete: {
          const size_t before = rows.size();
          rows.erase(std::remove_if(
                         rows.begin(), rows.end(),
                         [&](const Row& r) { return RowsEqual(r, op.row); }),
                     rows.end());
          result.rows_deleted += before - rows.size();
          break;
        }
      }
    }
    auto fresh = std::make_shared<Relation>(old->schema(), std::move(rows));
    if (auto_encode_) {
      Timer timer;
      fresh->Columnar();
      result.encode_seconds += timer.Seconds();
    }
    rebuilt.emplace(name, std::move(fresh));
    result.relations.push_back(name);
    result.replaced.push_back(old);
  }

  // Phase 3: swap every replaced pointer under one exclusive lock, so
  // readers see the whole batch or none of it, then advance the data
  // epoch (after the swap: a reader that observes the new epoch can
  // only snapshot the new state).
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (auto& [name, fresh] : rebuilt) {
      relations_[name] = std::move(fresh);
    }
    result.data_epoch =
        data_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  return result;
}

}  // namespace relational
}  // namespace urm
