#include "relational/relation.h"

#include <unordered_set>

#include "common/hash_util.h"
#include "common/logging.h"

namespace urm {
namespace relational {

size_t HashRow(const Row& row) {
  size_t seed = 0x51ed270b;
  for (const Value& v : row) {
    HashCombine(seed, v.Hash());
  }
  return seed;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

std::vector<Row>* Relation::MutableRows() {
  if (rows_.use_count() > 1) {
    rows_ = std::make_shared<std::vector<Row>>(*rows_);
  }
  return rows_.get();
}

Status Relation::AddRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  MutableRows()->push_back(std::move(row));
  return Status::OK();
}

Result<Relation> Relation::WithSchema(RelationSchema schema) const {
  if (schema.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument("WithSchema arity mismatch");
  }
  Relation out = *this;
  out.schema_ = std::move(schema);
  return out;
}

namespace {

struct RowRefHash {
  const std::vector<Row>* rows;
  size_t operator()(size_t i) const { return HashRow((*rows)[i]); }
};

struct RowRefEq {
  const std::vector<Row>* rows;
  bool operator()(size_t a, size_t b) const {
    return RowsEqual((*rows)[a], (*rows)[b]);
  }
};

}  // namespace

Relation Relation::Distinct() const {
  Relation out(schema_);
  const std::vector<Row>& in = rows();
  std::unordered_set<size_t, RowRefHash, RowRefEq> seen(
      16, RowRefHash{&in}, RowRefEq{&in});
  for (size_t i = 0; i < in.size(); ++i) {
    if (seen.insert(i).second) {
      URM_CHECK_OK(out.AddRow(in[i]));
    }
  }
  return out;
}

Result<Relation> Relation::Project(
    const std::vector<std::string>& names) const {
  auto sub = schema_.Select(names);
  if (!sub.ok()) return sub.status();
  std::vector<size_t> idx;
  idx.reserve(names.size());
  for (const auto& n : names) {
    idx.push_back(*schema_.IndexOf(n));
  }
  Relation out(std::move(sub).ValueOrDie());
  out.Reserve(num_rows());
  for (const Row& r : rows()) {
    Row proj;
    proj.reserve(idx.size());
    for (size_t i : idx) proj.push_back(r[i]);
    URM_CHECK_OK(out.AddRow(std::move(proj)));
  }
  return out;
}

Result<Relation> Relation::Product(const Relation& other) const {
  auto schema = schema_.Concat(other.schema_);
  if (!schema.ok()) return schema.status();
  Relation out(std::move(schema).ValueOrDie());
  out.Reserve(num_rows() * other.num_rows());
  for (const Row& a : rows()) {
    for (const Row& b : other.rows()) {
      Row combined = a;
      combined.insert(combined.end(), b.begin(), b.end());
      URM_CHECK_OK(out.AddRow(std::move(combined)));
    }
  }
  return out;
}

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = 0;
  for (const Value& v : row) {
    bytes += 8;
    if (v.type() == ValueType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

size_t Relation::ApproxBytes() const {
  size_t bytes = 0;
  for (const Row& r : rows()) bytes += ApproxRowBytes(r);
  return bytes;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += " [" + std::to_string(num_rows()) + " rows]\n";
  size_t shown = std::min(max_rows, num_rows());
  for (size_t i = 0; i < shown; ++i) {
    out += "  ";
    const Row& r = rows()[i];
    for (size_t j = 0; j < r.size(); ++j) {
      if (j > 0) out += " | ";
      out += r[j].ToString();
    }
    out += "\n";
  }
  if (shown < num_rows()) out += "  ...\n";
  return out;
}

}  // namespace relational
}  // namespace urm
