#include "relational/relation.h"

#include <unordered_set>

#include "common/hash_util.h"
#include "common/logging.h"

namespace urm {
namespace relational {

size_t HashRow(const Row& row) {
  size_t seed = 0x51ed270b;
  for (const Value& v : row) {
    HashCombine(seed, v.Hash());
  }
  return seed;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

std::shared_ptr<Relation::Backing> Relation::Backing::FromRows(
    std::vector<Row> r) {
  auto backing = std::make_shared<Backing>();
  backing->rows = std::make_shared<std::vector<Row>>(std::move(r));
  backing->rows_view.store(backing->rows.get(), std::memory_order_release);
  return backing;
}

std::shared_ptr<Relation::Backing> Relation::Backing::FromColumnar(
    columnar::ColumnarRelationPtr c) {
  auto backing = std::make_shared<Backing>();
  backing->columnar = std::move(c);
  backing->columnar_view.store(backing->columnar.get(),
                               std::memory_order_release);
  return backing;
}

Relation Relation::FromColumnar(RelationSchema schema,
                                columnar::ColumnarRelationPtr encoded) {
  URM_CHECK(encoded != nullptr);
  URM_CHECK(schema.num_columns() == encoded->num_columns())
      << "FromColumnar schema arity mismatch";
  Relation out;
  out.schema_ = std::move(schema);
  out.backing_ = Backing::FromColumnar(std::move(encoded));
  return out;
}

const std::vector<Row>& Relation::MaterializeRowsSlow() const {
  Backing& b = *backing_;
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.rows == nullptr) {
    auto rows = std::make_shared<std::vector<Row>>();
    b.columnar->MaterializeRows(rows.get());
    b.rows = std::move(rows);
    b.rows_view.store(b.rows.get(), std::memory_order_release);
  }
  return *b.rows;
}

columnar::ColumnarRelationPtr Relation::Columnar() const {
  if (backing_->columnar_view.load(std::memory_order_acquire) != nullptr) {
    return backing_->columnar;
  }
  // The encoding carries no row count of its own for 0-column shapes.
  if (schema_.num_columns() == 0) return nullptr;
  const std::vector<Row>& r = rows();  // materialize outside the lock
  Backing& b = *backing_;
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.columnar == nullptr) {
    // Assign the shared_ptr BEFORE publishing the view: the unlocked
    // fast path above acquire-loads the view and then copies
    // b.columnar without the mutex, so the copy must happen-after the
    // assignment (mirrors MaterializeRowsSlow).
    b.columnar = columnar::ColumnarRelation::Encode(schema_, r);
    b.columnar_view.store(b.columnar.get(), std::memory_order_release);
  }
  return b.columnar;
}

std::vector<Row>* Relation::MutableRows() {
  if (backing_.use_count() > 1) {
    // Shared with other relations (or caches): copy-on-write into a
    // fresh row-only backing. The cached encoding stays with the old
    // backing's other holders; it does not describe the rows about to
    // change.
    const std::vector<Row>& current = rows();
    backing_ = Backing::FromRows(current);
  } else {
    if (backing_->rows_view.load(std::memory_order_acquire) == nullptr) {
      rows();  // sole owner, but rows not yet materialized
    }
    if (backing_->columnar_view.load(std::memory_order_acquire) != nullptr) {
      // Invalidate the encoding before mutating: steal the row vector
      // into a fresh backing.
      auto fresh = std::make_shared<Backing>();
      fresh->rows = std::move(backing_->rows);
      fresh->rows_view.store(fresh->rows.get(), std::memory_order_release);
      backing_ = std::move(fresh);
    }
  }
  return backing_->rows.get();
}

Status Relation::AddRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  MutableRows()->push_back(std::move(row));
  return Status::OK();
}

Status Relation::AddRows(std::vector<Row> rows) {
  for (const Row& row : rows) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) + " != schema arity " +
          std::to_string(schema_.num_columns()));
    }
  }
  if (rows.empty()) return Status::OK();
  std::vector<Row>* dst = MutableRows();
  dst->reserve(dst->size() + rows.size());
  for (Row& row : rows) {
    dst->push_back(std::move(row));
  }
  return Status::OK();
}

Relation Relation::Gather(const columnar::SelectionVector& sel) const {
  Relation out(schema_);
  std::vector<Row>* dst = out.MutableRows();
  dst->reserve(sel.size());
  const std::vector<Row>* src =
      backing_->rows_view.load(std::memory_order_acquire);
  if (src != nullptr) {
    for (uint32_t i : sel) {
      URM_CHECK(i < src->size());
      dst->push_back((*src)[i]);
    }
    return out;
  }
  const columnar::ColumnarRelation* enc =
      backing_->columnar_view.load(std::memory_order_acquire);
  for (uint32_t i : sel) {
    dst->push_back(enc->MaterializeRow(i));
  }
  return out;
}

Result<Relation> Relation::WithSchema(RelationSchema schema) const {
  if (schema.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument("WithSchema arity mismatch");
  }
  Relation out = *this;
  out.schema_ = std::move(schema);
  return out;
}

namespace {

struct RowRefHash {
  const std::vector<Row>* rows;
  size_t operator()(size_t i) const { return HashRow((*rows)[i]); }
};

struct RowRefEq {
  const std::vector<Row>* rows;
  bool operator()(size_t a, size_t b) const {
    return RowsEqual((*rows)[a], (*rows)[b]);
  }
};

}  // namespace

Relation Relation::Distinct() const {
  Relation out(schema_);
  const std::vector<Row>& in = rows();
  std::unordered_set<size_t, RowRefHash, RowRefEq> seen(
      16, RowRefHash{&in}, RowRefEq{&in});
  for (size_t i = 0; i < in.size(); ++i) {
    if (seen.insert(i).second) {
      URM_CHECK_OK(out.AddRow(in[i]));
    }
  }
  return out;
}

Result<Relation> Relation::Project(
    const std::vector<std::string>& names) const {
  auto sub = schema_.Select(names);
  if (!sub.ok()) return sub.status();
  std::vector<size_t> idx;
  idx.reserve(names.size());
  for (const auto& n : names) {
    idx.push_back(*schema_.IndexOf(n));
  }
  Relation out(std::move(sub).ValueOrDie());
  out.Reserve(num_rows());
  for (const Row& r : rows()) {
    Row proj;
    proj.reserve(idx.size());
    for (size_t i : idx) proj.push_back(r[i]);
    URM_CHECK_OK(out.AddRow(std::move(proj)));
  }
  return out;
}

Result<Relation> Relation::Product(const Relation& other) const {
  auto schema = schema_.Concat(other.schema_);
  if (!schema.ok()) return schema.status();
  Relation out(std::move(schema).ValueOrDie());
  out.Reserve(num_rows() * other.num_rows());
  for (const Row& a : rows()) {
    for (const Row& b : other.rows()) {
      Row combined = a;
      combined.insert(combined.end(), b.begin(), b.end());
      URM_CHECK_OK(out.AddRow(std::move(combined)));
    }
  }
  return out;
}

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = 0;
  for (const Value& v : row) bytes += ApproxValueBytes(v);
  return bytes;
}

size_t Relation::ApproxBytes() const {
  const std::vector<Row>* p =
      backing_->rows_view.load(std::memory_order_acquire);
  if (p == nullptr) {
    return backing_->columnar_view.load(std::memory_order_acquire)
        ->LogicalBytes();
  }
  size_t bytes = 0;
  for (const Row& r : *p) bytes += ApproxRowBytes(r);
  return bytes;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += " [" + std::to_string(num_rows()) + " rows]\n";
  size_t shown = std::min(max_rows, num_rows());
  for (size_t i = 0; i < shown; ++i) {
    out += "  ";
    const Row& r = rows()[i];
    for (size_t j = 0; j < r.size(); ++j) {
      if (j > 0) out += " | ";
      out += r[j].ToString();
    }
    out += "\n";
  }
  if (shown < num_rows()) out += "  ...\n";
  return out;
}

}  // namespace relational
}  // namespace urm
