#include "relational/schema.h"

#include "common/logging.h"

namespace urm {
namespace relational {

std::string AttributePart(const std::string& qualified) {
  size_t pos = qualified.rfind('.');
  if (pos == std::string::npos) return qualified;
  return qualified.substr(pos + 1);
}

std::string InstancePart(const std::string& qualified) {
  size_t pos = qualified.rfind('.');
  if (pos == std::string::npos) return "";
  return qualified.substr(0, pos);
}

std::optional<size_t> RelationSchema::IndexOf(const std::string& name) const {
  // Exact qualified match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Unqualified match, required unique.
  if (name.find('.') == std::string::npos) {
    std::optional<size_t> found;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (AttributePart(columns_[i].name) == name) {
        if (found.has_value()) return std::nullopt;  // ambiguous
        found = i;
      }
    }
    return found;
  }
  return std::nullopt;
}

bool RelationSchema::ContainsAll(
    const std::vector<std::string>& names) const {
  for (const auto& n : names) {
    if (!IndexOf(n).has_value()) return false;
  }
  return true;
}

Status RelationSchema::AddColumn(ColumnDef column) {
  for (const auto& c : columns_) {
    if (c.name == column.name) {
      return Status::AlreadyExists("duplicate column: " + column.name);
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<RelationSchema> RelationSchema::Concat(
    const RelationSchema& other) const {
  RelationSchema out = *this;
  for (const auto& c : other.columns_) {
    URM_RETURN_NOT_OK(out.AddColumn(c));
  }
  return out;
}

Result<RelationSchema> RelationSchema::Select(
    const std::vector<std::string>& names) const {
  RelationSchema out;
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (!idx.has_value()) {
      return Status::NotFound("column not found or ambiguous: " + n);
    }
    URM_RETURN_NOT_OK(out.AddColumn(columns_[*idx]));
  }
  return out;
}

std::string RelationSchema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace relational
}  // namespace urm
