#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

/// \file relation.h
/// Row-oriented in-memory relations. Relations are the unit of exchange
/// between the algebra evaluator, the o-sharing e-units, and the answer
/// aggregators. Row storage is shared copy-on-write so that renaming a
/// relation's columns (aliased scans) is O(schema), not O(rows).

namespace urm {
namespace relational {

using Row = std::vector<Value>;

/// \brief A materialized relation: schema plus shared row storage.
class Relation {
 public:
  Relation() : rows_(std::make_shared<std::vector<Row>>()) {}
  explicit Relation(RelationSchema schema)
      : schema_(std::move(schema)),
        rows_(std::make_shared<std::vector<Row>>()) {}
  Relation(RelationSchema schema, std::vector<Row> rows)
      : schema_(std::move(schema)),
        rows_(std::make_shared<std::vector<Row>>(std::move(rows))) {}

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return *rows_; }
  size_t num_rows() const { return rows_->size(); }
  bool empty() const { return rows_->empty(); }

  /// Appends a row; fails if the arity does not match the schema.
  /// Copies shared storage first if needed (copy-on-write).
  Status AddRow(Row row);

  /// Reserves row storage.
  void Reserve(size_t n) { MutableRows()->reserve(n); }

  /// Same rows under a different schema (column rename). O(1) in rows.
  /// The new schema must have the same arity.
  Result<Relation> WithSchema(RelationSchema schema) const;

  /// Relation with duplicate rows removed (order of first occurrence).
  Relation Distinct() const;

  /// Rows projected to the given columns (resolvable names), duplicates
  /// preserved.
  Result<Relation> Project(const std::vector<std::string>& names) const;

  /// Cartesian product with `other`.
  Result<Relation> Product(const Relation& other) const;

  /// Approximate in-memory footprint in bytes (used for |D| sizing).
  size_t ApproxBytes() const;

  /// Multi-line debug rendering, capped at `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<Row>* MutableRows();

  RelationSchema schema_;
  std::shared_ptr<std::vector<Row>> rows_;
};

using RelationPtr = std::shared_ptr<const Relation>;

/// Approximate in-memory footprint of one row (the per-row unit behind
/// Relation::ApproxBytes; also used to weigh cached answer sets).
size_t ApproxRowBytes(const Row& row);

/// Hash of a full row, consistent with row equality via Value::operator==.
size_t HashRow(const Row& row);

/// Row equality via Value::operator==.
bool RowsEqual(const Row& a, const Row& b);

/// Deterministic total order over rows (for stable output).
bool RowLess(const Row& a, const Row& b);

}  // namespace relational
}  // namespace urm
