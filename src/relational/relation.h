#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "columnar/columnar_relation.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

/// \file relation.h
/// In-memory relations with dual backing: row-major `Value` vectors
/// and/or a compressed column-major encoding (columnar::ColumnarRelation).
/// Relations are the unit of exchange between the algebra evaluator,
/// the o-sharing e-units, and the answer aggregators.
///
/// Storage is shared copy-on-write so that renaming a relation's
/// columns (aliased scans) is O(schema), not O(rows) — and the shared
/// backing carries the columnar encoding across renames, so an aliased
/// scan of an encoded catalog relation still takes the codec-aware
/// selection path. Either form materializes lazily from the other:
/// `rows()` decodes a columnar-only backing on first use; `Columnar()`
/// encodes row storage on first use. Concurrent readers are safe (the
/// lazy step runs under a per-backing mutex and publishes through an
/// atomic pointer); mutation keeps the existing single-owner contract
/// and any write (AddRow / Reserve) invalidates the cached encoding
/// before touching rows, so mixed append/scan use never reads a stale
/// encoding.

namespace urm {
namespace relational {

/// \brief A materialized relation: schema plus shared dual-form
/// (row / compressed columnar) storage.
class Relation {
 public:
  Relation() : backing_(Backing::FromRows({})) {}
  explicit Relation(RelationSchema schema)
      : schema_(std::move(schema)), backing_(Backing::FromRows({})) {}
  Relation(RelationSchema schema, std::vector<Row> rows)
      : schema_(std::move(schema)),
        backing_(Backing::FromRows(std::move(rows))) {}

  /// A relation backed purely by an encoded columnar form; rows
  /// materialize lazily on first row-wise access. `schema` arity must
  /// match the encoding (the relation's schema governs name lookup —
  /// it may be a renamed view of the encoding's schema).
  static Relation FromColumnar(RelationSchema schema,
                               columnar::ColumnarRelationPtr encoded);

  const RelationSchema& schema() const { return schema_; }

  /// Row-major view; materializes from the columnar backing on first
  /// call. The reference stays valid for the lifetime of the backing
  /// (shared by all copies of this relation).
  const std::vector<Row>& rows() const {
    const std::vector<Row>* p =
        backing_->rows_view.load(std::memory_order_acquire);
    return p != nullptr ? *p : MaterializeRowsSlow();
  }

  size_t num_rows() const {
    const std::vector<Row>* p =
        backing_->rows_view.load(std::memory_order_acquire);
    if (p != nullptr) return p->size();
    return backing_->columnar_view.load(std::memory_order_acquire)
        ->num_rows();
  }
  bool empty() const { return num_rows() == 0; }

  /// The compressed encoding, building it from rows on first call
  /// (shared by all copies; survives WithSchema renames). Returns null
  /// only for zero-column schemas, which the encoding cannot represent.
  columnar::ColumnarRelationPtr Columnar() const;

  /// The encoding if (and only if) one is already cached — never
  /// triggers an encode, so intermediate results stay row-only. The
  /// pointer stays valid for the lifetime of the backing.
  const columnar::ColumnarRelation* ColumnarIfEncoded() const {
    return backing_->columnar_view.load(std::memory_order_acquire);
  }

  /// Appends a row; fails if the arity does not match the schema.
  /// Copies shared storage first if needed (copy-on-write) and drops
  /// any cached columnar encoding (it no longer describes the rows).
  Status AddRow(Row row);

  /// Appends a batch of rows after validating every arity, paying the
  /// copy-on-write / encoding-invalidation cost of MutableRows() once
  /// for the whole batch instead of once per row. Nothing is appended
  /// if any row fails validation.
  Status AddRows(std::vector<Row> rows);

  /// Reserves row storage.
  void Reserve(size_t n) { MutableRows()->reserve(n); }

  /// The rows selected by `sel` (indices ascending, from a
  /// Column::EvalPredicate scan), in order. Reads row storage when
  /// materialized, otherwise decodes straight from the encoding.
  Relation Gather(const columnar::SelectionVector& sel) const;

  /// Same rows under a different schema (column rename). O(1) in rows;
  /// shares backing, including any columnar encoding.
  Result<Relation> WithSchema(RelationSchema schema) const;

  /// Relation with duplicate rows removed (order of first occurrence).
  Relation Distinct() const;

  /// Rows projected to the given columns (resolvable names), duplicates
  /// preserved.
  Result<Relation> Project(const std::vector<std::string>& names) const;

  /// Cartesian product with `other`.
  Result<Relation> Product(const Relation& other) const;

  /// Approximate in-memory footprint in bytes (used for |D| sizing).
  /// Counts the row-format (logical) size whichever backing is live.
  size_t ApproxBytes() const;

  /// Multi-line debug rendering, capped at `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  /// The shared storage cell. At least one of {rows, columnar} is
  /// non-null at all times; the missing form is derived lazily under
  /// `mu` and published through the corresponding *_view atomic (the
  /// store-release / load-acquire pair orders the fill before any
  /// reader's use). Copies of a Relation share one Backing; writers
  /// replace the whole Backing (copy-on-write), never mutate a shared
  /// one.
  struct Backing {
    std::mutex mu;
    std::shared_ptr<std::vector<Row>> rows;
    columnar::ColumnarRelationPtr columnar;
    std::atomic<const std::vector<Row>*> rows_view{nullptr};
    std::atomic<const columnar::ColumnarRelation*> columnar_view{nullptr};

    static std::shared_ptr<Backing> FromRows(std::vector<Row> r);
    static std::shared_ptr<Backing> FromColumnar(
        columnar::ColumnarRelationPtr c);
  };

  const std::vector<Row>& MaterializeRowsSlow() const;
  std::vector<Row>* MutableRows();

  RelationSchema schema_;
  std::shared_ptr<Backing> backing_;
};

using RelationPtr = std::shared_ptr<const Relation>;

/// Approximate in-memory footprint of one row (the per-row unit behind
/// Relation::ApproxBytes; also used to weigh cached answer sets).
size_t ApproxRowBytes(const Row& row);

/// Hash of a full row, consistent with row equality via Value::operator==.
size_t HashRow(const Row& row);

/// Row equality via Value::operator==.
bool RowsEqual(const Row& a, const Row& b);

/// Deterministic total order over rows (for stable output).
bool RowLess(const Row& a, const Row& b);

}  // namespace relational
}  // namespace urm
