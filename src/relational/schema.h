#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

/// \file schema.h
/// Relation schemas. Column names are *qualified* as
/// "<instance>.<attribute>" (e.g. "customer.c_phone", or "po1.telephone"
/// for an aliased self-join instance); unqualified lookup succeeds when
/// the attribute part is unambiguous.

namespace urm {
namespace relational {

/// A named, typed column.
struct ColumnDef {
  std::string name;  ///< qualified "<instance>.<attribute>"
  ValueType type = ValueType::kString;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// Returns the attribute part of a qualified name ("a.b" -> "b").
std::string AttributePart(const std::string& qualified);
/// Returns the instance part ("a.b" -> "a"; "" when unqualified).
std::string InstancePart(const std::string& qualified);

/// \brief Ordered list of columns describing a relation's shape.
class RelationSchema {
 public:
  RelationSchema() = default;
  explicit RelationSchema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of a column. Accepts a fully-qualified name, or an
  /// unqualified attribute name when exactly one column matches.
  /// Returns nullopt when absent or ambiguous.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// True iff every name in `names` resolves.
  bool ContainsAll(const std::vector<std::string>& names) const;

  /// Appends a column; fails on duplicate qualified name.
  Status AddColumn(ColumnDef column);

  /// Schema of `this` concatenated with `other` (Cartesian product shape).
  /// Fails on qualified-name collision.
  Result<RelationSchema> Concat(const RelationSchema& other) const;

  /// Schema restricted to the given (resolvable) columns, in order.
  Result<RelationSchema> Select(const std::vector<std::string>& names) const;

  bool operator==(const RelationSchema& other) const {
    return columns_ == other.columns_;
  }

  /// e.g. "(customer.c_name:STRING, customer.c_phone:STRING)"
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace relational
}  // namespace urm
