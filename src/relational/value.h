#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

/// \file value.h
/// Dynamically-typed cell values for the in-memory relational engine.

namespace urm {
namespace relational {

/// Column/value type tags.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// \brief A single cell: NULL, 64-bit integer, double, or string.
///
/// Ordering is defined within numeric types (int64 and double compare
/// numerically with each other) and within strings; NULL compares less
/// than everything and equal to itself (total order, used for sorting
/// and grouping — predicate evaluation treats NULL comparisons as false,
/// see Predicate::Matches).
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  /// Implicit constructors keep call sites (tests, generators) readable.
  Value(int64_t v) : repr_(v) {}            // NOLINT(runtime/explicit)
  Value(int v) : repr_(int64_t{v}) {}       // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(repr_);
  }
  ValueType type() const;

  /// Typed accessors; check-fail on type mismatch.
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: int64 or double as double. Check-fails otherwise.
  double NumericValue() const;

  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  }

  /// SQL-ish equality: numerics compare numerically across int/double;
  /// NULL == NULL is true under this total order (grouping semantics).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order used for deterministic output sorting.
  bool operator<(const Value& other) const;

  /// Stable hash consistent with operator== (used for dedup/grouping).
  size_t Hash() const;

  /// Display form: NULL renders as "NULL"; strings unquoted.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// One tuple, row-major. Lives here (not relation.h) so the columnar
/// layer can speak rows without depending on Relation.
using Row = std::vector<Value>;

/// Approximate in-memory footprint of one cell: 8 bytes plus the
/// string payload. The per-cell unit behind ApproxRowBytes and the
/// columnar logical-bytes accounting.
size_t ApproxValueBytes(const Value& v);

}  // namespace relational
}  // namespace urm
