#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/delta.h"
#include "relational/relation.h"

/// \file catalog.h
/// The source instance `D`: a named collection of materialized relations.

namespace urm {
namespace relational {

/// \brief Named relation store; the paper's source instance `D`.
///
/// Relation names are the *source relation* names ("customer", "orders",
/// ...). Instanced/aliased access (e.g. two copies for a self-join) is
/// handled above this layer by renaming columns, not here.
///
/// Thread safety: the name->relation map is guarded by a shared mutex,
/// so runtime Register/Put are safe against concurrent readers
/// (Get/Storage/stats run from request, metric-scrape, and /v1/stats
/// threads). Relation contents themselves follow Relation's own
/// copy-on-write / lazy-encoding rules.
class Catalog {
 public:
  Catalog() = default;

  // Copyable (shallow: the map holds shared_ptrs to immutable
  // relations) and movable — the mutex stays put; only the contents
  // transfer. Copies/moves happen at engine assembly time, but lock
  // the source anyway so the guarantees hold everywhere.
  Catalog(const Catalog& other) {
    std::shared_lock<std::shared_mutex> lock(other.mu_);
    relations_ = other.relations_;
    auto_encode_ = other.auto_encode_;
    data_epoch_.store(other.data_epoch_.load(std::memory_order_acquire),
                      std::memory_order_release);
  }
  Catalog& operator=(const Catalog& other) {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      relations_ = other.relations_;
      auto_encode_ = other.auto_encode_;
      data_epoch_.store(other.data_epoch_.load(std::memory_order_acquire),
                        std::memory_order_release);
    }
    return *this;
  }
  Catalog(Catalog&& other) noexcept {
    std::unique_lock<std::shared_mutex> lock(other.mu_);
    relations_ = std::move(other.relations_);
    auto_encode_ = other.auto_encode_;
    data_epoch_.store(other.data_epoch_.load(std::memory_order_acquire),
                      std::memory_order_release);
  }
  Catalog& operator=(Catalog&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      relations_ = std::move(other.relations_);
      auto_encode_ = other.auto_encode_;
      data_epoch_.store(other.data_epoch_.load(std::memory_order_acquire),
                        std::memory_order_release);
    }
    return *this;
  }

  /// Aggregate compressed-storage footprint of the catalog (see
  /// docs/STORAGE.md). Only relations with a live encoding contribute;
  /// `columns_*` count encoded columns per codec.
  struct StorageStats {
    size_t encoded_relations = 0;
    size_t encoded_bytes = 0;
    size_t logical_bytes = 0;
    size_t columns_plain = 0;
    size_t columns_delta = 0;
    size_t columns_rle = 0;
    size_t columns_dictionary = 0;
  };

  /// Registers a relation. Fails if the name is taken. Encodes the
  /// relation's columnar backing eagerly unless auto-encode is off.
  Status Register(const std::string& name, RelationPtr relation);

  /// Replaces or inserts a relation (same auto-encode behavior).
  void Put(const std::string& name, RelationPtr relation);

  /// Controls eager columnar encoding on Register/Put (default on).
  /// Turning it off yields a pure row-backend catalog — the control
  /// arm of the columnar-vs-row bit-identity tests.
  void set_auto_encode(bool on) { auto_encode_ = on; }
  bool auto_encode() const { return auto_encode_; }

  /// Applies one delta batch atomically (see delta.h). Three phases:
  /// validate every op against the current snapshot (unknown relation
  /// -> NotFound, arity mismatch -> InvalidArgument; nothing applied
  /// on any failure), rebuild the touched relations outside the
  /// catalog locks — re-encoding the columnar backing ONCE per
  /// relation per batch when auto-encode is on — then swap all
  /// replaced pointers under one exclusive lock and advance the data
  /// epoch. Concurrent ApplyDelta calls serialize on `delta_mu_`;
  /// readers (Get / copies) see either the full old or full new state.
  ///
  /// Update/delete ops affect EVERY row equal to `op.row` (relations
  /// have no key constraint); ops apply in batch order per relation.
  Result<ApplyResult> ApplyDelta(const DeltaBatch& batch);

  /// Monotonic counter bumped after each applied delta batch; a
  /// catalog copy inherits the source's epoch.
  uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }

  /// Storage footprint over all currently-encoded relations.
  StorageStats Storage() const;

  /// Looks up a relation by name.
  Result<RelationPtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return relations_.count(name) > 0;
  }

  /// Sorted list of registered relation names.
  std::vector<std::string> Names() const;

  /// Total approximate size of all relations in bytes.
  size_t ApproxBytes() const;

  /// Total number of tuples across relations.
  size_t TotalRows() const;

 private:
  mutable std::shared_mutex mu_;  ///< guards relations_
  /// Serializes ApplyDelta callers (rebuilds run outside mu_, so two
  /// concurrent batches would otherwise both rebuild from the same
  /// snapshot and lose one batch's ops on swap).
  std::mutex delta_mu_;
  std::map<std::string, RelationPtr> relations_;
  bool auto_encode_ = true;
  std::atomic<uint64_t> data_epoch_{0};
};

}  // namespace relational
}  // namespace urm
