#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

/// \file catalog.h
/// The source instance `D`: a named collection of materialized relations.

namespace urm {
namespace relational {

/// \brief Named relation store; the paper's source instance `D`.
///
/// Relation names are the *source relation* names ("customer", "orders",
/// ...). Instanced/aliased access (e.g. two copies for a self-join) is
/// handled above this layer by renaming columns, not here.
class Catalog {
 public:
  /// Registers a relation. Fails if the name is taken.
  Status Register(const std::string& name, RelationPtr relation);

  /// Replaces or inserts a relation.
  void Put(const std::string& name, RelationPtr relation);

  /// Looks up a relation by name.
  Result<RelationPtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Sorted list of registered relation names.
  std::vector<std::string> Names() const;

  /// Total approximate size of all relations in bytes.
  size_t ApproxBytes() const;

  /// Total number of tuples across relations.
  size_t TotalRows() const;

 private:
  std::map<std::string, RelationPtr> relations_;
};

}  // namespace relational
}  // namespace urm
