#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"

/// \file delta.h
/// Row-level deltas against catalog relations: the batch descriptor
/// (DeltaBatch) consumed by Catalog::ApplyDelta and the receipt
/// (ApplyResult) the serving tier uses to fence caches.
///
/// A batch is the atomicity unit: either every op validates and the
/// touched relations are swapped together under one catalog lock, or
/// nothing is applied. Rebuild + re-encode happen outside the catalog
/// locks, so readers keep serving the old snapshot for the whole
/// (potentially expensive) encode; the swap itself is pointer-sized.

namespace urm {
namespace relational {

enum class DeltaOpKind { kInsert, kUpdate, kDelete };

const char* DeltaOpKindName(DeltaOpKind kind);

/// One row-level operation. `row` is the full row to insert, or the
/// match image for update/delete (all rows equal to it are affected —
/// relations carry no key constraint, so value equality is identity).
/// `new_row` is the replacement image, update only.
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kInsert;
  std::string relation;
  Row row;
  Row new_row;
};

/// An ordered batch of operations, possibly spanning relations. Ops
/// apply in batch order within each relation.
struct DeltaBatch {
  std::vector<DeltaOp> ops;
};

/// Receipt of one applied batch: the catalog data epoch after the
/// swap, which relations changed (names + the *replaced* relation
/// pointers, for pointer-keyed operator-store fencing), per-kind row
/// counts, and the time spent re-encoding columnar backings.
struct ApplyResult {
  uint64_t data_epoch = 0;
  std::vector<std::string> relations;
  std::vector<RelationPtr> replaced;
  size_t rows_inserted = 0;
  size_t rows_updated = 0;
  size_t rows_deleted = 0;
  double encode_seconds = 0.0;
};

}  // namespace relational
}  // namespace urm
