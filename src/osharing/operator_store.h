#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "common/hash_util.h"
#include "common/sharded_map.h"
#include "common/status.h"
#include "relational/relation.h"

/// \file operator_store.h
/// The cross-evaluation operator memo the paper's §IX asks for ("data
/// structures to facilitate o-sharing evaluation"), lifted out of a
/// single OSharingEngine: a concurrent, sharded, byte-budgeted store of
/// materialized selection results and aliased base-relation scans.
///
/// One store instance is shared by
///   * every engine clone inside one parallel u-trace (RunParallel
///     branches reuse each other's selections instead of redoing work
///     the sequential trace would have memoized), and
///   * every concurrent query evaluated by a QueryService over the same
///     engine — overlapping queries share materialized operators.
///
/// Lookups are single-flight: when two branches need the same selection
/// at the same time, one computes it and the other waits for that
/// result instead of duplicating the work.
///
/// Keys carry the catalog identity and the engine's mapping epoch —
/// plus a shard-local epoch component when the evaluation runs over one
/// shard of a sharded mapping set (see OperatorKey::shard_epoch);
/// FenceEpoch drops every entry when the global epoch advances
/// (UseTopMappings reconfigurations), so a stale materialization can
/// never be returned, whether it was keyed whole-set or shard-local.
/// Entries pin their input relation (pointer-identity keys stay valid —
/// an input address cannot be recycled while an entry references it)
/// and are evicted LRU per shard once the byte budget is exceeded —
/// except the entry just inserted, so an operator larger than a shard's
/// budget still serves repeats (the budget overruns by at most one
/// entry per shard; the AnswerCache makes the same trade).

namespace urm {
namespace osharing {

struct OperatorStoreOptions {
  /// Total byte budget across shards, counting each entry's result
  /// relation plus the input relation it pins; enforced per shard at
  /// max_bytes / num_shards.
  size_t max_bytes = 256ull << 20;
  /// Concurrency shards (rounded up to a power of two).
  size_t num_shards = 16;
};

/// Monotonic counters plus a point-in-time size snapshot.
struct OperatorStoreStats {
  size_t hits = 0;                ///< served from the store
  /// Computed fresh — and inserted, unless an op_hash collision forced
  /// an uncached compute.
  size_t misses = 0;
  size_t evictions = 0;           ///< dropped by the byte budget
  size_t single_flight_waits = 0; ///< hits that waited on an in-flight compute
  size_t bytes_reused = 0;        ///< result bytes served instead of recomputed
  /// FenceEpoch calls that actually advanced the epoch and cleared the
  /// store (mapping-set reconfigurations observed by this store).
  size_t epoch_fences = 0;
  /// Entries dropped by FenceRelations (delta-aware invalidation).
  size_t relation_fenced = 0;
  size_t entries = 0;             ///< current entries (snapshot)
  /// Current budget-weighted bytes (results + pinned inputs; snapshot).
  size_t bytes = 0;
};

/// Identity of one materialized operator evaluation.
struct OperatorKey {
  const void* catalog = nullptr;  ///< owning catalog (store may be shared)
  uint64_t epoch = 0;             ///< Engine::mapping_epoch at evaluation
  /// Shard-local epoch component: 0 for whole-set evaluations; the
  /// owning shard's identity hash (mapping::MappingShard::hash) for
  /// sharded ones. The global `epoch` stays monotonic — it alone
  /// drives FenceEpoch — while this field partitions the key space per
  /// shard: one shard's materializations are distinct from its
  /// siblings' (each shard's store slice is self-contained, the layout
  /// a distributed deployment needs to place one shard per node), yet
  /// repeated sharded queries in the same epoch still reuse them,
  /// because a shard's hash is stable for a given source set and shard
  /// count.
  uint64_t shard_epoch = 0;
  /// Input relation identity for selections (entries pin the pointee);
  /// null for base-relation scans.
  const void* input = nullptr;
  /// Hash of the rendered operator (predicate rendering, or scan
  /// relation + alias); the rendering itself is re-verified on hits.
  uint64_t op_hash = 0;

  bool operator==(const OperatorKey& other) const {
    return catalog == other.catalog && epoch == other.epoch &&
           shard_epoch == other.shard_epoch && input == other.input &&
           op_hash == other.op_hash;
  }
};

struct OperatorKeyHash {
  size_t operator()(const OperatorKey& key) const {
    size_t seed = static_cast<size_t>(key.op_hash);
    HashCombine(seed, std::hash<const void*>{}(key.catalog));
    HashCombine(seed, static_cast<size_t>(key.epoch));
    HashCombine(seed, static_cast<size_t>(key.shard_epoch));
    HashCombine(seed, std::hash<const void*>{}(key.input));
    return seed;
  }
};

/// \brief Concurrent cross-query memo of materialized operators.
///
/// Thread-safety: all members may be called concurrently. GetOrCompute
/// runs `compute` outside any shard lock, so computations may nest
/// (a selection's compute may itself fetch its input scan from the
/// store) and never block unrelated lookups.
class OperatorStore {
 public:
  using Compute = std::function<Result<relational::RelationPtr>()>;

  explicit OperatorStore(OperatorStoreOptions options = OperatorStoreOptions());

  /// Drops every entry when `epoch` advances past the last fenced
  /// epoch (forward only: a worker holding a stale epoch cannot clear
  /// entries valid under a newer one). The serving tier calls this
  /// with Engine::mapping_epoch before each evaluation; between
  /// reconfigurations it is a single atomic load.
  void FenceEpoch(uint64_t epoch);

  /// Delta-aware invalidation: drops every entry whose key.input is
  /// one of `replaced` (the relation pointers a Catalog::ApplyDelta
  /// swapped out — see relational::ApplyResult::replaced) and returns
  /// how many were dropped. Entries over other relations survive, so a
  /// single-relation update trickle does not zero the store. Scan
  /// entries key on their base catalog relation; downstream selection
  /// entries chain off the scan's result pointer and simply become
  /// unreachable (new scans produce new pointers), aging out by LRU.
  size_t FenceRelations(
      const std::vector<const relational::Relation*>& replaced);

  /// Returns the memoized result for `key`, or runs `compute` exactly
  /// once across all concurrent callers of the same key and memoizes
  /// its result. `op_render` is the rendered operator description,
  /// verified on hits so a 64-bit op_hash collision degrades to an
  /// uncached recompute, never a wrong result. `pinned_input` (may be
  /// null for scans) is kept alive while the entry lives. `shared`, if
  /// non-null, is set to whether the result came from the store rather
  /// than this caller's own compute; `result_bytes`, if non-null, to
  /// the result's ApproxBytes — measured once per entry, so hot-path
  /// hits never rescan the relation to account savings. Failed
  /// computes are not cached.
  Result<relational::RelationPtr> GetOrCompute(
      const OperatorKey& key, const std::string& op_render,
      relational::RelationPtr pinned_input, const Compute& compute,
      bool* shared = nullptr, size_t* result_bytes = nullptr);

  OperatorStoreStats stats() const;

  void Clear();

  const OperatorStoreOptions& options() const { return options_; }

 private:
  /// One memoized evaluation. `future` is valid from insertion (so
  /// concurrent callers can wait on it); the remaining fields are
  /// maintained under the shard lock once the compute finishes.
  struct Entry {
    std::string op_render;
    relational::RelationPtr pinned_input;
    std::shared_future<Result<relational::RelationPtr>> future;
    bool ready = false;
    /// Budget weight: result bytes plus the pinned input's bytes —
    /// the retained-memory bound must count what the entry keeps
    /// alive, or zero-selectivity selections over large per-query
    /// intermediates would pin unbounded memory at ~zero weight. A
    /// shared input is deliberately counted by each entry that pins
    /// it: charging it once would stop counting it the moment the
    /// charging entry is evicted while dependents still pin it,
    /// letting retained memory exceed max_bytes unboundedly. The
    /// conservative N-times charge can only over-evict, never
    /// over-retain.
    size_t bytes = 0;
    size_t result_bytes = 0;  ///< reuse accounting (hit stats)
    std::list<OperatorKey>::iterator lru_it;
  };

  struct ShardState {
    std::list<OperatorKey> lru;  ///< front = most recently used; ready only
    size_t bytes = 0;
  };

  using Shards = ShardedMap<OperatorKey, std::shared_ptr<Entry>,
                            OperatorKeyHash, ShardState>;

  OperatorStoreOptions options_;
  Shards shards_;
  size_t per_shard_budget_ = 0;
  std::atomic<uint64_t> fenced_epoch_{0};
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> single_flight_waits_{0};
  std::atomic<size_t> bytes_reused_{0};
  std::atomic<size_t> epoch_fences_{0};
  std::atomic<size_t> relation_fenced_{0};
};

/// Stable hash of a rendered operator description (hash_util's FNV-1a);
/// the canonical op_hash for OperatorKey.
inline uint64_t HashOperatorRender(const std::string& render) {
  return Fnv1a(render);
}

}  // namespace osharing
}  // namespace urm
