#include "osharing/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "algebra/plan.h"
#include "common/logging.h"
#include "relational/schema.h"

namespace urm {
namespace osharing {

using algebra::MakeProduct;
using algebra::MakeRelationLeaf;
using algebra::MakeSelect;
using baselines::WeightedMapping;
using reformulation::kUnanswerableSignature;
using reformulation::SignatureSlot;
using relational::AttributePart;
using relational::InstancePart;
using relational::Relation;
using relational::RelationPtr;
using relational::Row;

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRandom:
      return "Random";
    case StrategyKind::kSNF:
      return "SNF";
    case StrategyKind::kSEF:
      return "SEF";
  }
  return "?";
}

namespace {

bool InstanceTouched(const EUnit& u, const std::string& alias) {
  const Group* g = u.GroupOfInstance(alias);
  if (g == nullptr) return false;
  std::string prefix = alias + "$";
  for (const auto& f : g->factors) {
    for (const auto& a : f.scan_aliases) {
      if (a.rfind(prefix, 0) == 0) return true;
    }
  }
  return false;
}

/// Factor index inside `group` whose relation contains `column`.
int FactorOfColumn(const Group& group, const std::string& column) {
  for (size_t i = 0; i < group.factors.size(); ++i) {
    if (group.factors[i].rel->schema().IndexOf(column).has_value()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

OSharingEngine::OSharingEngine(const reformulation::TargetQueryInfo& info,
                               const relational::Catalog& catalog,
                               OSharingOptions options)
    : info_(info),
      catalog_(catalog),
      options_(options),
      rng_(options.random_seed) {}

Status OSharingEngine::Init() {
  auto shape = DecomposeQuery(info_);
  if (!shape.ok()) return shape.status();
  shape_ = std::move(shape).ValueOrDie();
  return Status::OK();
}

EUnit OSharingEngine::MakeRoot(
    const std::vector<WeightedMapping>& reps) const {
  EUnit root;
  for (size_t i = 0; i < shape_.selections.size(); ++i) {
    root.pending_selections.push_back(i);
  }
  for (size_t i = 0; i < shape_.products.size(); ++i) {
    root.pending_products.push_back(i);
  }
  root.next_top = 0;
  for (const auto& inst : info_.instances) {
    Group g;
    g.instances.push_back(inst.alias);
    root.groups.push_back(std::move(g));
  }
  for (const auto& wm : reps) {
    root.mappings.push_back(&wm);
    root.probability += wm.probability;
  }
  return root;
}

Status OSharingEngine::Run(const std::vector<WeightedMapping>& reps,
                           LeafVisitor* visitor) {
  URM_CHECK(visitor != nullptr);
  selection_cache_.clear();
  scan_cache_.clear();
  if (reps.empty()) return Status::OK();
  EUnit root = MakeRoot(reps);
  auto done = RunEUnit(root, visitor);
  if (!done.ok()) return done.status();
  return Status::OK();
}

/// Buffers leaf outcomes for deferred in-order replay (never aborts).
/// Owned leaves are moved in, and the replay loop moves them out
/// again, so buffering adds no row copies over the sequential path.
class OSharingEngine::BufferingVisitor : public LeafVisitor {
 public:
  struct Leaf {
    std::vector<Row> rows;
    double probability = 0.0;
  };

  bool OnLeaf(const std::vector<Row>& rows, double probability) override {
    leaves_.push_back(Leaf{rows, probability});
    return true;
  }

  bool OnLeafOwned(std::vector<Row>&& rows, double probability) override {
    leaves_.push_back(Leaf{std::move(rows), probability});
    return true;
  }

  std::vector<Leaf>& leaves() { return leaves_; }

 private:
  std::vector<Leaf> leaves_;
};

Status OSharingEngine::RunParallel(const std::vector<WeightedMapping>& reps,
                                   LeafVisitor* visitor, ThreadPool* pool) {
  URM_CHECK(visitor != nullptr);
  URM_CHECK(pool != nullptr);
  selection_cache_.clear();
  scan_cache_.clear();
  if (reps.empty()) return Status::OK();
  EUnit root = MakeRoot(reps);

  // Traces with no fan-out (fully executed, or a single pending top)
  // gain nothing from the pool; run them sequentially.
  if (root.pending_selections.empty() && root.pending_products.empty() &&
      root.next_top >= shape_.tops.size()) {
    auto done = RunEUnit(root, visitor);
    if (!done.ok()) return done.status();
    return Status::OK();
  }

  // Without a serving-tier store, scope one to this evaluation so
  // sibling branches share materializations the sequential trace
  // would have memoized (they previously redid them in private
  // caches). Restored on every exit path: the scoped store dies with
  // this call.
  std::unique_ptr<OperatorStore> scoped_store;
  struct StoreGuard {
    OSharingOptions* options;
    OperatorStore* previous;
    ~StoreGuard() { options->store = previous; }
  } guard{&options_, options_.store};
  if (options_.store == nullptr && options_.enable_operator_cache) {
    OperatorStoreOptions store_options;
    store_options.num_shards = 8;
    scoped_store = std::make_unique<OperatorStore>(store_options);
    options_.store = scoped_store.get();
  }

  BufferingVisitor buffer;
  const size_t leaves_before = leaves_;
  URM_RETURN_NOT_OK(RunSubtreeParallel(root, 0, pool, &buffer));
  // leaves_ keeps the sequential contract — leaves *delivered* to the
  // visitor — so rewind the production counting done while buffering:
  // an abort mid-replay must not over-report by the discarded tail.
  leaves_ = leaves_before;
  for (auto& leaf : buffer.leaves()) {
    leaves_++;
    if (!visitor->OnLeafOwned(std::move(leaf.rows), leaf.probability)) {
      return Status::OK();
    }
  }
  return Status::OK();
}

Status OSharingEngine::RunSubtreeParallel(const EUnit& u, int depth,
                                          ThreadPool* pool,
                                          BufferingVisitor* out) {
  auto leaf = EmitTerminalLeaf(u, out);
  if (!leaf.ok()) return leaf.status();
  if (leaf.ValueOrDie().has_value()) return Status::OK();

  // Case 3: pick as the sequential trace would, then decide whether
  // this node's partitions are worth fanning out.
  std::vector<OpPartition> partitions;
  auto op = PickOperator(u, &partitions);
  if (!op.ok()) return op.status();

  size_t remaining_ops = u.pending_selections.size() +
                         u.pending_products.size() +
                         (shape_.tops.size() - u.next_top);
  bool fan = depth < options_.max_parallel_depth && partitions.size() > 1 &&
             u.mappings.size() * remaining_ops >= options_.parallel_grain;

  if (!fan) {
    for (const auto& p : partitions) {
      if (p.unanswerable) {
        leaves_++;
        out->OnLeaf({}, p.probability);
        continue;
      }
      auto child = Execute(u, op.ValueOrDie(), p);
      if (!child.ok()) return child.status();
      if (partitions.size() == 1) {
        // A single-partition operator is a pass-through: keep looking
        // for a fan-out point deeper down without consuming depth.
        URM_RETURN_NOT_OK(
            RunSubtreeParallel(child.ValueOrDie(), depth, pool, out));
      } else {
        // Below the depth/grain cutoff: the whole subtree runs
        // sequentially on this engine (RunEUnit counts its leaves; a
        // buffer never aborts).
        auto cont = RunEUnit(child.ValueOrDie(), out);
        if (!cont.ok()) return cont.status();
      }
    }
    return Status::OK();
  }

  struct Branch {
    Status status;
    BufferingVisitor buffer;
    algebra::EvalStats stats;
    size_t leaves = 0;
  };
  std::vector<Branch> branches(partitions.size());
  pool->ParallelFor(partitions.size(), [&](size_t i) {
    const OpPartition& p = partitions[i];
    Branch& branch = branches[i];
    if (p.unanswerable) {
      branch.buffer.OnLeaf({}, p.probability);
      branch.leaves = 1;
      return;
    }
    // Each branch runs in its own engine clone: private L1 caches and
    // stats, decorrelated rng for the Random strategy — but the same
    // shared OperatorStore, so branches reuse each other's
    // materialized selections and scans. The parent e-unit and the
    // representative mappings are shared read-only.
    OSharingOptions sub_options = options_;
    sub_options.tee = nullptr;  // leaves stream at replay, in order
    // Mix depth and branch index into the reseed (an additive offset
    // collides across recursion levels: parent i=2 and branch i=0's
    // depth-1 child j=1 would draw identical streams).
    size_t reseed = static_cast<size_t>(options_.random_seed);
    HashCombine(reseed, static_cast<size_t>(depth + 1));
    HashCombine(reseed, i + 1);
    sub_options.random_seed = reseed;
    OSharingEngine sub(info_, catalog_, sub_options);
    sub.shape_ = shape_;
    auto child = sub.Execute(u, op.ValueOrDie(), p);
    if (!child.ok()) {
      branch.status = child.status();
      return;
    }
    branch.status =
        sub.RunSubtreeParallel(child.ValueOrDie(), depth + 1, pool,
                               &branch.buffer);
    branch.stats = sub.stats_;
    branch.leaves = sub.leaves_;
  });

  for (Branch& branch : branches) {
    URM_RETURN_NOT_OK(branch.status);
    stats_ += branch.stats;
    leaves_ += branch.leaves;
    for (auto& leaf : branch.buffer.leaves()) {
      out->OnLeafOwned(std::move(leaf.rows), leaf.probability);
    }
  }
  return Status::OK();
}

Result<relational::RelationPtr> OSharingEngine::RunSelection(
    const RelationPtr& input, const algebra::Predicate& pred) {
  // The store is part of the operator-cache feature: with the feature
  // ablated it is not consulted (and the cache counters stay zero),
  // even when a serving tier wired one in.
  const bool use_l1 = options_.enable_operator_cache;
  const bool use_store = options_.store != nullptr && use_l1;
  SelectionKey key;
  if (use_l1 || use_store) {
    // Structural hash — the memo hot path neither renders nor
    // string-compares the predicate; candidate hits are verified with
    // Predicate::operator==.
    key = SelectionKey{static_cast<const void*>(input.get()),
                       pred.CacheHash()};
  }
  if (use_l1) {
    auto it = selection_cache_.find(key);
    if (it != selection_cache_.end() && it->second.pred == pred) {
      stats_.cache_hits++;
      stats_.cache_bytes_saved += it->second.bytes;
      return it->second.rel;
    }
  }

  auto compute = [&]() -> Result<RelationPtr> {
    algebra::EvalContext ctx;
    ctx.catalog = &catalog_;
    ctx.stats = &stats_;
    return algebra::Evaluate(MakeSelect(MakeRelationLeaf(input, "f"), pred),
                             ctx);
  };

  if (use_store) {
    // Selections over per-query intermediates (post factor-fusion
    // relations) land here too: unhittable across queries, but sibling
    // branches of one parallel u-trace share the fused pointer and do
    // reuse them — suppressing the insert would regress cross-branch
    // sharing, and cold entries age out through the LRU anyway.
    OperatorKey store_key;
    // Keyed purely by input identity (the pinned input pointer cannot
    // recycle while its entry lives) — never by catalog address: the
    // engine's catalog is a per-evaluation snapshot whose stack/heap
    // address means nothing across queries. A delta replacing a
    // relation changes the downstream input pointers, so stale entries
    // are unreachable by construction.
    store_key.catalog = nullptr;
    store_key.epoch = options_.store_epoch;
    store_key.shard_epoch = options_.store_shard_epoch;
    store_key.input = input.get();
    store_key.op_hash = key.pred_hash;
    bool shared = false;
    size_t bytes = 0;
    // Rendered only here — once per private-memo miss, never on the
    // hot path — for the store's cross-engine hit verification.
    auto rel = options_.store->GetOrCompute(store_key, pred.ToString(),
                                            input, compute, &shared, &bytes);
    if (!rel.ok()) return rel;
    RecordStoreOutcome(shared, bytes);
    if (use_l1) {
      selection_cache_[key] = CachedSelection{pred, rel.ValueOrDie(), bytes};
    }
    return rel;
  }

  auto rel = compute();
  if (!rel.ok()) return rel;
  if (use_l1) {
    stats_.cache_misses++;
    selection_cache_[key] = CachedSelection{
        pred, rel.ValueOrDie(), rel.ValueOrDie()->ApproxBytes()};
  }
  return rel;
}

Result<RelationPtr> OSharingEngine::MaterializeScan(
    const std::string& relation, const std::string& scan_alias) {
  auto it = scan_cache_.find(scan_alias);
  if (it != scan_cache_.end()) {
    // The scan memo itself always runs, but its reuse is reported
    // through the cache counters only when the operator-cache feature
    // is on — enable_operator_cache=false must keep them at zero (the
    // ablation contract, see OperatorCacheDoesNotChangeAnswers).
    if (options_.enable_operator_cache) {
      stats_.cache_hits++;
      stats_.cache_bytes_saved += it->second.bytes;
    }
    return it->second.rel;
  }

  auto compute = [&]() -> Result<RelationPtr> {
    algebra::EvalContext ctx;
    ctx.catalog = &catalog_;
    ctx.stats = &stats_;
    return algebra::Evaluate(algebra::MakeScan(relation, scan_alias), ctx);
  };

  if (options_.store != nullptr && options_.enable_operator_cache) {
    // Scans share cross-query through the store too — and because a
    // store hit returns the *same* RelationPtr every query saw, the
    // downstream selection keys (input pointer + predicate hash) also
    // match across queries, compounding the sharing.
    //
    // The key carries the *base catalog relation's* identity (pointer,
    // pinned by the entry), not the catalog's address: catalogs are
    // per-evaluation snapshots sharing RelationPtrs, so an unchanged
    // relation hits across snapshots while a delta-replaced one
    // misses — and FenceRelations reclaims the replaced entries.
    auto base = catalog_.Get(relation);
    if (!base.ok()) return base.status();
    std::string render = "scan|" + relation + "|" + scan_alias;
    OperatorKey store_key;
    store_key.catalog = nullptr;
    store_key.epoch = options_.store_epoch;
    store_key.shard_epoch = options_.store_shard_epoch;
    store_key.input = base.ValueOrDie().get();
    store_key.op_hash = HashOperatorRender(render);
    bool shared = false;
    size_t bytes = 0;
    auto rel = options_.store->GetOrCompute(store_key, render,
                                            base.ValueOrDie(), compute,
                                            &shared, &bytes);
    if (!rel.ok()) return rel;
    RecordStoreOutcome(shared, bytes);
    scan_cache_.emplace(scan_alias, CachedScan{rel.ValueOrDie(), bytes});
    return rel;
  }

  auto rel = compute();
  if (!rel.ok()) return rel;
  if (options_.enable_operator_cache) stats_.cache_misses++;
  scan_cache_.emplace(scan_alias,
                      CachedScan{rel.ValueOrDie(),
                                 rel.ValueOrDie()->ApproxBytes()});
  return rel;
}

void OSharingEngine::RecordStoreOutcome(bool shared, size_t bytes) {
  if (shared) {
    stats_.cache_hits++;
    stats_.store_hits++;
    stats_.cache_bytes_saved += bytes;
  } else {
    stats_.cache_misses++;
  }
}

std::vector<OSharingEngine::Candidate> OSharingEngine::ComputeCandidates(
    const EUnit& u) const {
  std::vector<Candidate> out;
  // Selections whose referenced instances live in one group.
  for (size_t idx : u.pending_selections) {
    const algebra::Predicate& pred = shape_.selections[idx];
    const auto refs = pred.ReferencedAttributes();
    size_t group = u.GroupIndexOfInstance(InstancePart(refs[0]));
    bool same_group = group != static_cast<size_t>(-1);
    for (const auto& r : refs) {
      if (u.GroupIndexOfInstance(InstancePart(r)) != group) {
        same_group = false;
      }
    }
    if (!same_group) continue;
    Candidate c;
    c.kind = Candidate::kSelection;
    c.index = idx;
    for (const auto& r : refs) {
      if (u.resolved.count(r) == 0) {
        c.slots.push_back(SignatureSlot{r, true});
      }
    }
    out.push_back(std::move(c));
  }
  // Products whose sides are in different groups.
  for (size_t idx : u.pending_products) {
    const ProductOp& prod = shape_.products[idx];
    size_t gl = u.GroupIndexOfInstance(prod.left_instances[0]);
    size_t gr = u.GroupIndexOfInstance(prod.right_instances[0]);
    if (gl == gr) continue;  // already merged through another product
    Candidate c;
    c.kind = Candidate::kProduct;
    c.index = idx;
    // Reformulating the product materializes the covers of *bare*
    // untouched instances (binary Case 3); their cover attributes are
    // what the reformulation depends on.
    auto add_bare_slots = [&](const std::vector<std::string>& aliases) {
      for (const auto& alias : aliases) {
        auto inst = info_.InstanceForRef(alias + ".x");
        URM_CHECK(inst.ok());
        if (!inst.ValueOrDie()->bare || InstanceTouched(u, alias)) continue;
        for (const auto& attr : inst.ValueOrDie()->needed) {
          c.slots.push_back(SignatureSlot{alias + "." + attr, false});
        }
      }
    };
    add_bare_slots(prod.left_instances);
    add_bare_slots(prod.right_instances);
    out.push_back(std::move(c));
  }
  // The next top op once the body is finished.
  if (u.pending_selections.empty() && u.pending_products.empty() &&
      u.next_top < shape_.tops.size()) {
    const TopOp& top = shape_.tops[u.next_top];
    Candidate c;
    c.kind = Candidate::kTop;
    c.index = u.next_top;
    if (top.is_aggregate) {
      if (!top.agg_ref.empty() && u.resolved.count(top.agg_ref) == 0) {
        c.slots.push_back(SignatureSlot{top.agg_ref, true});
      }
    } else {
      for (const auto& r : top.project_refs) {
        if (u.resolved.count(r) == 0) {
          c.slots.push_back(SignatureSlot{r, true});
        }
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<OSharingEngine::OpPartition> OSharingEngine::PartitionMappings(
    const EUnit& u, const std::vector<SignatureSlot>& slots) const {
  std::vector<OpPartition> partitions;
  std::map<std::string, size_t> by_signature;
  for (const WeightedMapping* wm : u.mappings) {
    std::string sig;
    for (const auto& slot : slots) {
      auto target_attr = info_.TargetAttrForRef(slot.ref);
      URM_CHECK(target_attr.ok()) << target_attr.status().ToString();
      auto src = wm->mapping->SourceFor(target_attr.ValueOrDie());
      if (!src.has_value()) {
        if (slot.required) {
          sig = kUnanswerableSignature;
          break;
        }
        sig += "-|";
        continue;
      }
      sig += *src;
      sig += "|";
    }
    auto [it, inserted] = by_signature.emplace(sig, partitions.size());
    if (inserted) {
      OpPartition p;
      p.signature = sig;
      p.unanswerable = (sig == kUnanswerableSignature);
      partitions.push_back(std::move(p));
    }
    partitions[it->second].members.push_back(wm);
    partitions[it->second].probability += wm->probability;
  }
  return partitions;
}

Result<OSharingEngine::Candidate> OSharingEngine::PickOperator(
    const EUnit& u, std::vector<OpPartition>* partitions) {
  std::vector<Candidate> candidates = ComputeCandidates(u);
  if (candidates.empty()) {
    return Status::Internal("no valid operator for pending query state");
  }
  auto op = ChooseOperator(u, std::move(candidates), partitions);
  if (!op.ok()) return op.status();
  if (options_.visit_partitions_by_probability) {
    std::stable_sort(partitions->begin(), partitions->end(),
                     [](const OpPartition& a, const OpPartition& b) {
                       return a.probability > b.probability;
                     });
  }
  return op;
}

Result<OSharingEngine::Candidate> OSharingEngine::ChooseOperator(
    const EUnit& u, std::vector<Candidate> candidates,
    std::vector<OpPartition>* partitions) {
  URM_CHECK(!candidates.empty());
  if (options_.strategy == StrategyKind::kRandom) {
    size_t pick = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(candidates.size()) - 1));
    *partitions = PartitionMappings(u, candidates[pick].slots);
    return candidates[pick];
  }

  size_t best = 0;
  double best_score = 0.0;
  std::vector<OpPartition> best_parts;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::vector<OpPartition> parts = PartitionMappings(u, candidates[i].slots);
    double score;
    if (options_.strategy == StrategyKind::kSNF) {
      score = static_cast<double>(parts.size());
    } else {  // SEF: entropy over mapping-count fractions (Definition 1)
      double total = static_cast<double>(u.mappings.size());
      score = 0.0;
      for (const auto& p : parts) {
        double frac = static_cast<double>(p.members.size()) / total;
        if (frac > 0.0) score -= frac * std::log2(frac);
      }
    }
    if (i == 0 || score < best_score) {
      best = i;
      best_score = score;
      best_parts = std::move(parts);
    }
  }
  *partitions = std::move(best_parts);
  return candidates[best];
}

Result<std::string> OSharingEngine::ResolveRef(EUnit* u,
                                               const std::string& ref,
                                               const mapping::Mapping& rep) {
  auto it = u->resolved.find(ref);
  if (it != u->resolved.end()) return it->second;

  auto target_attr = info_.TargetAttrForRef(ref);
  if (!target_attr.ok()) return target_attr.status();
  auto src = rep.SourceFor(target_attr.ValueOrDie());
  if (!src.has_value()) {
    return Status::Internal("unmapped required ref in partition: " + ref);
  }
  std::string instance = InstancePart(ref);
  std::string scan_alias = instance + "$" + InstancePart(*src);
  std::string column = scan_alias + "." + AttributePart(*src);

  size_t gi = u->GroupIndexOfInstance(instance);
  URM_CHECK_NE(gi, static_cast<size_t>(-1));
  Group& group = u->groups[gi];
  bool present = false;
  for (const auto& f : group.factors) {
    if (f.ContainsScan(scan_alias)) {
      present = true;
      break;
    }
  }
  if (!present) {
    // Case 2/3 of §VI-B: extend the intermediate state with the scan
    // covering the needed source attribute.
    auto rel = MaterializeScan(InstancePart(*src), scan_alias);
    if (!rel.ok()) return rel.status();
    group.factors.push_back(
        Factor{std::move(rel).ValueOrDie(), {scan_alias}});
  }
  u->resolved[ref] = column;
  return column;
}

Result<EUnit> OSharingEngine::Execute(const EUnit& u, const Candidate& op,
                                      const OpPartition& partition) {
  EUnit next = u;
  next.mappings = partition.members;
  next.probability = partition.probability;
  const mapping::Mapping& rep = *partition.members.front()->mapping;

  algebra::EvalContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = &stats_;

  switch (op.kind) {
    case Candidate::kSelection: {
      const algebra::Predicate& pred = shape_.selections[op.index];
      auto lhs = ResolveRef(&next, pred.lhs, rep);
      if (!lhs.ok()) return lhs.status();
      algebra::Predicate bound = pred;
      bound.lhs = lhs.ValueOrDie();
      if (pred.rhs_attr.has_value()) {
        auto rhs = ResolveRef(&next, *pred.rhs_attr, rep);
        if (!rhs.ok()) return rhs.status();
        bound.rhs_attr = rhs.ValueOrDie();
      }
      size_t gi = next.GroupIndexOfInstance(InstancePart(pred.lhs));
      Group& group = next.groups[gi];
      int fl = FactorOfColumn(group, bound.lhs);
      int fr = bound.rhs_attr.has_value()
                   ? FactorOfColumn(group, *bound.rhs_attr)
                   : fl;
      if (fl < 0 || fr < 0) {
        return Status::Internal("resolved column missing from factors");
      }
      if (fl == fr) {
        Factor& f = group.factors[static_cast<size_t>(fl)];
        auto rel = RunSelection(f.rel, bound);
        if (!rel.ok()) return rel.status();
        f.rel = std::move(rel).ValueOrDie();
      } else {
        // The predicate spans two factors: fuse them (hash join for
        // equality, product+filter otherwise).
        Factor& a = group.factors[static_cast<size_t>(fl)];
        Factor& b = group.factors[static_cast<size_t>(fr)];
        auto rel = algebra::Evaluate(
            MakeSelect(MakeProduct(MakeRelationLeaf(a.rel, "l"),
                                   MakeRelationLeaf(b.rel, "r")),
                       bound),
            ctx);
        if (!rel.ok()) return rel.status();
        Factor merged;
        merged.rel = std::move(rel).ValueOrDie();
        merged.scan_aliases = a.scan_aliases;
        merged.scan_aliases.insert(merged.scan_aliases.end(),
                                   b.scan_aliases.begin(),
                                   b.scan_aliases.end());
        size_t lo = static_cast<size_t>(std::min(fl, fr));
        size_t hi = static_cast<size_t>(std::max(fl, fr));
        group.factors.erase(group.factors.begin() + hi);
        group.factors.erase(group.factors.begin() + lo);
        group.factors.push_back(std::move(merged));
      }
      next.pending_selections.erase(
          std::find(next.pending_selections.begin(),
                    next.pending_selections.end(), op.index));
      return next;
    }

    case Candidate::kProduct: {
      const ProductOp& prod = shape_.products[op.index];
      // Materialize covers of bare untouched instances (binary Case 3).
      auto materialize_bare = [&](const std::vector<std::string>& aliases)
          -> Status {
        for (const auto& alias : aliases) {
          auto inst = info_.InstanceForRef(alias + ".x");
          if (!inst.ok()) return inst.status();
          if (!inst.ValueOrDie()->bare || InstanceTouched(next, alias)) {
            continue;
          }
          std::set<std::string> cover;
          for (const auto& attr : inst.ValueOrDie()->needed) {
            auto src = rep.SourceFor(inst.ValueOrDie()->table + "." + attr);
            if (src.has_value()) cover.insert(InstancePart(*src));
          }
          if (cover.empty()) {
            return Status::Internal("bare instance has no mapped cover: " +
                                    alias);
          }
          size_t gi = next.GroupIndexOfInstance(alias);
          for (const auto& rel_name : cover) {
            std::string scan_alias = alias + "$" + rel_name;
            auto rel = MaterializeScan(rel_name, scan_alias);
            if (!rel.ok()) return rel.status();
            next.groups[gi].factors.push_back(
                Factor{std::move(rel).ValueOrDie(), {scan_alias}});
          }
        }
        return Status::OK();
      };
      URM_RETURN_NOT_OK(materialize_bare(prod.left_instances));
      URM_RETURN_NOT_OK(materialize_bare(prod.right_instances));

      size_t gl = next.GroupIndexOfInstance(prod.left_instances[0]);
      size_t gr = next.GroupIndexOfInstance(prod.right_instances[0]);
      URM_CHECK_NE(gl, gr);
      Group& keep = next.groups[std::min(gl, gr)];
      Group& drop = next.groups[std::max(gl, gr)];
      keep.instances.insert(keep.instances.end(), drop.instances.begin(),
                            drop.instances.end());
      for (auto& f : drop.factors) keep.factors.push_back(std::move(f));
      next.groups.erase(next.groups.begin() +
                        static_cast<long>(std::max(gl, gr)));
      stats_.operators_executed++;  // the Cartesian product itself
      next.pending_products.erase(std::find(next.pending_products.begin(),
                                            next.pending_products.end(),
                                            op.index));
      return next;
    }

    case Candidate::kTop: {
      const TopOp& top = shape_.tops[op.index];
      if (!top.is_aggregate) {
        for (const auto& r : top.project_refs) {
          auto col = ResolveRef(&next, r, rep);
          if (!col.ok()) return col.status();
        }
        stats_.operators_executed++;  // the projection (assembly defers)
      } else {
        URM_CHECK_EQ(next.groups.size(), 1u);
        Group& group = next.groups[0];
        double count = 1.0;
        for (const auto& f : group.factors) {
          count *= static_cast<double>(f.rel->num_rows());
        }
        relational::RelationSchema schema;
        Row row;
        if (top.agg == algebra::AggKind::kCount) {
          URM_CHECK_OK(schema.AddColumn(relational::ColumnDef{
              "count", relational::ValueType::kInt64}));
          row.push_back(
              relational::Value(static_cast<int64_t>(count)));
        } else {
          auto col = ResolveRef(&next, top.agg_ref, rep);
          if (!col.ok()) return col.status();
          int fi = FactorOfColumn(group, col.ValueOrDie());
          if (fi < 0) {
            return Status::Internal("aggregate column missing");
          }
          const Factor& f = group.factors[static_cast<size_t>(fi)];
          auto idx = f.rel->schema().IndexOf(col.ValueOrDie());
          double sum = 0.0;
          bool all_int = true;
          for (const Row& r : f.rel->rows()) {
            const relational::Value& v = r[*idx];
            // Same tolerance as the evaluator: NULL / non-numeric cells
            // contribute nothing (a mapping may match SUM's attribute
            // to a string column).
            if (v.is_null() || !v.is_numeric()) continue;
            if (v.type() != relational::ValueType::kInt64) all_int = false;
            sum += v.NumericValue();
          }
          double scale =
              f.rel->num_rows() > 0
                  ? count / static_cast<double>(f.rel->num_rows())
                  : 0.0;
          sum *= scale;
          if (all_int) {
            URM_CHECK_OK(schema.AddColumn(relational::ColumnDef{
                "sum", relational::ValueType::kInt64}));
            row.push_back(relational::Value(static_cast<int64_t>(sum)));
          } else {
            URM_CHECK_OK(schema.AddColumn(relational::ColumnDef{
                "sum", relational::ValueType::kDouble}));
            row.push_back(relational::Value(sum));
          }
        }
        Relation result(schema);
        URM_CHECK_OK(result.AddRow(std::move(row)));
        Factor agg_factor;
        agg_factor.rel = std::make_shared<const Relation>(std::move(result));
        for (const auto& f : group.factors) {
          agg_factor.scan_aliases.insert(agg_factor.scan_aliases.end(),
                                         f.scan_aliases.begin(),
                                         f.scan_aliases.end());
        }
        group.factors = {std::move(agg_factor)};
        next.aggregated = true;
        stats_.operators_executed++;  // the aggregate
      }
      next.next_top++;
      return next;
    }
  }
  return Status::Internal("unreachable");
}

Result<std::vector<Row>> OSharingEngine::AssembleLeafRows(const EUnit& u) {
  URM_CHECK_EQ(u.groups.size(), 1u);
  const Group& group = u.groups[0];
  if (u.aggregated) {
    URM_CHECK_EQ(group.factors.size(), 1u);
    return group.factors[0].rel->rows();
  }

  // Resolve output columns; project each factor to its share, distinct,
  // then combine (distinct(π(A×B)) = distinct(π_A(A)) × distinct(π_B(B))).
  std::vector<std::string> out_cols;
  for (const auto& ref : info_.output_refs) {
    auto it = u.resolved.find(ref);
    if (it == u.resolved.end()) {
      return Status::Internal("output ref unresolved at leaf: " + ref);
    }
    out_cols.push_back(it->second);
  }

  Relation combined{relational::RelationSchema{}};
  URM_CHECK_OK(combined.AddRow(Row{}));
  for (const auto& f : group.factors) {
    std::vector<std::string> cols;
    for (const auto& c : out_cols) {
      if (f.rel->schema().IndexOf(c).has_value()) cols.push_back(c);
    }
    if (cols.empty()) {
      if (f.rel->empty()) return std::vector<Row>{};  // θ
      continue;
    }
    auto projected = f.rel->Project(cols);
    if (!projected.ok()) return projected.status();
    Relation distinct = projected.ValueOrDie().Distinct();
    auto product = combined.Product(distinct);
    if (!product.ok()) return product.status();
    combined = std::move(product).ValueOrDie();
  }

  // Order the columns per output_refs.
  std::vector<size_t> indices;
  for (const auto& c : out_cols) {
    auto idx = combined.schema().IndexOf(c);
    if (!idx.has_value()) {
      return Status::Internal("assembled column missing: " + c);
    }
    indices.push_back(*idx);
  }
  std::vector<Row> rows;
  rows.reserve(combined.num_rows());
  for (const Row& r : combined.rows()) {
    Row out;
    out.reserve(indices.size());
    for (size_t idx : indices) out.push_back(r[idx]);
    rows.push_back(std::move(out));
  }
  return rows;
}

Result<std::optional<bool>> OSharingEngine::EmitTerminalLeaf(
    const EUnit& u, LeafVisitor* visitor) {
  // Case 2: an empty intermediate relation makes the whole answer θ —
  // except for aggregate queries, where the aggregate of an empty input
  // is still a value (COUNT = 0), matching the basic methods.
  bool has_aggregate_top = false;
  for (const auto& top : shape_.tops) {
    if (top.is_aggregate) has_aggregate_top = true;
  }
  if (!has_aggregate_top) {
    for (const auto& g : u.groups) {
      if (g.HasEmptyFactor()) {
        leaves_++;
        return std::optional<bool>(visitor->OnLeaf({}, u.probability));
      }
    }
  }
  // Case 1: fully executed.
  if (u.pending_selections.empty() && u.pending_products.empty() &&
      u.next_top >= shape_.tops.size()) {
    auto rows = AssembleLeafRows(u);
    if (!rows.ok()) return rows.status();
    leaves_++;
    return std::optional<bool>(visitor->OnLeafOwned(
        std::move(rows).ValueOrDie(), u.probability));
  }
  return std::optional<bool>();
}

Result<bool> OSharingEngine::RunEUnit(const EUnit& u, LeafVisitor* visitor) {
  auto leaf = EmitTerminalLeaf(u, visitor);
  if (!leaf.ok()) return leaf.status();
  if (leaf.ValueOrDie().has_value()) return *leaf.ValueOrDie();
  // Case 3: pick, partition, execute, recurse.
  std::vector<OpPartition> partitions;
  auto op = PickOperator(u, &partitions);
  if (!op.ok()) return op.status();
  for (const auto& p : partitions) {
    if (p.unanswerable) {
      leaves_++;
      if (!visitor->OnLeaf({}, p.probability)) return false;
      continue;
    }
    auto child = Execute(u, op.ValueOrDie(), p);
    if (!child.ok()) return child.status();
    auto cont = RunEUnit(child.ValueOrDie(), visitor);
    if (!cont.ok()) return cont.status();
    if (!cont.ValueOrDie()) return false;
  }
  return true;
}

}  // namespace osharing
}  // namespace urm
