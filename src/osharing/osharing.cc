#include "osharing/osharing.h"

#include "common/timer.h"
#include "qsharing/qsharing.h"

namespace urm {
namespace osharing {

using baselines::MethodResult;
using baselines::WeightedMapping;

namespace {

/// Accumulates every leaf's rows into an AnswerSet.
class AccumulatingVisitor : public LeafVisitor {
 public:
  explicit AccumulatingVisitor(reformulation::AnswerSet* answers)
      : answers_(answers) {}

  bool OnLeaf(const std::vector<relational::Row>& rows,
              double probability) override {
    if (rows.empty()) {
      answers_->AddNull(probability);
      return true;
    }
    for (const auto& row : rows) {
      answers_->Add(row, probability);
    }
    return true;
  }

 private:
  reformulation::AnswerSet* answers_;
};

}  // namespace

Result<MethodResult> RunOSharing(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog, const OSharingOptions& options) {
  MethodResult result;
  result.answers = reformulation::AnswerSet(info.output_refs);

  // Algorithm 2, steps 1-2: partition + represent.
  Timer timer;
  auto tree = qsharing::PartitionTree::Build(info, mappings);
  if (!tree.ok()) return tree.status();
  double unanswerable = 0.0;
  std::vector<WeightedMapping> reps =
      qsharing::Represent(tree.ValueOrDie(), &unanswerable);
  result.rewrite_seconds = timer.Lap();
  result.partitions = tree.ValueOrDie().partitions().size();

  // Steps 3-5: run the u-trace and aggregate. A caller-provided tee
  // observes the same leaf stream the accumulator consumes.
  OSharingEngine engine(info, catalog, options);
  URM_RETURN_NOT_OK(engine.Init());
  AccumulatingVisitor accumulator(&result.answers);
  TeeVisitor sink(&accumulator, options.tee);
  if (options.parallel()) {
    URM_RETURN_NOT_OK(engine.RunParallel(reps, &sink, options.pool));
  } else {
    URM_RETURN_NOT_OK(engine.Run(reps, &sink));
  }
  if (unanswerable > 0.0) result.answers.AddNull(unanswerable);
  result.eval_seconds = timer.Lap();
  result.stats = engine.stats();
  result.source_queries = engine.leaves_visited();
  return result;
}

}  // namespace osharing
}  // namespace urm
