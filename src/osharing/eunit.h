#pragma once

#include <map>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "relational/relation.h"

/// \file eunit.h
/// The o-sharing execution state (paper §V): an e-unit is a partially
/// executed target query — some operators already evaluated into
/// materialized intermediate relations — together with the set of
/// mappings that share all correspondences used so far.
///
/// Representation note: the paper's intermediate relations R_i are kept
/// *factored*. A Group collects the target-table instances merged by
/// executed Cartesian products; its state is a set of independent
/// `Factor` relations whose (implicit) Cartesian product is the paper's
/// intermediate relation. Row multiplication is deferred to the point
/// where a join predicate, an aggregate, or final answer assembly needs
/// it — the results are identical, but Cartesian covers never blow up.

namespace urm {
namespace osharing {

/// One materialized independent piece of a group.
struct Factor {
  relational::RelationPtr rel;
  /// Source scan instances folded into this factor ("po1$orders", ...).
  std::vector<std::string> scan_aliases;

  bool ContainsScan(const std::string& alias) const {
    for (const auto& a : scan_aliases) {
      if (a == alias) return true;
    }
    return false;
  }
};

/// A set of target instances whose executed products merged them, plus
/// the materialized factors.
struct Group {
  std::vector<std::string> instances;  ///< target aliases in this group
  std::vector<Factor> factors;

  bool ContainsInstance(const std::string& alias) const {
    for (const auto& a : instances) {
      if (a == alias) return true;
    }
    return false;
  }
  bool HasEmptyFactor() const {
    for (const auto& f : factors) {
      if (f.rel->empty()) return true;
    }
    return false;
  }
};

/// \brief One node of the u-trace.
struct EUnit {
  /// Remaining operators, as indexes into the QueryShape lists.
  std::vector<size_t> pending_selections;
  std::vector<size_t> pending_products;
  size_t next_top = 0;  ///< index of the next top op (tops run in order)

  std::vector<Group> groups;

  /// Mappings sharing this branch (representatives from the initial
  /// partition, carrying their partitions' total probability).
  std::vector<const baselines::WeightedMapping*> mappings;
  double probability = 0.0;

  /// Target refs whose source column is already fixed on this branch
  /// ("po1.orderNum" -> "po1$orders.o_orderkey").
  std::map<std::string, std::string> resolved;

  /// Set when an aggregate top has produced its single-row factor.
  bool aggregated = false;

  const Group* GroupOfInstance(const std::string& alias) const {
    for (const auto& g : groups) {
      if (g.ContainsInstance(alias)) return &g;
    }
    return nullptr;
  }
  size_t GroupIndexOfInstance(const std::string& alias) const {
    for (size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].ContainsInstance(alias)) return i;
    }
    return static_cast<size_t>(-1);
  }
};

}  // namespace osharing
}  // namespace urm
