#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/evaluate.h"
#include "common/hash_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "osharing/eunit.h"
#include "osharing/operator_store.h"
#include "osharing/query_shape.h"
#include "reformulation/target_query.h"
#include "relational/catalog.h"

/// \file engine.h
/// The o-sharing u-trace executor (paper Algorithm 2 / run_qt) with the
/// three operator-selection strategies of §VI-A. The same engine drives
/// both full evaluation (o-sharing) and the top-k algorithm (§VII) via
/// the LeafVisitor hook.

namespace urm {
namespace osharing {

/// Operator selection strategies (§VI-A).
enum class StrategyKind {
  kRandom,  ///< arbitrary valid operator
  kSNF,     ///< smallest number of mapping partitions first
  kSEF,     ///< smallest entropy first
};

const char* StrategyName(StrategyKind kind);

class LeafVisitor;

struct OSharingOptions {
  StrategyKind strategy = StrategyKind::kSEF;
  uint64_t random_seed = 17;  ///< used by the Random strategy
  /// Visit the partitions of each executed operator in descending
  /// probability-mass order; the top-k algorithm relies on this to
  /// tighten its bounds early. Plain o-sharing is order-insensitive.
  bool visit_partitions_by_probability = false;
  /// Memoize per-(input relation, reformulated predicate) selection
  /// results across u-trace branches. Sibling branches re-execute the
  /// same source operator when the splitting operator did not touch
  /// its input — the paper's §IX "data structures to facilitate
  /// o-sharing evaluation". See bench_ablation for the effect.
  bool enable_operator_cache = true;
  /// Fan u-trace mapping partitions out to `pool` when parallelism > 1
  /// (each subtree is independent by construction — the partitions
  /// disagree on the chosen operator's correspondences, so no e-unit
  /// state is shared between them). Leaf answers are buffered per
  /// partition and replayed in partition order, so deterministic
  /// strategies (SEF/SNF) produce bit-identical results to the
  /// sequential trace; kRandom re-seeds per branch and may take a
  /// different (equally valid) trace.
  int parallelism = 1;
  ThreadPool* pool = nullptr;
  /// How many fan-out levels RunParallel may spawn below the root.
  /// 1 restricts fan-out to the root operator's partitions (the
  /// pre-recursive behavior); larger values let skewed partition trees
  /// load-balance by splitting heavy subtrees again. Single-partition
  /// operators pass through without consuming a level.
  int max_parallel_depth = 4;
  /// Minimum estimated subtree work — mapping count times remaining
  /// operators — required to fan a node out; smaller subtrees run
  /// sequentially on the branch that owns them (spawn overhead would
  /// dominate).
  size_t parallel_grain = 16;
  /// Cross-evaluation memo of materialized selections and scans (see
  /// operator_store.h), shared by all engine clones of one parallel
  /// evaluation and — when the serving tier owns it — by concurrent
  /// queries over the same catalog. When null, RunParallel creates a
  /// store scoped to the one evaluation so sibling branches still
  /// share; Run (sequential) uses the private per-engine memo alone.
  OperatorStore* store = nullptr;
  /// Mapping epoch folded into every store key (Engine::mapping_epoch);
  /// stale entries are unreachable after a reconfiguration even before
  /// the store is fenced.
  uint64_t store_epoch = 0;
  /// Shard-local epoch component folded into every store key
  /// (OperatorKey::shard_epoch): 0 when this evaluation runs over the
  /// whole mapping set; the shard's identity hash
  /// (mapping::MappingShard::hash) when it runs over one shard of a
  /// sharded set. Keeps each shard's materializations in their own key
  /// space (reused by later queries over the same shard, never by
  /// sibling shards) without disturbing the monotonic store_epoch the
  /// fence compares against.
  uint64_t store_shard_epoch = 0;
  /// Secondary observer of the leaf stream: the Run* drivers
  /// (osharing / top-k / threshold) tee every leaf to it alongside
  /// their own accumulating visitor — this is how the serving tier's
  /// core::AnswerSink taps answers as they are produced. A false
  /// return unsubscribes the tee without aborting the primary scan.
  LeafVisitor* tee = nullptr;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }
};

/// \brief Receives each u-trace leaf's answers.
class LeafVisitor {
 public:
  virtual ~LeafVisitor() = default;
  /// `rows` are the distinct target-level answer rows of one leaf
  /// e-unit (layout = TargetQueryInfo::output_refs; empty = the θ
  /// outcome), `probability` the leaf's mapping-partition mass.
  /// Returning false aborts the traversal (top-k early termination).
  virtual bool OnLeaf(const std::vector<relational::Row>& rows,
                      double probability) = 0;
  /// Ownership-transferring variant, called when the producer is done
  /// with the rows (freshly assembled leaves, buffered-replay hand-off).
  /// Buffering visitors override it to move instead of copy; the
  /// default forwards to OnLeaf.
  virtual bool OnLeafOwned(std::vector<relational::Row>&& rows,
                           double probability) {
    return OnLeaf(rows, probability);
  }
};

/// \brief Forwards each leaf to a primary visitor and a tee. The
/// primary's verdict drives the traversal; a tee that returns false is
/// only unsubscribed. Used by the Run* drivers to stream answers to a
/// core::AnswerSink while their own sink aggregates.
class TeeVisitor : public LeafVisitor {
 public:
  TeeVisitor(LeafVisitor* primary, LeafVisitor* tee)
      : primary_(primary), tee_(tee) {}

  bool OnLeaf(const std::vector<relational::Row>& rows,
              double probability) override {
    if (tee_ != nullptr && !tee_->OnLeaf(rows, probability)) {
      tee_ = nullptr;
    }
    return primary_->OnLeaf(rows, probability);
  }

  bool OnLeafOwned(std::vector<relational::Row>&& rows,
                   double probability) override {
    if (tee_ != nullptr && !tee_->OnLeaf(rows, probability)) {
      tee_ = nullptr;
    }
    return primary_->OnLeafOwned(std::move(rows), probability);
  }

 private:
  LeafVisitor* primary_;
  LeafVisitor* tee_;
};

/// \brief Executes the u-trace for one query over one source instance.
///
/// Thread-safety: one engine instance is single-threaded (Init, then
/// Run or RunParallel once; private memos and stats are unsynchronized
/// by design). Concurrency comes from *clones*: RunParallel spawns one
/// clone per fanned-out branch, and the serving tier runs independent
/// engines per query/shard — all sharing one OperatorStore, which is
/// internally synchronized and epoch/shard-keyed (options.store_epoch,
/// options.store_shard_epoch) so fenced or sibling-shard entries can
/// never be returned.
class OSharingEngine {
 public:
  OSharingEngine(const reformulation::TargetQueryInfo& info,
                 const relational::Catalog& catalog,
                 OSharingOptions options);

  /// Decomposes the query; must be called (and succeed) before Run.
  Status Init();

  /// Runs the u-trace over the representative mappings. The visitor
  /// sees every leaf unless it aborts.
  Status Run(const std::vector<baselines::WeightedMapping>& reps,
             LeafVisitor* visitor);

  /// Like Run, but distributes u-trace mapping partitions over `pool`,
  /// recursively: fan-out happens at every operator whose partition
  /// fan and estimated work clear the OSharingOptions depth/grain
  /// cutoffs, so skewed partition trees load-balance instead of being
  /// bound by the largest root partition. Each spawned subtree executes
  /// in its own engine clone; all clones share one OperatorStore
  /// (options.store, or a store scoped to this call), so sibling
  /// branches reuse selections the sequential trace would have
  /// memoized. The visitor replays the buffered leaves in partition
  /// order — the exact sequential leaf sequence for deterministic
  /// strategies. A visitor abort stops the replay (already-computed
  /// sibling branches are discarded).
  Status RunParallel(const std::vector<baselines::WeightedMapping>& reps,
                     LeafVisitor* visitor, ThreadPool* pool);

  const algebra::EvalStats& stats() const { return stats_; }
  size_t leaves_visited() const { return leaves_; }
  const QueryShape& shape() const { return shape_; }

 private:
  struct Candidate {
    enum Kind { kSelection, kProduct, kTop } kind = kSelection;
    size_t index = 0;
    /// Unresolved target refs this operator's reformulation depends on.
    std::vector<reformulation::SignatureSlot> slots;
  };

  struct OpPartition {
    std::string signature;
    std::vector<const baselines::WeightedMapping*> members;
    double probability = 0.0;
    bool unanswerable = false;
  };

  EUnit MakeRoot(const std::vector<baselines::WeightedMapping>& reps) const;

  std::vector<Candidate> ComputeCandidates(const EUnit& u) const;
  std::vector<OpPartition> PartitionMappings(
      const EUnit& u, const std::vector<reformulation::SignatureSlot>& slots)
      const;
  /// Picks the next operator per the configured strategy; fills
  /// `partitions` with the chosen operator's mapping partitions.
  Result<Candidate> ChooseOperator(const EUnit& u,
                                   std::vector<Candidate> candidates,
                                   std::vector<OpPartition>* partitions);

  /// The Case-3 "pick" step shared by RunEUnit and RunParallel:
  /// candidate enumeration, strategy choice, and the optional
  /// probability-mass partition ordering — one code path so the
  /// bit-identical sequential/parallel guarantee cannot drift.
  Result<Candidate> PickOperator(const EUnit& u,
                                 std::vector<OpPartition>* partitions);

  /// Executes `op` for one partition, deriving the child e-unit.
  Result<EUnit> Execute(const EUnit& u, const Candidate& op,
                        const OpPartition& partition);

  /// Ensures `ref`'s source column is materialized in `u` (Case 2/3
  /// extension with new covering scans as needed); returns the column.
  Result<std::string> ResolveRef(EUnit* u, const std::string& ref,
                                 const mapping::Mapping& rep);

  Result<bool> RunEUnit(const EUnit& u, LeafVisitor* visitor);
  Result<std::vector<relational::Row>> AssembleLeafRows(const EUnit& u);

  /// Cases 1-2 of the u-trace: when `u` is a leaf (an empty factor's θ
  /// outcome, or fully executed), emits it to `visitor` — counting it
  /// in leaves_ — and returns the visitor's verdict; nullopt when `u`
  /// still has pending operators. The single source of the
  /// leaf-termination rules for both the sequential executor and the
  /// parallel one, so the bit-identical guarantee cannot drift.
  Result<std::optional<bool>> EmitTerminalLeaf(const EUnit& u,
                                               LeafVisitor* visitor);

  class BufferingVisitor;

  /// The recursive half of RunParallel: executes the subtree rooted at
  /// `u`, fanning its partitions out to `pool` when `depth` and the
  /// grain cutoff allow, buffering every leaf into `out` in partition
  /// (= sequential DFS) order. Counts produced leaves into leaves_.
  Status RunSubtreeParallel(const EUnit& u, int depth, ThreadPool* pool,
                            BufferingVisitor* out);

  /// Memoized selection execution (see
  /// OSharingOptions::enable_operator_cache / OSharingOptions::store).
  Result<relational::RelationPtr> RunSelection(
      const relational::RelationPtr& input, const algebra::Predicate& pred);

  /// Memoized aliased base-relation scan.
  Result<relational::RelationPtr> MaterializeScan(
      const std::string& relation, const std::string& scan_alias);

  /// Folds one shared-store lookup outcome into stats_ — the single
  /// source of the hit/miss/bytes-saved accounting for RunSelection
  /// and MaterializeScan.
  void RecordStoreOutcome(bool shared, size_t bytes);

  /// Private selection-memo key: input relation identity plus the
  /// predicate's structural hash (Predicate::CacheHash). Lookups
  /// compare the precomputed hash (and one pointer) instead of
  /// rendering and string-comparing the predicate at every u-trace
  /// level; the entry keeps the predicate to verify candidate hits
  /// with operator==, so a hash collision degrades to a recompute,
  /// never a wrong reuse — and the memo hot path never renders at all
  /// (ToString runs only on the miss path that reaches the shared
  /// store, whose cross-engine entries are render-verified).
  struct SelectionKey {
    const void* input = nullptr;
    uint64_t pred_hash = 0;

    bool operator==(const SelectionKey& other) const {
      return input == other.input && pred_hash == other.pred_hash;
    }
  };
  struct SelectionKeyHash {
    size_t operator()(const SelectionKey& key) const {
      size_t seed = static_cast<size_t>(key.pred_hash);
      HashCombine(seed, std::hash<const void*>{}(key.input));
      return seed;
    }
  };
  struct CachedSelection {
    algebra::Predicate pred;  ///< verified on hit (collision guard)
    relational::RelationPtr rel;
    size_t bytes = 0;  ///< ApproxBytes, measured once at insertion
  };
  struct CachedScan {
    relational::RelationPtr rel;
    size_t bytes = 0;  ///< ApproxBytes, measured once at insertion
  };

  const reformulation::TargetQueryInfo& info_;
  const relational::Catalog& catalog_;
  OSharingOptions options_;
  QueryShape shape_;
  algebra::EvalStats stats_;
  size_t leaves_ = 0;
  Rng rng_;
  /// Private per-engine memo in front of the shared store (no locks;
  /// hit => the exact RelationPtr previously returned on this branch).
  std::unordered_map<SelectionKey, CachedSelection, SelectionKeyHash>
      selection_cache_;
  /// scan alias -> materialized (renamed) base relation. Reuse counts
  /// toward the same EvalStats cache counters as selections, so the
  /// reported operator hit rate covers both memo kinds.
  std::unordered_map<std::string, CachedScan> scan_cache_;
};

}  // namespace osharing
}  // namespace urm
