#pragma once

#include <vector>

#include "algebra/evaluate.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "osharing/eunit.h"
#include "osharing/query_shape.h"
#include "reformulation/target_query.h"
#include "relational/catalog.h"

/// \file engine.h
/// The o-sharing u-trace executor (paper Algorithm 2 / run_qt) with the
/// three operator-selection strategies of §VI-A. The same engine drives
/// both full evaluation (o-sharing) and the top-k algorithm (§VII) via
/// the LeafVisitor hook.

namespace urm {
namespace osharing {

/// Operator selection strategies (§VI-A).
enum class StrategyKind {
  kRandom,  ///< arbitrary valid operator
  kSNF,     ///< smallest number of mapping partitions first
  kSEF,     ///< smallest entropy first
};

const char* StrategyName(StrategyKind kind);

class LeafVisitor;

struct OSharingOptions {
  StrategyKind strategy = StrategyKind::kSEF;
  uint64_t random_seed = 17;  ///< used by the Random strategy
  /// Visit the partitions of each executed operator in descending
  /// probability-mass order; the top-k algorithm relies on this to
  /// tighten its bounds early. Plain o-sharing is order-insensitive.
  bool visit_partitions_by_probability = false;
  /// Memoize per-(input relation, reformulated predicate) selection
  /// results across u-trace branches. Sibling branches re-execute the
  /// same source operator when the splitting operator did not touch
  /// its input — the paper's §IX "data structures to facilitate
  /// o-sharing evaluation". See bench_ablation for the effect.
  bool enable_operator_cache = true;
  /// Fan the root-level mapping partitions out to `pool` when
  /// parallelism > 1 (each u-trace subtree is independent by
  /// construction — the partitions disagree on the chosen operator's
  /// correspondences, so no state is shared between them). Leaf
  /// answers are buffered per partition and replayed in partition
  /// order, so deterministic strategies (SEF/SNF) produce bit-identical
  /// results to the sequential trace; kRandom re-seeds per branch and
  /// may take a different (equally valid) trace.
  int parallelism = 1;
  ThreadPool* pool = nullptr;
  /// Secondary observer of the leaf stream: the Run* drivers
  /// (osharing / top-k / threshold) tee every leaf to it alongside
  /// their own accumulating visitor — this is how the serving tier's
  /// core::AnswerSink taps answers as they are produced. A false
  /// return unsubscribes the tee without aborting the primary scan.
  LeafVisitor* tee = nullptr;

  bool parallel() const { return parallelism > 1 && pool != nullptr; }
};

/// \brief Receives each u-trace leaf's answers.
class LeafVisitor {
 public:
  virtual ~LeafVisitor() = default;
  /// `rows` are the distinct target-level answer rows of one leaf
  /// e-unit (layout = TargetQueryInfo::output_refs; empty = the θ
  /// outcome), `probability` the leaf's mapping-partition mass.
  /// Returning false aborts the traversal (top-k early termination).
  virtual bool OnLeaf(const std::vector<relational::Row>& rows,
                      double probability) = 0;
  /// Ownership-transferring variant, called when the producer is done
  /// with the rows (freshly assembled leaves, buffered-replay hand-off).
  /// Buffering visitors override it to move instead of copy; the
  /// default forwards to OnLeaf.
  virtual bool OnLeafOwned(std::vector<relational::Row>&& rows,
                           double probability) {
    return OnLeaf(rows, probability);
  }
};

/// \brief Forwards each leaf to a primary visitor and a tee. The
/// primary's verdict drives the traversal; a tee that returns false is
/// only unsubscribed. Used by the Run* drivers to stream answers to a
/// core::AnswerSink while their own sink aggregates.
class TeeVisitor : public LeafVisitor {
 public:
  TeeVisitor(LeafVisitor* primary, LeafVisitor* tee)
      : primary_(primary), tee_(tee) {}

  bool OnLeaf(const std::vector<relational::Row>& rows,
              double probability) override {
    if (tee_ != nullptr && !tee_->OnLeaf(rows, probability)) {
      tee_ = nullptr;
    }
    return primary_->OnLeaf(rows, probability);
  }

  bool OnLeafOwned(std::vector<relational::Row>&& rows,
                   double probability) override {
    if (tee_ != nullptr && !tee_->OnLeaf(rows, probability)) {
      tee_ = nullptr;
    }
    return primary_->OnLeafOwned(std::move(rows), probability);
  }

 private:
  LeafVisitor* primary_;
  LeafVisitor* tee_;
};

/// \brief Executes the u-trace for one query over one source instance.
class OSharingEngine {
 public:
  OSharingEngine(const reformulation::TargetQueryInfo& info,
                 const relational::Catalog& catalog,
                 OSharingOptions options);

  /// Decomposes the query; must be called (and succeed) before Run.
  Status Init();

  /// Runs the u-trace over the representative mappings. The visitor
  /// sees every leaf unless it aborts.
  Status Run(const std::vector<baselines::WeightedMapping>& reps,
             LeafVisitor* visitor);

  /// Like Run, but distributes the root operator's mapping partitions
  /// over `pool`: each partition's subtree executes in its own engine
  /// clone (private caches), and the visitor replays the buffered
  /// leaves in partition order — the exact sequential leaf sequence
  /// for deterministic strategies. A visitor abort stops the replay
  /// (already-computed sibling branches are discarded).
  Status RunParallel(const std::vector<baselines::WeightedMapping>& reps,
                     LeafVisitor* visitor, ThreadPool* pool);

  const algebra::EvalStats& stats() const { return stats_; }
  size_t leaves_visited() const { return leaves_; }
  const QueryShape& shape() const { return shape_; }

 private:
  struct Candidate {
    enum Kind { kSelection, kProduct, kTop } kind = kSelection;
    size_t index = 0;
    /// Unresolved target refs this operator's reformulation depends on.
    std::vector<reformulation::SignatureSlot> slots;
  };

  struct OpPartition {
    std::string signature;
    std::vector<const baselines::WeightedMapping*> members;
    double probability = 0.0;
    bool unanswerable = false;
  };

  EUnit MakeRoot(const std::vector<baselines::WeightedMapping>& reps) const;

  std::vector<Candidate> ComputeCandidates(const EUnit& u) const;
  std::vector<OpPartition> PartitionMappings(
      const EUnit& u, const std::vector<reformulation::SignatureSlot>& slots)
      const;
  /// Picks the next operator per the configured strategy; fills
  /// `partitions` with the chosen operator's mapping partitions.
  Result<Candidate> ChooseOperator(const EUnit& u,
                                   std::vector<Candidate> candidates,
                                   std::vector<OpPartition>* partitions);

  /// The Case-3 "pick" step shared by RunEUnit and RunParallel:
  /// candidate enumeration, strategy choice, and the optional
  /// probability-mass partition ordering — one code path so the
  /// bit-identical sequential/parallel guarantee cannot drift.
  Result<Candidate> PickOperator(const EUnit& u,
                                 std::vector<OpPartition>* partitions);

  /// Executes `op` for one partition, deriving the child e-unit.
  Result<EUnit> Execute(const EUnit& u, const Candidate& op,
                        const OpPartition& partition);

  /// Ensures `ref`'s source column is materialized in `u` (Case 2/3
  /// extension with new covering scans as needed); returns the column.
  Result<std::string> ResolveRef(EUnit* u, const std::string& ref,
                                 const mapping::Mapping& rep);

  Result<bool> RunEUnit(const EUnit& u, LeafVisitor* visitor);
  Result<std::vector<relational::Row>> AssembleLeafRows(const EUnit& u);

  /// Memoized selection execution (see
  /// OSharingOptions::enable_operator_cache).
  Result<relational::RelationPtr> RunSelection(
      const relational::RelationPtr& input, const algebra::Predicate& pred);

  /// Memoized aliased base-relation scan.
  Result<relational::RelationPtr> MaterializeScan(
      const std::string& relation, const std::string& scan_alias);

  const reformulation::TargetQueryInfo& info_;
  const relational::Catalog& catalog_;
  OSharingOptions options_;
  QueryShape shape_;
  algebra::EvalStats stats_;
  size_t leaves_ = 0;
  Rng rng_;
  /// (input relation identity, predicate rendering) -> result.
  std::map<std::pair<const void*, std::string>, relational::RelationPtr>
      selection_cache_;
  /// scan alias -> materialized (renamed) base relation.
  std::map<std::string, relational::RelationPtr> scan_cache_;
};

}  // namespace osharing
}  // namespace urm
