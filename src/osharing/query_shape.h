#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "common/status.h"
#include "reformulation/target_query.h"

/// \file query_shape.h
/// Normal form of a target query for o-sharing: the operator inventory
/// (selections, products, top projections/aggregates) with the
/// commutativity the paper's reorder_op exploits made explicit —
/// selections and products can run in any valid order; tops run last.

namespace urm {
namespace osharing {

/// A Cartesian product operator: which instance sets it merges.
struct ProductOp {
  std::vector<std::string> left_instances;
  std::vector<std::string> right_instances;
};

/// A top-of-plan unary operator (projection or aggregate), innermost
/// first.
struct TopOp {
  bool is_aggregate = false;
  std::vector<std::string> project_refs;  ///< projection attributes
  algebra::AggKind agg = algebra::AggKind::kCount;
  std::string agg_ref;  ///< SUM attribute ("" for COUNT)
};

/// \brief Decomposed target query.
struct QueryShape {
  std::vector<algebra::Predicate> selections;
  std::vector<ProductOp> products;  ///< bottom-up order
  std::vector<TopOp> tops;          ///< innermost first

  /// Total operator count (= CountOperators of the original plan).
  size_t NumOperators() const {
    return selections.size() + products.size() + tops.size();
  }
};

/// Decomposes an analyzed query. Fails (NotImplemented) when a
/// projection or aggregate occurs below a product/selection — the
/// paper's workload keeps them on top.
Result<QueryShape> DecomposeQuery(const reformulation::TargetQueryInfo& info);

}  // namespace osharing
}  // namespace urm
