#pragma once

#include <vector>

#include "baselines/method_result.h"
#include "common/status.h"
#include "osharing/engine.h"
#include "qsharing/partition_tree.h"

/// \file osharing.h
/// o-sharing (paper Algorithm 2): partition + represent like q-sharing,
/// then execute the target query operator-by-operator over the u-trace,
/// sharing every operator evaluation among all mappings that agree on
/// the correspondences it needs.

namespace urm {
namespace osharing {

/// Runs Algorithm 2 end to end and aggregates all leaf answers.
/// Thread-safe for concurrent calls: each call builds its own engine
/// state and only reads `mappings`/`catalog`; a shared
/// options.store (OperatorStore) is internally synchronized, with
/// entries keyed by options.store_epoch / store_shard_epoch so
/// reconfigured or sibling-shard evaluations can never alias.
Result<baselines::MethodResult> RunOSharing(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog,
    const OSharingOptions& options = OSharingOptions());

}  // namespace osharing
}  // namespace urm
