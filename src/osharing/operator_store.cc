#include "osharing/operator_store.h"

#include <utility>

namespace urm {
namespace osharing {

using relational::RelationPtr;

OperatorStore::OperatorStore(OperatorStoreOptions options)
    : options_(options),
      shards_(options.num_shards),
      // Divide by the rounded-up shard count so the total stays
      // max_bytes regardless of the rounding.
      per_shard_budget_(options.max_bytes / shards_.num_shards()) {}

void OperatorStore::FenceEpoch(uint64_t epoch) {
  // Fence forward only: a worker that loaded its epoch before a newer
  // reconfiguration was fenced must not clear entries that are valid
  // under the newer epoch (and then block their re-insertion). One
  // thread wins the fence and clears; late fencers of the same epoch
  // see the updated value and exit. Entries are also keyed by epoch,
  // so even a racing lookup cannot see a stale result.
  uint64_t current = fenced_epoch_.load(std::memory_order_acquire);
  while (current < epoch) {
    if (fenced_epoch_.compare_exchange_weak(current, epoch)) {
      epoch_fences_.fetch_add(1, std::memory_order_relaxed);
      Clear();
      return;
    }
  }
}

size_t OperatorStore::FenceRelations(
    const std::vector<const relational::Relation*>& replaced) {
  if (replaced.empty()) return 0;
  size_t fenced = 0;
  shards_.ForEachShard([&](Shards::Map& map, ShardState& state) {
    for (auto it = map.begin(); it != map.end();) {
      const void* input = it->first.input;
      bool match = false;
      for (const relational::Relation* rel : replaced) {
        if (input == rel) {
          match = true;
          break;
        }
      }
      if (!match) {
        ++it;
        continue;
      }
      Entry& entry = *it->second;
      if (entry.ready) {
        state.bytes -= entry.bytes;
        state.lru.erase(entry.lru_it);
      }
      // A not-yet-ready entry is safe to drop too: its owner's
      // completion re-checks map membership and skips insertion, and
      // waiters already hold the shared future.
      it = map.erase(it);
      ++fenced;
    }
  });
  if (fenced > 0) {
    relation_fenced_.fetch_add(fenced, std::memory_order_relaxed);
  }
  return fenced;
}

Result<RelationPtr> OperatorStore::GetOrCompute(
    const OperatorKey& key, const std::string& op_render,
    RelationPtr pinned_input, const Compute& compute, bool* shared,
    size_t* result_bytes) {
  if (shared != nullptr) *shared = false;
  if (result_bytes != nullptr) *result_bytes = 0;

  enum class Outcome { kOwner, kReadyHit, kWaitHit, kCollision };
  std::shared_future<Result<RelationPtr>> future;
  std::promise<Result<RelationPtr>> promise;
  std::shared_ptr<Entry> owned;  // the entry this caller must fulfill
  size_t known_bytes = 0;

  Outcome outcome = shards_.WithShard(
      key, [&](Shards::Map& map, ShardState& state) -> Outcome {
        auto it = map.find(key);
        if (it != map.end()) {
          Entry& entry = *it->second;
          if (entry.op_render != op_render) {
            // 64-bit hash collision between two distinct operators:
            // fall back to an uncached compute for the newcomer.
            return Outcome::kCollision;
          }
          future = entry.future;
          if (!entry.ready) return Outcome::kWaitHit;
          known_bytes = entry.result_bytes;
          state.lru.splice(state.lru.begin(), state.lru, entry.lru_it);
          return Outcome::kReadyHit;
        }
        owned = std::make_shared<Entry>();
        owned->op_render = op_render;
        owned->pinned_input = std::move(pinned_input);
        owned->future = promise.get_future().share();
        map.emplace(key, owned);
        return Outcome::kOwner;
      });

  switch (outcome) {
    case Outcome::kCollision: {
      // Computed fresh like a miss (just never inserted); keep the
      // counters and the caller's byte accounting truthful.
      misses_.fetch_add(1, std::memory_order_relaxed);
      Result<RelationPtr> fresh = compute();
      if (fresh.ok() && result_bytes != nullptr) {
        *result_bytes = fresh.ValueOrDie()->ApproxBytes();
      }
      return fresh;
    }

    case Outcome::kWaitHit:
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      [[fallthrough]];
    case Outcome::kReadyHit: {
      // Outside the shard lock: a kWaitHit blocks here until the owner
      // fulfills the promise (never under a lock, so no deadlock).
      Result<RelationPtr> result = future.get();
      if (result.ok()) {
        // Ready hits use the size measured at insertion; only the rare
        // single-flight wait rescans the relation.
        if (outcome == Outcome::kWaitHit) {
          known_bytes = result.ValueOrDie()->ApproxBytes();
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        bytes_reused_.fetch_add(known_bytes, std::memory_order_relaxed);
        if (shared != nullptr) *shared = true;
        if (result_bytes != nullptr) *result_bytes = known_bytes;
      }
      return result;
    }

    case Outcome::kOwner:
      break;
  }

  // This caller owns the computation; it runs outside any lock.
  misses_.fetch_add(1, std::memory_order_relaxed);
  Result<RelationPtr> result = Status::Internal("operator compute skipped");
  try {
    result = compute();
  } catch (...) {
    // Fulfill waiters with the exception, drop the entry, rethrow.
    promise.set_exception(std::current_exception());
    shards_.WithShard(key, [&](Shards::Map& map, ShardState&) {
      auto it = map.find(key);
      if (it != map.end() && it->second == owned) map.erase(it);
      return 0;
    });
    throw;
  }
  promise.set_value(result);

  size_t computed_bytes =
      result.ok() ? result.ValueOrDie()->ApproxBytes() : 0;
  if (result_bytes != nullptr) *result_bytes = computed_bytes;
  // Budget weight includes the pinned input (what the entry retains;
  // see Entry::bytes for why a shared input is charged per entry);
  // measured here, outside the shard lock — ApproxBytes is O(rows).
  size_t budget_bytes = computed_bytes;
  if (result.ok() && owned->pinned_input != nullptr) {
    budget_bytes += owned->pinned_input->ApproxBytes();
  }
  size_t evicted = 0;
  shards_.WithShard(key, [&](Shards::Map& map, ShardState& state) {
    auto it = map.find(key);
    if (it == map.end() || it->second != owned) return 0;  // fenced away
    if (!result.ok() ||
        key.epoch < fenced_epoch_.load(std::memory_order_acquire)) {
      // Failed computes are not cached (waiters already hold the error
      // through the shared future) — and neither is a result whose
      // epoch the store already fenced past mid-compute: completing
      // its insertion would resurrect an unreachable entry that no
      // future fence of the same epoch would ever drop. Entries AHEAD
      // of the fence stay: they are reachable by current-epoch lookups
      // (a store wired in without an explicit fence still caches), and
      // any later fence drops them with everything else.
      map.erase(it);
      return 0;
    }
    Entry& entry = *owned;
    entry.result_bytes = computed_bytes;
    entry.bytes = budget_bytes;
    state.lru.push_front(key);
    entry.lru_it = state.lru.begin();
    entry.ready = true;
    state.bytes += entry.bytes;
    // LRU eviction down to the shard budget — never the entry just
    // inserted, so an operator larger than the shard budget still
    // serves repeats (bounded overrun of one entry per shard; the
    // AnswerCache makes the same trade).
    while (state.bytes > per_shard_budget_ && state.lru.size() > 1) {
      const OperatorKey& victim_key = state.lru.back();
      auto victim = map.find(victim_key);
      state.bytes -= victim->second->bytes;
      map.erase(victim);
      state.lru.pop_back();
      ++evicted;
    }
    return 0;
  });
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return result;
}

OperatorStoreStats OperatorStore::stats() const {
  OperatorStoreStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.single_flight_waits =
      single_flight_waits_.load(std::memory_order_relaxed);
  stats.bytes_reused = bytes_reused_.load(std::memory_order_relaxed);
  stats.epoch_fences = epoch_fences_.load(std::memory_order_relaxed);
  stats.relation_fenced = relation_fenced_.load(std::memory_order_relaxed);
  shards_.ForEachShard(
      [&](const Shards::Map& map, const ShardState& state) {
        stats.entries += map.size();
        stats.bytes += state.bytes;
      });
  return stats;
}

void OperatorStore::Clear() { shards_.Clear(); }

}  // namespace osharing
}  // namespace urm
