#include "osharing/query_shape.h"

#include <algorithm>

#include "common/logging.h"

namespace urm {
namespace osharing {

using algebra::PlanKind;
using algebra::PlanNode;
using algebra::PlanPtr;

namespace {

/// Collects selections/products below the top chain; returns the
/// instance aliases of the subtree.
Status WalkBody(const PlanPtr& node, QueryShape* shape,
                std::vector<std::string>* aliases) {
  switch (node->kind) {
    case PlanKind::kScan:
      aliases->push_back(node->alias);
      return Status::OK();
    case PlanKind::kSelect: {
      shape->selections.push_back(node->predicate);
      return WalkBody(node->child, shape, aliases);
    }
    case PlanKind::kProduct: {
      std::vector<std::string> left, right;
      URM_RETURN_NOT_OK(WalkBody(node->child, shape, &left));
      URM_RETURN_NOT_OK(WalkBody(node->right, shape, &right));
      shape->products.push_back(ProductOp{left, right});
      aliases->insert(aliases->end(), left.begin(), left.end());
      aliases->insert(aliases->end(), right.begin(), right.end());
      return Status::OK();
    }
    case PlanKind::kProject:
    case PlanKind::kAggregate:
      return Status::NotImplemented(
          "o-sharing requires projections/aggregates on top of the plan");
    case PlanKind::kDistinct:
      return WalkBody(node->child, shape, aliases);
    case PlanKind::kRelationLeaf:
      return Status::InvalidArgument(
          "target queries must not contain materialized leaves");
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<QueryShape> DecomposeQuery(
    const reformulation::TargetQueryInfo& info) {
  QueryShape shape;
  const PlanNode* node = info.query.get();
  // Top chain: Distinct / Project / Aggregate, outermost first.
  std::vector<TopOp> tops_outer_first;
  while (true) {
    if (node->kind == PlanKind::kDistinct) {
      node = node->child.get();
      continue;
    }
    if (node->kind == PlanKind::kAggregate) {
      TopOp top;
      top.is_aggregate = true;
      top.agg = node->agg;
      top.agg_ref = node->agg_attr;
      tops_outer_first.push_back(std::move(top));
      node = node->child.get();
      continue;
    }
    if (node->kind == PlanKind::kProject) {
      TopOp top;
      top.project_refs = node->attrs;
      tops_outer_first.push_back(std::move(top));
      node = node->child.get();
      continue;
    }
    break;
  }
  shape.tops.assign(tops_outer_first.rbegin(), tops_outer_first.rend());

  // Body: selections and products over scans.
  std::vector<std::string> aliases;
  // Re-wrap the remaining subtree; find it in the original plan by
  // walking the same chain again (node is a raw pointer into it).
  PlanPtr body;
  {
    const PlanPtr* cur = &info.query;
    while (cur->get() != node) {
      cur = &(*cur)->child;
    }
    body = *cur;
  }
  URM_RETURN_NOT_OK(WalkBody(body, &shape, &aliases));
  URM_CHECK_EQ(aliases.size(), info.instances.size());
  return shape;
}

}  // namespace osharing
}  // namespace urm
