#include "live/ingest.h"

#include <string>
#include <utility>

namespace urm {
namespace live {

IngestController::IngestController(core::Engine* engine,
                                   service::QueryService* service,
                                   IngestOptions options)
    : engine_(engine), service_(service), options_(std::move(options)) {
  if (options_.enable_metrics) InitMetrics();
}

void IngestController::InitMetrics() {
  obs::Registry* registry = options_.metrics_registry != nullptr
                                ? options_.metrics_registry
                                : &obs::DefaultRegistry();
  std::vector<std::string> base_names;
  std::vector<std::string> base_values;
  for (const obs::Label& label : options_.metric_labels) {
    base_names.push_back(label.first);
    base_values.push_back(label.second);
  }
  auto names = [&](std::initializer_list<const char*> extra) {
    std::vector<std::string> out = base_names;
    for (const char* name : extra) out.emplace_back(name);
    return out;
  };
  auto values = [&](std::initializer_list<const char*> extra) {
    std::vector<std::string> out = base_values;
    for (const char* value : extra) out.emplace_back(value);
    return out;
  };
  metric_batches_ =
      registry
          ->CounterFamily("urm_ingest_batches_total",
                          "Delta batches applied to the catalog.",
                          base_names)
          .WithLabels(base_values);
  auto& rows = registry->CounterFamily(
      "urm_ingest_rows_total",
      "Rows affected by applied delta batches, by operation.",
      names({"op"}));
  metric_rows_insert_ = rows.WithLabels(values({"insert"}));
  metric_rows_update_ = rows.WithLabels(values({"update"}));
  metric_rows_delete_ = rows.WithLabels(values({"delete"}));
  metric_reencode_ =
      registry
          ->HistogramFamily(
              "urm_ingest_reencode_seconds",
              "Columnar re-encode wall time per applied batch (one "
              "re-encode per touched relation per batch, never per "
              "row).",
              obs::LatencyBuckets(), base_names)
          .WithLabels(base_values);
  auto& fenced = registry->CounterFamily(
      "urm_ingest_fenced_entries_total",
      "Cached entries invalidated by delta batches, by store.",
      names({"store"}));
  metric_fenced_answers_ = fenced.WithLabels(values({"answers"}));
  metric_fenced_operators_ = fenced.WithLabels(values({"operators"}));
}

Result<IngestReport> IngestController::Apply(
    const relational::DeltaBatch& batch) {
  if (options_.max_batch_ops > 0 && batch.ops.size() > options_.max_batch_ops) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "batch of " + std::to_string(batch.ops.size()) +
        " ops exceeds max_batch_ops = " +
        std::to_string(options_.max_batch_ops));
  }
  auto applied = engine_->ApplyDelta(batch);
  if (!applied.ok()) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    return applied.status();
  }
  const relational::ApplyResult& delta = applied.ValueOrDie();

  IngestReport report;
  report.data_epoch = delta.data_epoch;
  report.relations = delta.relations;
  report.rows_inserted = delta.rows_inserted;
  report.rows_updated = delta.rows_updated;
  report.rows_deleted = delta.rows_deleted;
  report.encode_seconds = delta.encode_seconds;
  if (service_ != nullptr) {
    service::FenceOutcome fenced = service_->FenceCatalogDelta(delta);
    report.fenced_answers = fenced.answers;
    report.fenced_operators = fenced.operators;
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  rows_inserted_.fetch_add(report.rows_inserted, std::memory_order_relaxed);
  rows_updated_.fetch_add(report.rows_updated, std::memory_order_relaxed);
  rows_deleted_.fetch_add(report.rows_deleted, std::memory_order_relaxed);
  fenced_answers_.fetch_add(report.fenced_answers, std::memory_order_relaxed);
  fenced_operators_.fetch_add(report.fenced_operators,
                              std::memory_order_relaxed);
  if (metric_batches_ != nullptr) {
    metric_batches_->Increment();
    metric_rows_insert_->Increment(report.rows_inserted);
    metric_rows_update_->Increment(report.rows_updated);
    metric_rows_delete_->Increment(report.rows_deleted);
    metric_reencode_->Observe(report.encode_seconds);
    metric_fenced_answers_->Increment(report.fenced_answers);
    metric_fenced_operators_->Increment(report.fenced_operators);
  }
  return report;
}

Status IngestController::ReconfigureMappings(
    std::vector<mapping::Mapping> mappings) {
  Status status = engine_->SetActiveMappings(std::move(mappings));
  if (status.ok()) {
    reconfigurations_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void IngestController::UseTopMappings(size_t h) {
  engine_->UseTopMappings(h);
  reconfigurations_.fetch_add(1, std::memory_order_relaxed);
}

IngestStats IngestController::stats() const {
  IngestStats out;
  out.batches = batches_.load(std::memory_order_relaxed);
  out.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  out.rows_inserted = rows_inserted_.load(std::memory_order_relaxed);
  out.rows_updated = rows_updated_.load(std::memory_order_relaxed);
  out.rows_deleted = rows_deleted_.load(std::memory_order_relaxed);
  out.fenced_answers = fenced_answers_.load(std::memory_order_relaxed);
  out.fenced_operators = fenced_operators_.load(std::memory_order_relaxed);
  out.reconfigurations = reconfigurations_.load(std::memory_order_relaxed);
  out.data_epoch = engine_->data_epoch();
  return out;
}

}  // namespace live
}  // namespace urm
