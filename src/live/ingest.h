#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "mapping/mapping.h"
#include "obs/metrics.h"
#include "relational/delta.h"
#include "service/query_service.h"

/// \file ingest.h
/// The live-update subsystem: keeps a serving stack (core::Engine +
/// service::QueryService) consistent while its catalog and mapping set
/// change under traffic.
///
/// An IngestController owns the two-step protocol a catalog delta
/// needs —
///   1. Engine::ApplyDelta swaps the touched relations for re-encoded
///      copies (one columnar re-encode per relation per batch, never
///      per row) and bumps the catalog data epoch;
///   2. QueryService::FenceCatalogDelta drops exactly the cached
///      answers and materialized operators the delta made stale
///      (delta-aware by default: entries over untouched relations
///      survive, so an update trickle against one relation does not
///      zero the hit rate for queries over the others)
/// — and reports it through the urm_ingest_* metric families. Mapping
/// hot-reconfiguration (swap / reweight / top-h restriction) rides the
/// same controller: the engine's mapping-epoch fence already
/// invalidates both stores, so reconfigure is a single engine call
/// plus bookkeeping.
///
/// Thread-safety: Apply / ReconfigureMappings / UseTopMappings may be
/// called concurrently with each other and with query traffic;
/// in-flight evaluations complete against their pinned snapshots.

namespace urm {
namespace live {

struct IngestOptions {
  /// Upper bound on ops per batch; larger batches are rejected with
  /// InvalidArgument (the HTTP tier maps it to 413). 0 = unbounded.
  size_t max_batch_ops = 4096;
  /// Report urm_ingest_* metrics into `metrics_registry`.
  bool enable_metrics = true;
  /// Registry to report into; null uses obs::DefaultRegistry(). Must
  /// outlive the controller.
  obs::Registry* metrics_registry = nullptr;
  /// Labels attached to every series (urm_server uses
  /// {{"schema", <target schema>}}).
  obs::Labels metric_labels;
};

/// Receipt for one applied batch: the catalog receipt plus what the
/// serving tier fenced.
struct IngestReport {
  uint64_t data_epoch = 0;             ///< catalog epoch after the batch
  std::vector<std::string> relations;  ///< distinct relations touched
  size_t rows_inserted = 0;
  size_t rows_updated = 0;
  size_t rows_deleted = 0;
  double encode_seconds = 0.0;         ///< columnar re-encode wall time
  size_t fenced_answers = 0;           ///< AnswerCache entries dropped
  size_t fenced_operators = 0;         ///< OperatorStore entries dropped
};

/// Monotonic controller-lifetime counters (for /v1/stats).
struct IngestStats {
  size_t batches = 0;
  size_t rejected_batches = 0;  ///< validation failures (no state change)
  size_t rows_inserted = 0;
  size_t rows_updated = 0;
  size_t rows_deleted = 0;
  size_t fenced_answers = 0;
  size_t fenced_operators = 0;
  size_t reconfigurations = 0;  ///< mapping swaps/reweights/top-h calls
  uint64_t data_epoch = 0;      ///< current catalog data epoch
};

/// \brief Applies delta batches and mapping reconfigurations to one
/// serving stack, fencing its caches and reporting metrics.
class IngestController {
 public:
  /// `engine` and `service` (a service over the same engine) must
  /// outlive the controller; `service` may be null for engine-only
  /// stacks (nothing to fence).
  IngestController(core::Engine* engine, service::QueryService* service,
                   IngestOptions options = IngestOptions());

  IngestController(const IngestController&) = delete;
  IngestController& operator=(const IngestController&) = delete;

  /// Validates and applies one batch, fences the service's caches, and
  /// returns the receipt. All-or-nothing: a validation failure
  /// (unknown relation, arity mismatch, oversized batch) leaves the
  /// catalog untouched.
  Result<IngestReport> Apply(const relational::DeltaBatch& batch);

  /// Hot-swaps / reweights the active mapping set under traffic (see
  /// core::Engine::SetActiveMappings). The mapping-epoch fence
  /// invalidates cached answers and operators on the next dispatch.
  Status ReconfigureMappings(std::vector<mapping::Mapping> mappings);

  /// Restricts the active set to the top h mappings under traffic (see
  /// core::Engine::UseTopMappings).
  void UseTopMappings(size_t h);

  IngestStats stats() const;

  const IngestOptions& options() const { return options_; }

 private:
  void InitMetrics();

  core::Engine* engine_;
  service::QueryService* service_;
  const IngestOptions options_;

  std::atomic<size_t> batches_{0};
  std::atomic<size_t> rejected_batches_{0};
  std::atomic<size_t> rows_inserted_{0};
  std::atomic<size_t> rows_updated_{0};
  std::atomic<size_t> rows_deleted_{0};
  std::atomic<size_t> fenced_answers_{0};
  std::atomic<size_t> fenced_operators_{0};
  std::atomic<size_t> reconfigurations_{0};

  /// Pre-resolved urm_ingest_* instruments (null when enable_metrics
  /// is off); families are shared across controllers on the same
  /// registry, kept apart by metric_labels.
  obs::Counter* metric_batches_ = nullptr;
  obs::Counter* metric_rows_insert_ = nullptr;
  obs::Counter* metric_rows_update_ = nullptr;
  obs::Counter* metric_rows_delete_ = nullptr;
  obs::Counter* metric_fenced_answers_ = nullptr;
  obs::Counter* metric_fenced_operators_ = nullptr;
  obs::Histogram* metric_reencode_ = nullptr;
};

}  // namespace live
}  // namespace urm
