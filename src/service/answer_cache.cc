#include "service/answer_cache.h"

namespace urm {
namespace service {

AnswerCache::Value AnswerCache::Get(const algebra::PlanFingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses++;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits++;
  return it->second->second;
}

void AnswerCache::Put(const algebra::PlanFingerprint& key, Value value) {
  if (capacity_ == 0 || value == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions++;
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

CacheStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace service
}  // namespace urm
