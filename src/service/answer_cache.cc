#include "service/answer_cache.h"

#include <algorithm>

#include "relational/relation.h"

namespace urm {
namespace service {

size_t ApproxResponseBytes(const core::Response& response) {
  size_t bytes = sizeof(core::Response);
  switch (response.kind) {
    case core::RequestKind::kEvaluate:
    case core::RequestKind::kSetOp:
      bytes += response.evaluate.answers.ApproxBytes();
      break;
    case core::RequestKind::kTopK:
      for (const auto& t : response.top_k.tuples) {
        bytes += relational::ApproxRowBytes(t.values) + 2 * sizeof(double);
      }
      break;
    case core::RequestKind::kThreshold:
      for (const auto& t : response.threshold.tuples) {
        bytes += relational::ApproxRowBytes(t.values) + 2 * sizeof(double);
      }
      break;
  }
  if (response.leaves != nullptr) {
    for (const auto& leaf : *response.leaves) {
      bytes += sizeof(core::RecordedLeaf) + sizeof(double);
      for (const auto& row : leaf.rows) {
        bytes += relational::ApproxRowBytes(row);
      }
    }
  }
  return bytes;
}

bool AnswerCache::Expired(const Entry& entry, Clock::time_point now) const {
  if (options_.ttl_seconds <= 0.0) return false;
  return std::chrono::duration<double>(now - entry.inserted).count() >
         options_.ttl_seconds;
}

void AnswerCache::DropOldest() {
  Entry& victim = lru_.back();
  bytes_ -= victim.bytes;
  index_.erase(victim.key);
  lru_.pop_back();
}

AnswerCache::Value AnswerCache::Get(const algebra::PlanFingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses++;
    return nullptr;
  }
  if (Expired(*it->second, Clock::now())) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    stats_.expirations++;
    stats_.misses++;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits++;
  return it->second->value;
}

void AnswerCache::Put(const algebra::PlanFingerprint& key, Value value) {
  if (options_.capacity_entries == 0 || value == nullptr) return;
  size_t bytes = ApproxResponseBytes(*value);
  std::lock_guard<std::mutex> lock(mu_);
  PutLocked(key, std::move(value), bytes, {}, UINT64_MAX);
}

void AnswerCache::Put(const algebra::PlanFingerprint& key, Value value,
                      uint64_t epoch) {
  // Legacy callers carry no data provenance: UINT64_MAX marks the
  // entry "never stale", so relation fences leave it alone.
  Put(key, std::move(value), epoch, {}, UINT64_MAX);
}

void AnswerCache::Put(const algebra::PlanFingerprint& key, Value value,
                      uint64_t epoch, std::vector<uint64_t> sources,
                      uint64_t data_epoch) {
  if (options_.capacity_entries == 0 || value == nullptr) return;
  size_t bytes = ApproxResponseBytes(*value);
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != fenced_epoch_.load(std::memory_order_relaxed)) {
    return;  // computed under a fenced-past epoch
  }
  if (StaleUnderChanges(sources, data_epoch)) {
    return;  // a source relation changed after this was computed
  }
  PutLocked(key, std::move(value), bytes, std::move(sources), data_epoch);
}

bool AnswerCache::StaleUnderChanges(const std::vector<uint64_t>& sources,
                                    uint64_t data_epoch) const {
  if (data_epoch == UINT64_MAX) return false;  // outside the delta protocol
  if (wildcard_change_epoch_ > data_epoch) return true;
  if (sources.empty()) {
    // Depends-on-everything: stale if ANY relation changed since.
    return max_change_epoch_ > data_epoch;
  }
  for (uint64_t source : sources) {
    auto it = changed_.find(source);
    if (it != changed_.end() && it->second > data_epoch) return true;
  }
  return false;
}

void AnswerCache::PutLocked(const algebra::PlanFingerprint& key, Value value,
                            size_t bytes, std::vector<uint64_t> sources,
                            uint64_t data_epoch) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ += bytes - it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    it->second->inserted = Clock::now();
    it->second->sources = std::move(sources);
    it->second->data_epoch = data_epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), bytes, Clock::now(),
                          std::move(sources), data_epoch});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
  }
  // Enforce both budgets, never evicting the entry just touched (an
  // answer larger than the whole byte budget still serves repeats).
  while (lru_.size() > options_.capacity_entries ||
         (options_.capacity_bytes > 0 && bytes_ > options_.capacity_bytes &&
          lru_.size() > 1)) {
    DropOldest();
    stats_.evictions++;
  }
}

void AnswerCache::FenceEpoch(uint64_t epoch) {
  // Fast path: between reconfigurations every dispatch fences with an
  // unchanged epoch — one atomic load, no contention with Get/Put.
  // Forward only: a worker holding a stale epoch must not clear
  // entries valid under a newer one (and then block their
  // re-insertion via the epoch-checked Put).
  if (epoch <= fenced_epoch_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= fenced_epoch_.load(std::memory_order_relaxed)) return;
  fenced_epoch_.store(epoch, std::memory_order_release);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.epoch_fences++;
}

size_t AnswerCache::FenceRelations(const std::vector<uint64_t>& changed,
                                   uint64_t data_epoch) {
  if (changed.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Record the changes first, so a Put racing with this fence (its
  // response computed before the delta, its Put arriving after) is
  // rejected by StaleUnderChanges rather than resurrecting stale data.
  for (uint64_t source : changed) {
    uint64_t& epoch = changed_[source];
    epoch = std::max(epoch, data_epoch);
  }
  max_change_epoch_ = std::max(max_change_epoch_, data_epoch);
  size_t fenced = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!StaleUnderChanges(it->sources, it->data_epoch)) {
      ++it;
      continue;
    }
    bytes_ -= it->bytes;
    index_.erase(it->key);
    it = lru_.erase(it);
    ++fenced;
  }
  stats_.relation_fenced += fenced;
  return fenced;
}

size_t AnswerCache::FenceAllRelations(uint64_t data_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  wildcard_change_epoch_ = std::max(wildcard_change_epoch_, data_epoch);
  max_change_epoch_ = std::max(max_change_epoch_, data_epoch);
  size_t fenced = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    // Entries at data_epoch or newer were computed against the
    // post-delta catalog (ApplyDelta bumps the epoch after the swap);
    // UINT64_MAX entries are outside the delta protocol entirely.
    if (it->data_epoch >= data_epoch) {
      ++it;
      continue;
    }
    bytes_ -= it->bytes;
    index_.erase(it->key);
    it = lru_.erase(it);
    ++fenced;
  }
  stats_.relation_fenced += fenced;
  return fenced;
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

CacheStats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace service
}  // namespace urm
