#pragma once

#include <memory>
#include <vector>

#include "algebra/fingerprint.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "service/answer_cache.h"

/// \file query_service.h
/// The concurrent query-serving tier on top of core::Engine. The paper
/// shares work across the h possible mappings of *one* query (q-sharing
/// §IV, o-sharing §V); this layer shares across *concurrent queries and
/// cores*:
///   * a batch is deduplicated by structural plan fingerprint, so an
///     identical (query, method) pair submitted twice evaluates once;
///   * distinct plans evaluate concurrently on a fixed thread pool;
///   * finished answers land in a bounded LRU cache keyed by
///     (plan fingerprint, method, mapping-set hash), so repeated
///     queries over an unchanged mapping set are served without
///     touching the engine;
///   * inside one evaluation, the mapping-partition loops can fan out
///     to the same pool (EvalOptions::parallelism), with deterministic
///     partition-order merges.
///
/// Quickstart:
/// \code
///   urm::service::QueryService svc(engine.get(), {});
///   auto q = urm::core::QueryById("Q1");
///   auto responses = svc.Submit({{q.query, urm::core::Method::kOSharing}});
///   responses[0].result->answers.ToString();
/// \endcode

namespace urm {
namespace service {

struct ServiceOptions {
  /// Worker threads in the shared pool (>= 0; 0 runs every request on
  /// the submitting thread, preserving single-threaded semantics).
  int num_threads = 4;
  /// Answer-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 256;
  /// Partition fan-out width inside one evaluation (see
  /// core::Engine::EvalOptions). 1 keeps each evaluation sequential;
  /// the pool is then used for inter-query concurrency only.
  int intra_query_parallelism = 1;
};

/// One query of a batch.
struct QueryRequest {
  algebra::PlanPtr query;
  core::Method method = core::Method::kOSharing;
};

/// Outcome for one request, in batch order.
struct QueryResponse {
  Status status;  ///< per-request; result is null unless ok
  algebra::PlanFingerprint fingerprint;
  std::shared_ptr<const baselines::MethodResult> result;
  /// Served from the answer cache (previous Submit).
  bool cache_hit = false;
  /// Shared the evaluation of an identical plan earlier in this batch.
  bool shared_in_batch = false;
};

/// \brief Concurrent batch-query service owning a pool and a cache.
///
/// Thread-safety: Submit may be called from multiple threads; the
/// engine must not be reconfigured (UseTopMappings) while submissions
/// are in flight. Reconfigurations between submissions are safe — the
/// mapping-set hash in the fingerprint keys the cache, so stale
/// entries can never be returned (they age out via LRU).
class QueryService {
 public:
  /// `engine` must outlive the service.
  QueryService(const core::Engine* engine, ServiceOptions options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates a batch: fingerprint, dedup, cache-check, then evaluate
  /// the distinct misses concurrently. Responses are in request order;
  /// per-request failures (e.g. a query over an unknown table) are
  /// reported in QueryResponse::status without failing the batch.
  std::vector<QueryResponse> Submit(const std::vector<QueryRequest>& batch);

  /// Single-request convenience wrapper.
  QueryResponse SubmitOne(const QueryRequest& request);

  /// Fingerprint a request exactly as Submit would (method + current
  /// mapping set folded into the context hash).
  algebra::PlanFingerprint Fingerprint(const QueryRequest& request) const;

  CacheStats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }

  const core::Engine& engine() const { return *engine_; }
  const ServiceOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }

 private:
  const core::Engine* engine_;
  ServiceOptions options_;
  ThreadPool pool_;
  AnswerCache cache_;
};

}  // namespace service
}  // namespace urm
