#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "algebra/fingerprint.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "osharing/operator_store.h"
#include "service/answer_cache.h"

/// \file query_service.h
/// The concurrent query-serving tier on top of core::Engine, built
/// around the unified request API (core/request.h). Every query kind —
/// method evaluation, top-k, set-op, threshold — enters as a
/// core::Request and flows through one pipeline:
///   * the full request (plans + kind parameters + the engine's
///     memoized mapping-set hash) is fingerprinted;
///   * identical requests are deduplicated — within a batch, against
///     evaluations already in flight, and against the bounded LRU
///     answer cache — so any repeated request evaluates once;
///   * distinct requests evaluate concurrently on a fixed thread pool,
///     and each evaluation can fan its mapping partitions out to the
///     same pool (intra_query_parallelism) and/or split the mapping
///     set into probability-renormalized shards evaluated concurrently
///     and merged deterministically (mapping_shards — the h ≫ 10³
///     scaling path; shard config is part of every fingerprint);
///   * completion is delivered as the caller prefers: a
///     std::future<QueryResponse> (SubmitAsync), a completion
///     callback, or a blocking wait (Submit);
///   * a core::AnswerSink streams u-trace leaf answers to the caller
///     while the evaluation is still running (o-sharing / top-k /
///     threshold paths).
///
/// Quickstart:
/// \code
///   urm::service::QueryService svc(engine.get(), {});
///   auto q = urm::core::QueryById("Q1");
///   // Sync:
///   auto r = svc.Submit(
///       urm::core::Request::MethodEval(q.query,
///                                      urm::core::Method::kOSharing));
///   r.response->evaluate.answers.ToString();
///   // Async with a future:
///   auto f = svc.SubmitAsync(urm::core::Request::TopK(q.query, 5));
///   f.get().response->top_k.tuples;
/// \endcode
///
/// Migration note: the {plan, method} QueryRequest batch API predates
/// the unified envelope. Submit(std::vector<QueryRequest>) and
/// SubmitOne remain as thin wrappers that convert to
/// core::Request::MethodEval — identical semantics — but new code
/// should submit core::Requests: only they cover top-k / set-op /
/// threshold, futures, callbacks, and streaming sinks.

namespace urm {
namespace service {

/// Pre-resolved metric instruments + registered stat bridges (defined
/// in the .cc; null when ServiceOptions::enable_metrics is off).
struct ServiceMetrics;

struct ServiceOptions {
  /// Worker threads in the shared pool (>= 0; 0 runs every request on
  /// the submitting/waiting thread, preserving single-threaded
  /// semantics — note that with 0 workers SubmitAsync futures only
  /// make progress while a Submit-style wait is draining the queue).
  int num_threads = 4;
  /// Answer-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 256;
  /// Answer-cache byte budget across entries (answer-set bytes, not
  /// entry count); 0 = unbounded bytes.
  size_t cache_capacity_bytes = 64ull << 20;
  /// Answer-cache entry TTL in seconds; 0 = never expire. Use for
  /// deployments where the source instance mutates out-of-band.
  double cache_ttl_seconds = 0.0;
  /// Partition fan-out width inside one evaluation (see
  /// core::Engine::EvalOptions). 1 keeps each evaluation sequential;
  /// the pool is then used for inter-query concurrency only.
  int intra_query_parallelism = 1;
  /// Evaluate every request over the mapping set partitioned into this
  /// many contiguous probability-renormalized shards, concurrently on
  /// the pool, merging per-shard answers deterministically (see
  /// core::Engine::EvalOptions::mapping_shards and
  /// mapping::ShardedMappingSet). <= 1 (default) evaluates the whole
  /// set in one pass. The shard count is folded into every request
  /// fingerprint, so cached answers key on the shard configuration;
  /// streaming (sink-bearing) requests ignore sharding and evaluate in
  /// one pass.
  int mapping_shards = 1;
  /// Share materialized o-sharing operators (selections + scans)
  /// across all evaluations of this service through one
  /// osharing::OperatorStore — concurrent and successive queries over
  /// the same catalog reuse each other's work (paper §IX). Disable to
  /// fall back to per-evaluation sharing only.
  bool share_operators = true;
  /// Operator-store byte budget (materialized relation bytes).
  size_t operator_store_bytes = 256ull << 20;
  /// Operator-store concurrency shards (rounded up to a power of two).
  size_t operator_store_shards = 16;
  /// How FenceCatalogDelta invalidates after a Catalog::ApplyDelta:
  /// true (default) fences only the answer-cache / operator-store
  /// entries whose source relations the delta touched, so an update
  /// trickle against one relation does not zero the hit rate for
  /// queries over the others; false falls back to fencing everything
  /// (the conservative control arm bench_live_traffic compares
  /// against).
  bool delta_aware_invalidation = true;
  /// Report serving-tier metrics — per-kind latency histograms,
  /// request outcomes, in-flight gauge, dedup joins, shard timing, and
  /// collect-time bridges for the cache / operator-store / pool stats
  /// — into `metrics_registry`. Off disables every metric touch (the
  /// bench's overhead config measures the difference).
  bool enable_metrics = true;
  /// Registry to report into; null uses obs::DefaultRegistry(). Must
  /// outlive the service.
  obs::Registry* metrics_registry = nullptr;
  /// Labels attached to every series this service emits (urm_server
  /// uses {{"schema", <target schema>}}), so multiple services can
  /// share one registry without their series colliding.
  obs::Labels metric_labels;
};

/// One query of a legacy batch (method evaluations only).
/// \deprecated Build core::Request envelopes instead.
struct QueryRequest {
  algebra::PlanPtr query;
  core::Method method = core::Method::kOSharing;
};

/// Outcome for one request.
struct QueryResponse {
  Status status;  ///< per-request; response is null unless ok
  algebra::PlanFingerprint fingerprint;
  /// The kind-tagged result envelope (see core::Response).
  std::shared_ptr<const core::Response> response;
  /// Convenience view of response->evaluate for the kEvaluate/kSetOp
  /// kinds (null otherwise); aliases `response`, no copy.
  std::shared_ptr<const baselines::MethodResult> result;
  /// Served from the answer cache (a previous submission).
  bool cache_hit = false;
  /// Shared an identical evaluation — earlier in the same batch, or
  /// already in flight from a concurrent submission.
  bool shared_in_batch = false;
};

/// Completion hook for SubmitAsync: runs on the evaluating thread
/// right before the future is fulfilled (or inline on the submitting
/// thread for immediate cache hits / validation errors), so its
/// effects are visible to whoever unblocks from future.get().
using CompletionCallback = std::function<void(const QueryResponse&)>;

/// Invalidation outcome of FenceCatalogDelta: entries dropped per
/// store.
struct FenceOutcome {
  size_t answers = 0;    ///< AnswerCache entries fenced
  size_t operators = 0;  ///< OperatorStore entries fenced
};

/// \brief Concurrent query service owning a pool, a cache, and the
/// in-flight dedup table.
///
/// Thread-safety: Submit / SubmitAsync may be called from multiple
/// threads, concurrently with engine reconfigurations (UseTopMappings /
/// SetActiveMappings — in-flight evaluations pin their mapping-set
/// snapshot and their responses are only cached if the epoch is still
/// current at completion) and with catalog deltas (Catalog::ApplyDelta
/// followed by FenceCatalogDelta here; see live::IngestController for
/// the assembled path). The mapping-set hash in every fingerprint keys
/// the cache, so stale entries can never be returned.
/// Destroying the service completes all outstanding futures first.
class QueryService {
 public:
  /// `engine` must outlive the service.
  QueryService(const core::Engine* engine, ServiceOptions options);

  /// Completes all outstanding futures, then unregisters the metric
  /// stat bridges from the registry.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one request for asynchronous evaluation and returns a
  /// future for its response. Cache hits and validation errors resolve
  /// immediately; otherwise the evaluation is scheduled on the pool,
  /// deduplicated against identical in-flight requests (joiners mark
  /// shared_in_batch). `sink` streams leaf answers as they are
  /// produced (see core::AnswerSink); a streaming request records its
  /// leaf sequence alongside the cached Response, so a later
  /// sink-bearing hit replays the identical stream instead of
  /// re-evaluating (a hit on a leafless entry — one produced without a
  /// sink — still evaluates fresh and upgrades the entry). Streaming
  /// requests bypass in-flight sharing, since a shared evaluation has
  /// no leaf stream to tap, and their responses only land in the cache
  /// when the service is not shard-configured (a streaming evaluation
  /// runs whole-set, which must not alias sharded cache keys). Streaming
  /// evaluations also ignore intra_query_parallelism (the parallel
  /// path replays buffered leaves only at the end, which would defeat
  /// time-to-first-answer). `callback`, if set, fires once, just
  /// before the future is fulfilled.
  std::future<QueryResponse> SubmitAsync(
      const core::Request& request, core::AnswerSink* sink = nullptr,
      CompletionCallback callback = nullptr);

  /// Synchronous single-request convenience: SubmitAsync + wait (the
  /// waiting thread helps drain the pool, so this works with
  /// num_threads = 0).
  QueryResponse Submit(const core::Request& request,
                       core::AnswerSink* sink = nullptr);

  /// Evaluates a batch of any request kinds: fingerprint, dedup within
  /// the batch, then SubmitAsync the distinct requests and wait for
  /// all. Responses are in request order; per-request failures (e.g. a
  /// query over an unknown table) are reported in
  /// QueryResponse::status without failing the batch.
  std::vector<QueryResponse> Submit(const std::vector<core::Request>& batch);

  /// Legacy batch entry point (method evaluations only).
  /// \deprecated Converts to core::Request::MethodEval and forwards.
  std::vector<QueryResponse> Submit(const std::vector<QueryRequest>& batch);

  /// Legacy single-request convenience wrapper.
  /// \deprecated Use Submit(const core::Request&).
  QueryResponse SubmitOne(const QueryRequest& request);

  /// Fingerprint a request exactly as Submit would: the full request
  /// envelope plus the engine's memoized mapping-set hash as context.
  algebra::PlanFingerprint Fingerprint(const core::Request& request) const;

  /// \deprecated Legacy overload; converts to core::Request::MethodEval.
  algebra::PlanFingerprint Fingerprint(const QueryRequest& request) const;

  /// Scan-byte accounting aggregated from every completed evaluation
  /// (the EvalStats storage counters of all four request kinds):
  /// columnar vs row selection counts and encoded vs logical bytes
  /// read. Monotonic over the service lifetime.
  struct StorageScanStats {
    uint64_t bytes_scanned = 0;
    uint64_t logical_bytes_scanned = 0;
    uint64_t columnar_scans = 0;
    uint64_t row_scans = 0;
  };

  StorageScanStats storage_scan_stats() const {
    StorageScanStats out;
    out.bytes_scanned = bytes_scanned_.load(std::memory_order_relaxed);
    out.logical_bytes_scanned =
        logical_bytes_scanned_.load(std::memory_order_relaxed);
    out.columnar_scans = columnar_scans_.load(std::memory_order_relaxed);
    out.row_scans = row_scans_.load(std::memory_order_relaxed);
    return out;
  }

  /// Invalidates cached state made stale by a catalog delta the
  /// caller just applied (engine()->ApplyDelta). With
  /// delta_aware_invalidation on, only answer-cache entries whose
  /// source footprint intersects the delta's relations and
  /// operator-store entries keyed on the replaced relation pointers
  /// are dropped; otherwise both stores are fully fenced. Racing Puts
  /// of pre-delta responses are rejected either way (the cache records
  /// the change epochs). Returns how many entries each store dropped.
  FenceOutcome FenceCatalogDelta(const relational::ApplyResult& delta);

  CacheStats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }

  /// Point-in-time pool occupancy (threads, queue depth, running
  /// tasks, total executed) — see ThreadPool::stats.
  PoolStats pool_stats() const { return pool_.stats(); }

  /// Counters of the shared operator store (zeroes when
  /// share_operators is off).
  osharing::OperatorStoreStats operator_store_stats() const {
    return operator_store_ != nullptr ? operator_store_->stats()
                                      : osharing::OperatorStoreStats();
  }

  const core::Engine& engine() const { return *engine_; }
  const ServiceOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }

 private:
  /// One scheduled evaluation plus everyone waiting on it.
  struct Work {
    core::Request request;
    algebra::PlanFingerprint fingerprint;
    core::AnswerSink* sink = nullptr;
    /// Dispatch time; anchors the submit-to-complete and
    /// submit-to-first-streamed-leaf latency observations.
    std::chrono::steady_clock::time_point submitted;
    /// Registered in in_flight_ (shareable; false for sink-bearing
    /// private evaluations).
    bool in_flight = false;
    struct Subscriber {
      std::promise<QueryResponse> promise;
      CompletionCallback callback;
      bool shared = false;  ///< joined an evaluation someone else owns
    };
    std::vector<Subscriber> subscribers;  ///< guarded by service mu_
  };

  /// Cache lookup, in-flight join, or new scheduling for a validated
  /// request; the returned future is fulfilled by RunWork (or
  /// immediately on a cache hit).
  std::future<QueryResponse> Dispatch(const core::Request& request,
                                      const algebra::PlanFingerprint& fp,
                                      core::AnswerSink* sink,
                                      CompletionCallback callback);

  /// Evaluates one Work item on a pool thread and publishes the
  /// response to cache and subscribers.
  void RunWork(const std::shared_ptr<Work>& work);

  /// Resolves every instrument child and registers the stat bridges
  /// (constructor, when enable_metrics is on).
  void InitMetrics();

  /// Blocks until `future` is ready, draining queued pool tasks on
  /// this thread while waiting.
  QueryResponse Wait(std::future<QueryResponse> future);

  const core::Engine* engine_;
  ServiceOptions options_;
  AnswerCache cache_;
  /// Cross-query memo of materialized o-sharing operators, shared by
  /// every evaluation (and every parallel branch within one); fenced
  /// on mapping-epoch changes. Null when share_operators is off.
  std::unique_ptr<osharing::OperatorStore> operator_store_;
  /// Pre-resolved instruments + registered stat bridges; null when
  /// enable_metrics is off. Declared before pool_ so in-flight
  /// evaluations can still report while the pool drains in ~pool_.
  std::unique_ptr<ServiceMetrics> metrics_;
  /// Storage scan accounting, accumulated lock-free by RunWork from
  /// each evaluation's EvalStats (read by storage_scan_stats and the
  /// urm_storage_* metric bridges).
  std::atomic<uint64_t> bytes_scanned_{0};
  std::atomic<uint64_t> logical_bytes_scanned_{0};
  std::atomic<uint64_t> columnar_scans_{0};
  std::atomic<uint64_t> row_scans_{0};
  mutable std::mutex mu_;  ///< guards in_flight_ + Work::subscribers
  std::unordered_map<algebra::PlanFingerprint, std::shared_ptr<Work>,
                     algebra::PlanFingerprintHash>
      in_flight_;
  /// Last member: destroyed (drained + joined) first, while the cache
  /// and in-flight table its tasks touch are still alive.
  ThreadPool pool_;
};

}  // namespace service
}  // namespace urm
