#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "algebra/fingerprint.h"
#include "core/request.h"

/// \file answer_cache.h
/// Bounded LRU cache from request fingerprints to responses — the
/// paper's MQO spirit (share work across identical queries) lifted to
/// the serving tier: a repeated request of any kind (method
/// evaluation, top-k, set-op, threshold) over an unchanged mapping set
/// is answered without touching the engine at all.

namespace urm {
namespace service {

/// Cache counters (monotonic except `entries`).
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t entries = 0;
};

/// \brief Thread-safe bounded LRU keyed by PlanFingerprint.
///
/// Values are shared_ptr<const core::Response>, so hits are zero-copy
/// and entries evicted while a caller still holds the response stay
/// valid. Capacity 0 disables the cache (Get always misses, Put
/// drops).
class AnswerCache {
 public:
  using Value = std::shared_ptr<const core::Response>;

  explicit AnswerCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result (promoting it to most-recently-used),
  /// or nullptr on miss.
  Value Get(const algebra::PlanFingerprint& key);

  /// Inserts or refreshes `value`, evicting the least-recently-used
  /// entry when over capacity.
  void Put(const algebra::PlanFingerprint& key, Value value);

  void Clear();

  size_t capacity() const { return capacity_; }
  CacheStats stats() const;

 private:
  using Entry = std::pair<algebra::PlanFingerprint, Value>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<algebra::PlanFingerprint, std::list<Entry>::iterator,
                     algebra::PlanFingerprintHash>
      index_;
  CacheStats stats_;
};

}  // namespace service
}  // namespace urm
