#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/fingerprint.h"
#include "core/request.h"

/// \file answer_cache.h
/// Bounded LRU cache from request fingerprints to responses — the
/// paper's MQO spirit (share work across identical queries) lifted to
/// the serving tier: a repeated request of any kind (method
/// evaluation, top-k, set-op, threshold) over an unchanged mapping set
/// is answered without touching the engine at all.
///
/// Entries are weighed by their answer-set bytes (a one-tuple COUNT
/// result no longer costs the same budget as a million-row answer) and
/// bounded by both an entry count and a byte budget. Entries can
/// expire by TTL, and FenceEpoch drops everything on a mapping-set
/// reconfiguration — the fingerprint already keys on the mapping-set
/// hash, so stale entries were unreachable; the fence reclaims their
/// memory instead of waiting for LRU churn.

namespace urm {
namespace service {

/// Cache counters (monotonic except `entries` / `bytes`).
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;    ///< dropped by the entry/byte budgets
  size_t expirations = 0;  ///< dropped because their TTL elapsed
  /// FenceEpoch calls that actually advanced the epoch and dropped
  /// entries (mapping-set reconfigurations observed by this cache).
  size_t epoch_fences = 0;
  /// Entries dropped by FenceRelations / FenceAllRelations (catalog
  /// delta invalidation).
  size_t relation_fenced = 0;
  size_t entries = 0;
  size_t bytes = 0;        ///< current answer bytes held
};

struct AnswerCacheOptions {
  /// Maximum entries; 0 disables the cache entirely.
  size_t capacity_entries = 256;
  /// Maximum total answer bytes across entries; 0 = no byte bound.
  size_t capacity_bytes = 64ull << 20;
  /// Entry lifetime in seconds; 0 = entries never expire. Expiry is
  /// checked on Get (an expired entry counts as a miss).
  double ttl_seconds = 0.0;
};

/// Approximate answer payload bytes of a response, by kind: the
/// AnswerSet tuples (evaluate/set-op) or the bound-carrying tuple lists
/// (top-k/threshold).
size_t ApproxResponseBytes(const core::Response& response);

/// \brief Thread-safe bounded LRU keyed by PlanFingerprint.
///
/// Values are shared_ptr<const core::Response>, so hits are zero-copy
/// and entries evicted while a caller still holds the response stay
/// valid.
class AnswerCache {
 public:
  using Value = std::shared_ptr<const core::Response>;

  explicit AnswerCache(AnswerCacheOptions options) : options_(options) {}

  /// Returns the cached result (promoting it to most-recently-used),
  /// or nullptr on miss. An entry past its TTL is dropped and misses.
  Value Get(const algebra::PlanFingerprint& key);

  /// Inserts or refreshes `value`, evicting least-recently-used
  /// entries while over the entry or byte budget.
  void Put(const algebra::PlanFingerprint& key, Value value);

  /// Like Put, but drops `value` when `epoch` no longer matches the
  /// last fenced epoch: a response computed under a mapping set the
  /// cache has fenced past must not repopulate it — its fingerprint is
  /// unreachable by any current-epoch request, and no future fence of
  /// the same epoch would ever drop it.
  void Put(const algebra::PlanFingerprint& key, Value value, uint64_t epoch);

  /// Delta-aware Put: additionally records which source relations the
  /// response read (`sources`, sorted FNV-1a name hashes from
  /// Engine::SourceFootprint; empty = depends on every relation) and
  /// the catalog data epoch it was computed under. The value is
  /// dropped when any of its sources — or, with empty sources, any
  /// relation at all — changed after `data_epoch` (the response may
  /// already be stale), mirroring the mapping-epoch check.
  void Put(const algebra::PlanFingerprint& key, Value value, uint64_t epoch,
           std::vector<uint64_t> sources, uint64_t data_epoch);

  /// Explicit invalidation hook for mapping-set reconfigurations:
  /// drops every entry when `epoch` advances past the last fenced
  /// epoch (Engine::mapping_epoch; forward only, so a worker holding a
  /// stale epoch cannot clear entries valid under a newer one). Cheap
  /// no-op between reconfigurations.
  void FenceEpoch(uint64_t epoch);

  /// Delta-aware invalidation for a catalog delta that produced
  /// `data_epoch` and touched the relations in `changed` (FNV-1a name
  /// hashes): drops every entry computed before `data_epoch` whose
  /// source set intersects `changed` (or is empty = depends-on-all),
  /// records the change epochs so racing Puts of pre-delta responses
  /// are rejected, and returns the number of entries dropped. Entries
  /// over untouched relations survive — the point of delta-aware
  /// invalidation.
  size_t FenceRelations(const std::vector<uint64_t>& changed,
                        uint64_t data_epoch);

  /// Full-fence fallback: every entry computed before `data_epoch` is
  /// dropped regardless of its sources (and racing pre-delta Puts are
  /// rejected via the recorded wildcard change). The control arm of
  /// the delta-aware-vs-full-fence comparison.
  size_t FenceAllRelations(uint64_t data_epoch);

  void Clear();

  size_t capacity() const { return options_.capacity_entries; }
  const AnswerCacheOptions& options() const { return options_; }
  CacheStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    algebra::PlanFingerprint key;
    Value value;
    size_t bytes = 0;
    Clock::time_point inserted;
    /// Source-relation name hashes (sorted) + catalog data epoch at
    /// computation — the delta-aware invalidation keys. Entries from
    /// the legacy Put carry {} / UINT64_MAX ("never stale"), keeping
    /// standalone cache users outside the delta protocol untouched.
    std::vector<uint64_t> sources;
    uint64_t data_epoch = UINT64_MAX;
  };

  bool Expired(const Entry& entry, Clock::time_point now) const;
  /// Unlinks lru_.back() from both structures (caller holds mu_).
  void DropOldest();
  /// Insert/refresh + budget enforcement (caller holds mu_).
  void PutLocked(const algebra::PlanFingerprint& key, Value value,
                 size_t bytes, std::vector<uint64_t> sources,
                 uint64_t data_epoch);
  /// Whether a response with these provenance marks is already stale
  /// under the recorded relation changes (caller holds mu_).
  bool StaleUnderChanges(const std::vector<uint64_t>& sources,
                         uint64_t data_epoch) const;

  const AnswerCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<algebra::PlanFingerprint, std::list<Entry>::iterator,
                     algebra::PlanFingerprintHash>
      index_;
  size_t bytes_ = 0;
  /// Atomic so the per-dispatch FenceEpoch no-op path (every request,
  /// between reconfigurations) is one load that never contends with
  /// concurrent Get/Put on mu_.
  std::atomic<uint64_t> fenced_epoch_{0};
  /// Relation change log (guarded by mu_): relation name hash -> data
  /// epoch of its last observed change, plus the max over all of them
  /// (for empty-source entries) and the wildcard epoch recorded by
  /// full fences. Bounded by the catalog's relation count.
  std::unordered_map<uint64_t, uint64_t> changed_;
  uint64_t max_change_epoch_ = 0;
  uint64_t wildcard_change_epoch_ = 0;
  CacheStats stats_;
};

}  // namespace service
}  // namespace urm
