#include "service/query_service.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/hash_util.h"

namespace urm {
namespace service {

namespace {

/// Folds the evaluation method and the engine's active mapping-set
/// hash into the fingerprint context, so a cache entry can never
/// survive a method switch or a mapping-set reconfiguration.
uint64_t ContextHash(uint64_t mapping_set_hash, core::Method method) {
  size_t seed = static_cast<size_t>(mapping_set_hash);
  HashCombine(seed, static_cast<size_t>(method) + 1);
  return static_cast<uint64_t>(seed);
}

}  // namespace

QueryService::QueryService(const core::Engine* engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      pool_(options.num_threads),
      cache_(options.cache_capacity) {
  URM_CHECK(engine != nullptr);
}

algebra::PlanFingerprint QueryService::Fingerprint(
    const QueryRequest& request) const {
  return algebra::MakeFingerprint(
      request.query,
      ContextHash(mapping::MappingSetHash(engine_->mappings()),
                  request.method));
}

std::vector<QueryResponse> QueryService::Submit(
    const std::vector<QueryRequest>& batch) {
  std::vector<QueryResponse> responses(batch.size());
  if (batch.empty()) return responses;

  // Fingerprint every request and group identical plans: the first
  // occurrence of a fingerprint owns the work item, later occurrences
  // share its result.
  struct WorkItem {
    size_t first_request = 0;
    std::shared_ptr<const baselines::MethodResult> result;
    Status status;
    bool cache_hit = false;
  };
  std::vector<WorkItem> work;
  std::unordered_map<algebra::PlanFingerprint, size_t,
                     algebra::PlanFingerprintHash>
      by_fingerprint;
  std::vector<size_t> work_of_request(batch.size(), SIZE_MAX);
  // The mapping set cannot change mid-Submit; hash it once per batch.
  const uint64_t set_hash = mapping::MappingSetHash(engine_->mappings());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].query == nullptr) {
      responses[i].status = Status::InvalidArgument("null query plan");
      continue;
    }
    responses[i].fingerprint = algebra::MakeFingerprint(
        batch[i].query, ContextHash(set_hash, batch[i].method));
    auto [it, inserted] =
        by_fingerprint.emplace(responses[i].fingerprint, work.size());
    if (inserted) {
      WorkItem item;
      item.first_request = i;
      work.push_back(std::move(item));
    } else {
      responses[i].shared_in_batch = true;
    }
    work_of_request[i] = it->second;
  }

  // Serve what the cache already has, then evaluate the distinct
  // misses concurrently. Tasks may fan out further (intra-query
  // parallelism) onto the same pool; ParallelFor's help-loop makes the
  // nesting deadlock-free.
  std::vector<size_t> misses;
  for (size_t w = 0; w < work.size(); ++w) {
    auto cached = cache_.Get(responses[work[w].first_request].fingerprint);
    if (cached != nullptr) {
      work[w].result = std::move(cached);
      work[w].cache_hit = true;
    } else {
      misses.push_back(w);
    }
  }
  core::Engine::EvalOptions eval;
  eval.parallelism = options_.intra_query_parallelism;
  eval.pool = &pool_;
  pool_.ParallelFor(misses.size(), [&](size_t n) {
    WorkItem& item = work[misses[n]];
    const QueryRequest& request = batch[item.first_request];
    auto result = engine_->Evaluate(request.query, request.method, eval);
    if (!result.ok()) {
      item.status = result.status();
      return;
    }
    item.result = std::make_shared<const baselines::MethodResult>(
        std::move(result).ValueOrDie());
  });
  for (size_t w : misses) {
    if (work[w].status.ok()) {
      cache_.Put(responses[work[w].first_request].fingerprint,
                 work[w].result);
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    if (work_of_request[i] == SIZE_MAX) continue;  // null query
    const WorkItem& item = work[work_of_request[i]];
    responses[i].status = item.status;
    responses[i].result = item.result;
    responses[i].cache_hit = item.cache_hit;
    // A duplicate of a cached plan was served by the cache, not by an
    // in-batch evaluation.
    if (item.cache_hit) responses[i].shared_in_batch = false;
  }
  return responses;
}

QueryResponse QueryService::SubmitOne(const QueryRequest& request) {
  return Submit({request}).front();
}

}  // namespace service
}  // namespace urm
