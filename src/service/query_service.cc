#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "mapping/sharded.h"

namespace urm {
namespace service {

namespace {

/// Fills the convenience MethodResult view for the evaluate-shaped
/// kinds: an aliasing pointer into the shared Response, no copy.
void AttachLegacyResult(QueryResponse* response) {
  if (response->response == nullptr) return;
  if (response->response->kind == core::RequestKind::kEvaluate ||
      response->response->kind == core::RequestKind::kSetOp) {
    response->result = std::shared_ptr<const baselines::MethodResult>(
        response->response, &response->response->evaluate);
  }
}

/// Immediately-resolved future (cache hits, validation errors).
std::future<QueryResponse> ReadyFuture(const QueryResponse& response) {
  std::promise<QueryResponse> promise;
  promise.set_value(response);
  return promise.get_future();
}

}  // namespace

namespace {

AnswerCacheOptions MakeCacheOptions(const ServiceOptions& options) {
  AnswerCacheOptions cache;
  cache.capacity_entries = options.cache_capacity;
  cache.capacity_bytes = options.cache_capacity_bytes;
  cache.ttl_seconds = options.cache_ttl_seconds;
  return cache;
}

}  // namespace

QueryService::QueryService(const core::Engine* engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      cache_(MakeCacheOptions(options)),
      pool_(options.num_threads) {
  URM_CHECK(engine != nullptr);
  if (options_.share_operators) {
    osharing::OperatorStoreOptions store_options;
    store_options.max_bytes = options_.operator_store_bytes;
    store_options.num_shards = options_.operator_store_shards;
    operator_store_ =
        std::make_unique<osharing::OperatorStore>(store_options);
  }
}

algebra::PlanFingerprint QueryService::Fingerprint(
    const core::Request& request) const {
  // The engine memoizes the mapping-set hash per reconfiguration
  // epoch, so fingerprinting is O(plan size), not O(h mappings). The
  // shard configuration is folded in (O(1), no shard materialization):
  // sharded and unsharded evaluations of the same request agree only
  // to ~1e-12, so their cached answers must not alias.
  return core::FingerprintRequest(
      request, mapping::ShardContextHash(
                   engine_->mapping_set_hash(),
                   static_cast<size_t>(std::max(options_.mapping_shards, 1))));
}

algebra::PlanFingerprint QueryService::Fingerprint(
    const QueryRequest& request) const {
  return Fingerprint(core::Request::MethodEval(request.query, request.method));
}

std::future<QueryResponse> QueryService::SubmitAsync(
    const core::Request& request, core::AnswerSink* sink,
    CompletionCallback callback) {
  Status valid = core::ValidateRequest(request);
  if (!valid.ok()) {
    QueryResponse response;
    response.status = valid;
    // Same contract as an engine-side failure: the sink's completion
    // hook fires exactly once even when nothing was evaluated.
    if (sink != nullptr) sink->OnComplete(valid);
    if (callback) callback(response);
    return ReadyFuture(response);
  }
  return Dispatch(request, Fingerprint(request), sink, std::move(callback));
}

std::future<QueryResponse> QueryService::Dispatch(
    const core::Request& request, const algebra::PlanFingerprint& fp,
    core::AnswerSink* sink, CompletionCallback callback) {
  // Mapping-epoch invalidation hook: entries cached before a
  // reconfiguration are unreachable anyway (the fingerprint contains
  // the mapping-set hash); the fence frees their memory instead of
  // letting them age out through the LRU.
  cache_.FenceEpoch(engine_->mapping_epoch());
  if (sink == nullptr) {
    // Cache probe and in-flight lookup under one lock: a finishing
    // evaluation Puts before erasing its in-flight entry, so a
    // submitter always sees the response via one of the two — never a
    // duplicate evaluation. Both probes are O(1); evaluations never
    // run under mu_.
    std::unique_lock<std::mutex> lock(mu_);
    if (auto cached = cache_.Get(fp)) {
      lock.unlock();
      QueryResponse response;
      response.fingerprint = fp;
      response.response = std::move(cached);
      response.cache_hit = true;
      AttachLegacyResult(&response);
      if (callback) callback(response);
      return ReadyFuture(response);
    }
    auto it = in_flight_.find(fp);
    if (it != in_flight_.end()) {
      Work::Subscriber subscriber;
      subscriber.callback = std::move(callback);
      subscriber.shared = true;
      auto future = subscriber.promise.get_future();
      it->second->subscribers.push_back(std::move(subscriber));
      return future;
    }
    auto work = std::make_shared<Work>();
    work->request = request;
    work->fingerprint = fp;
    work->in_flight = true;
    Work::Subscriber subscriber;
    subscriber.callback = std::move(callback);
    auto future = subscriber.promise.get_future();
    work->subscribers.push_back(std::move(subscriber));
    in_flight_.emplace(fp, work);
    lock.unlock();
    pool_.Submit([this, work] { RunWork(work); });
    return future;
  }

  // Streaming requests are private evaluations: no cache lookup, no
  // in-flight sharing — the sink must observe every leaf of its own
  // fresh u-trace. The finished response is still published to the
  // cache for later non-streaming submissions.
  auto work = std::make_shared<Work>();
  work->request = request;
  work->fingerprint = fp;
  work->sink = sink;
  Work::Subscriber subscriber;
  subscriber.callback = std::move(callback);
  auto future = subscriber.promise.get_future();
  work->subscribers.push_back(std::move(subscriber));
  pool_.Submit([this, work] { RunWork(work); });
  return future;
}

void QueryService::RunWork(const std::shared_ptr<Work>& work) {
  // The epoch this evaluation runs under; the post-evaluation cache
  // Put is epoch-checked so a response computed before a concurrent
  // reconfiguration's fence cannot repopulate the fenced cache.
  const uint64_t epoch = engine_->mapping_epoch();
  core::Engine::EvalOptions eval;
  // Streaming evaluations stay sequential: the parallel o-sharing path
  // buffers leaves per partition and replays them only after the
  // barrier, which would push the first streamed answer to completion
  // time — the opposite of what a sink is for.
  eval.parallelism =
      work->sink != nullptr ? 1 : options_.intra_query_parallelism;
  // Sharded evaluation: the engine splits the mapping set into
  // contiguous renormalized shards and fans them out on the pool.
  // Streaming requests evaluate whole-set (a sharded merge has no
  // global leaf order to stream); the engine enforces the same rule,
  // but zeroing it here keeps the dispatch intent explicit.
  eval.mapping_shards =
      work->sink != nullptr ? 1 : options_.mapping_shards;
  eval.pool = &pool_;
  eval.sink = work->sink;
  if (operator_store_ != nullptr) {
    // Drop shared materializations from before a UseTopMappings
    // reconfiguration (entries are also epoch-keyed; the fence just
    // reclaims their memory promptly).
    operator_store_->FenceEpoch(epoch);
    eval.operator_store = operator_store_.get();
  }
  QueryResponse base;
  base.fingerprint = work->fingerprint;
  // An exception escaping the evaluation must not abandon the
  // subscribers' promises (future.get() would throw broken_promise and
  // callbacks / OnComplete would never fire); fold it into the
  // per-request status like any other evaluation failure.
  try {
    auto result = engine_->Run(work->request, eval);
    if (result.ok()) {
      base.response = std::make_shared<const core::Response>(
          std::move(result).ValueOrDie());
      AttachLegacyResult(&base);
    } else {
      base.status = result.status();
    }
  } catch (const std::exception& e) {
    base.status = Status::Internal(std::string("evaluation threw: ") +
                                   e.what());
    if (work->sink != nullptr) work->sink->OnComplete(base.status);
  } catch (...) {
    base.status = Status::Internal("evaluation threw");
    if (work->sink != nullptr) work->sink->OnComplete(base.status);
  }

  // Publish to the cache before the in-flight entry disappears, so a
  // concurrent Dispatch always sees the response one way or the other;
  // the cache has its own lock, keeping mu_'s critical section O(1).
  // Exception: on a shard-configured service a streaming evaluation
  // ran whole-set (sinks bypass sharding), so its response must not be
  // published under the shard-folded fingerprint — sharded and
  // unsharded answers agree only to ~1e-12 and their cache entries
  // must never alias.
  const bool cacheable =
      work->sink == nullptr || options_.mapping_shards <= 1;
  if (base.status.ok() && cacheable) {
    cache_.Put(work->fingerprint, base.response, epoch);
  }
  std::vector<Work::Subscriber> subscribers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (work->in_flight) in_flight_.erase(work->fingerprint);
    subscribers = std::move(work->subscribers);
  }
  for (auto& subscriber : subscribers) {
    QueryResponse response = base;
    response.shared_in_batch = subscriber.shared;
    // Callback strictly before the future is fulfilled: anything the
    // callback writes is visible to whoever unblocks from get().
    if (subscriber.callback) subscriber.callback(response);
    subscriber.promise.set_value(response);
  }
}

QueryResponse QueryService::Wait(std::future<QueryResponse> future) {
  // Helping drain keeps num_threads = 0 single-threaded semantics and
  // speeds batch waits: the submitting thread runs queued evaluations
  // instead of blocking.
  while (future.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool_.TryRunOne()) {
      // Queue drained: the evaluation is running on another thread.
      future.wait();
    }
  }
  return future.get();
}

QueryResponse QueryService::Submit(const core::Request& request,
                                   core::AnswerSink* sink) {
  return Wait(SubmitAsync(request, sink));
}

std::vector<QueryResponse> QueryService::Submit(
    const std::vector<core::Request>& batch) {
  std::vector<QueryResponse> responses(batch.size());
  if (batch.empty()) return responses;

  // Fingerprint every request and dedup inside the batch: the first
  // occurrence of a fingerprint owns the dispatch, later occurrences
  // copy its response. Cross-batch sharing (cache, in-flight) is
  // handled by Dispatch.
  std::unordered_map<algebra::PlanFingerprint, size_t,
                     algebra::PlanFingerprintHash>
      first_of;
  std::vector<size_t> owner(batch.size(), SIZE_MAX);
  std::vector<std::future<QueryResponse>> futures(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Status valid = core::ValidateRequest(batch[i]);
    if (!valid.ok()) {
      responses[i].status = valid;
      continue;
    }
    responses[i].fingerprint = Fingerprint(batch[i]);
    auto [it, inserted] = first_of.emplace(responses[i].fingerprint, i);
    owner[i] = it->second;
    if (inserted) {
      futures[i] = Dispatch(batch[i], responses[i].fingerprint, nullptr,
                            nullptr);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (owner[i] == i) responses[i] = Wait(std::move(futures[i]));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (owner[i] == SIZE_MAX || owner[i] == i) continue;
    responses[i] = responses[owner[i]];
    // A duplicate of a cached request was served by the cache, not by
    // an in-batch evaluation.
    responses[i].shared_in_batch = !responses[i].cache_hit;
  }
  return responses;
}

std::vector<QueryResponse> QueryService::Submit(
    const std::vector<QueryRequest>& batch) {
  std::vector<core::Request> requests;
  requests.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    requests.push_back(
        core::Request::MethodEval(request.query, request.method));
  }
  return Submit(requests);
}

QueryResponse QueryService::SubmitOne(const QueryRequest& request) {
  return Submit(std::vector<QueryRequest>{request}).front();
}

}  // namespace service
}  // namespace urm
