#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/hash_util.h"
#include "mapping/sharded.h"
#include "obs/log.h"

namespace urm {
namespace service {

namespace {

constexpr size_t kNumKinds = 4;  ///< core::RequestKind cardinality

/// Outcome label values for urm_requests_total.
enum Outcome { kEvaluated = 0, kCacheHit, kShared, kError, kNumOutcomes };

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case kEvaluated: return "evaluated";
    case kCacheHit: return "cache_hit";
    case kShared: return "shared";
    case kError: return "error";
    default: return "unknown";
  }
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wraps a caller sink to observe the submit-to-first-streamed-leaf
/// latency on the first OnAnswer, then forwards everything unchanged.
class FirstAnswerTimingSink : public core::AnswerSink {
 public:
  FirstAnswerTimingSink(core::AnswerSink* inner, obs::Histogram* histogram,
                        std::chrono::steady_clock::time_point submitted)
      : inner_(inner), histogram_(histogram), submitted_(submitted) {}

  bool OnAnswer(const std::vector<relational::Row>& rows,
                double probability) override {
    if (!observed_) {
      observed_ = true;
      histogram_->Observe(SecondsSince(submitted_));
    }
    return inner_->OnAnswer(rows, probability);
  }

  void OnComplete(const Status& status) override {
    inner_->OnComplete(status);
  }

 private:
  core::AnswerSink* inner_;
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point submitted_;
  bool observed_ = false;
};

/// Forwards leaves to the caller's sink while recording the complete
/// sequence for the cache, so a later sink-bearing hit can replay the
/// stream. Recording outlives a caller unsubscribe (the wrapper keeps
/// returning true and just stops forwarding): the cached trace must be
/// the full one, not the prefix one impatient client happened to take.
class RecordingSink : public core::AnswerSink {
 public:
  explicit RecordingSink(core::AnswerSink* inner) : inner_(inner) {}

  bool OnAnswer(const std::vector<relational::Row>& rows,
                double probability) override {
    leaves_.push_back({rows, probability});
    if (!unsubscribed_) unsubscribed_ = !inner_->OnAnswer(rows, probability);
    return true;
  }

  void OnComplete(const Status& status) override {
    inner_->OnComplete(status);
  }

  /// The recorded trace, surrendered once (for Response::leaves).
  std::shared_ptr<const std::vector<core::RecordedLeaf>> TakeLeaves() {
    return std::make_shared<const std::vector<core::RecordedLeaf>>(
        std::move(leaves_));
  }

 private:
  core::AnswerSink* inner_;
  std::vector<core::RecordedLeaf> leaves_;
  bool unsubscribed_ = false;
};

}  // namespace

/// Every instrument the service updates on the request path, resolved
/// once at construction (child lookups are locked; updates are not),
/// plus the collect-time bridges feeding the cache / operator-store /
/// pool stats structs into the registry without hot-path duplication.
struct ServiceMetrics {
  obs::Registry* registry = nullptr;
  obs::Counter* requests[kNumKinds][kNumOutcomes] = {};
  obs::Histogram* latency[kNumKinds] = {};       ///< submit -> complete
  obs::Histogram* first_answer[kNumKinds] = {};  ///< submit -> first leaf
  obs::Counter* dedup_joins = nullptr;
  obs::Gauge* in_flight = nullptr;
  obs::ShardMetrics shard;  ///< wired through EvalOptions
  std::vector<uint64_t> callback_ids;  ///< stat bridges to unregister
};

namespace {

/// Registers a one-series stat bridge: at Collect, `value` is read
/// from the component's own stats and emitted under `labels`.
void AddStatBridge(ServiceMetrics* metrics, const std::string& name,
                   const std::string& help, obs::MetricType type,
                   const obs::Labels& labels,
                   std::function<double()> value) {
  metrics->callback_ids.push_back(metrics->registry->AddCallback(
      name, help, type,
      [labels, value = std::move(value)](std::vector<obs::Sample>* out) {
        obs::Sample sample;
        sample.labels = labels;
        sample.value = value();
        out->push_back(std::move(sample));
      }));
}

/// One catalog walk shared by every urm_storage_* bridge. Collect
/// invokes each metric family's callback separately, so without this
/// a single scrape would walk all catalog relations (with four
/// per-column CodecCount passes each) seven times over. The walk is
/// cached for a short beat: the bridges of one scrape read the same
/// snapshot, and a later scrape past the TTL recomputes it.
class StorageStatsCache {
 public:
  explicit StorageStatsCache(const core::Engine* engine) : engine_(engine) {}

  relational::Catalog::StorageStats Get() {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (!valid_ || now - computed_at_ > kTtl) {
      stats_ = engine_->catalog().Storage();
      computed_at_ = now;
      valid_ = true;
    }
    return stats_;
  }

 private:
  static constexpr std::chrono::milliseconds kTtl{250};

  const core::Engine* engine_;
  std::mutex mu_;
  bool valid_ = false;
  std::chrono::steady_clock::time_point computed_at_{};
  relational::Catalog::StorageStats stats_;
};

}  // namespace

namespace {

/// Fills the convenience MethodResult view for the evaluate-shaped
/// kinds: an aliasing pointer into the shared Response, no copy.
void AttachLegacyResult(QueryResponse* response) {
  if (response->response == nullptr) return;
  if (response->response->kind == core::RequestKind::kEvaluate ||
      response->response->kind == core::RequestKind::kSetOp) {
    response->result = std::shared_ptr<const baselines::MethodResult>(
        response->response, &response->response->evaluate);
  }
}

/// Immediately-resolved future (cache hits, validation errors).
std::future<QueryResponse> ReadyFuture(const QueryResponse& response) {
  std::promise<QueryResponse> promise;
  promise.set_value(response);
  return promise.get_future();
}

}  // namespace

namespace {

AnswerCacheOptions MakeCacheOptions(const ServiceOptions& options) {
  AnswerCacheOptions cache;
  cache.capacity_entries = options.cache_capacity;
  cache.capacity_bytes = options.cache_capacity_bytes;
  cache.ttl_seconds = options.cache_ttl_seconds;
  return cache;
}

}  // namespace

QueryService::QueryService(const core::Engine* engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      cache_(MakeCacheOptions(options)),
      pool_(options.num_threads) {
  URM_CHECK(engine != nullptr);
  if (options_.share_operators) {
    osharing::OperatorStoreOptions store_options;
    store_options.max_bytes = options_.operator_store_bytes;
    store_options.num_shards = options_.operator_store_shards;
    operator_store_ =
        std::make_unique<osharing::OperatorStore>(store_options);
  }
  if (options_.enable_metrics) InitMetrics();
}

void QueryService::InitMetrics() {
  metrics_ = std::make_unique<ServiceMetrics>();
  ServiceMetrics& m = *metrics_;
  m.registry = options_.metrics_registry != nullptr
                   ? options_.metrics_registry
                   : &obs::DefaultRegistry();

  // Base label set every series carries (e.g. {"schema", <name>}),
  // extended per family; families are shared across services on the
  // same registry (registration is idempotent), so the base labels are
  // what keeps their series apart.
  std::vector<std::string> base_names;
  std::vector<std::string> base_values;
  for (const obs::Label& label : options_.metric_labels) {
    base_names.push_back(label.first);
    base_values.push_back(label.second);
  }
  auto names = [&](std::initializer_list<const char*> extra) {
    std::vector<std::string> out = base_names;
    for (const char* name : extra) out.emplace_back(name);
    return out;
  };
  auto values = [&](std::initializer_list<const char*> extra) {
    std::vector<std::string> out = base_values;
    for (const char* value : extra) out.emplace_back(value);
    return out;
  };

  auto& requests = m.registry->CounterFamily(
      "urm_requests_total",
      "Requests completed, by request kind and outcome (evaluated, "
      "cache_hit, shared, error).",
      names({"kind", "outcome"}));
  auto& latency = m.registry->HistogramFamily(
      "urm_request_latency_seconds",
      "Submit-to-complete latency of evaluated requests, by kind "
      "(includes queue wait; cache hits resolve inline and are not "
      "observed).",
      obs::LatencyBuckets(), names({"kind"}));
  auto& first_answer = m.registry->HistogramFamily(
      "urm_request_first_answer_seconds",
      "Submit-to-first-streamed-leaf latency of streaming requests, "
      "by kind.",
      obs::LatencyBuckets(), names({"kind"}));
  for (size_t k = 0; k < kNumKinds; ++k) {
    const char* kind = core::RequestKindName(static_cast<core::RequestKind>(k));
    for (size_t o = 0; o < kNumOutcomes; ++o) {
      m.requests[k][o] = requests.WithLabels(
          values({kind, OutcomeName(static_cast<Outcome>(o))}));
    }
    m.latency[k] = latency.WithLabels(values({kind}));
    m.first_answer[k] = first_answer.WithLabels(values({kind}));
  }
  m.dedup_joins =
      m.registry
          ->CounterFamily("urm_dedup_joins_total",
                          "Submissions that joined an identical in-flight "
                          "evaluation instead of scheduling their own.",
                          base_names)
          .WithLabels(base_values);
  m.in_flight =
      m.registry
          ->GaugeFamily("urm_inflight_requests",
                        "Evaluations currently queued or running.",
                        base_names)
          .WithLabels(base_values);
  m.shard.shard_seconds =
      m.registry
          ->HistogramFamily("urm_shard_seconds",
                            "Per-shard wall time of sharded evaluations.",
                            obs::LatencyBuckets(), base_names)
          .WithLabels(base_values);
  m.shard.shard_skew =
      m.registry
          ->HistogramFamily(
              "urm_shard_skew_ratio",
              "Slowest shard's wall time over the mean, per sharded "
              "run (1.0 = perfectly balanced split).",
              {1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0}, base_names)
          .WithLabels(base_values);

  // Collect-time bridges: the cache / store / pool already maintain
  // their counters; re-read them at scrape time instead of adding a
  // second set of hot-path increments.
  const obs::Labels& base = options_.metric_labels;
  AddStatBridge(&m, "urm_answer_cache_hits_total",
                "Answer-cache lookups served from the cache.",
                obs::MetricType::kCounter, base,
                [this] { return static_cast<double>(cache_.stats().hits); });
  AddStatBridge(&m, "urm_answer_cache_misses_total",
                "Answer-cache lookups that missed (including TTL "
                "expiries).",
                obs::MetricType::kCounter, base,
                [this] { return static_cast<double>(cache_.stats().misses); });
  AddStatBridge(
      &m, "urm_answer_cache_evictions_total",
      "Answer-cache entries dropped by the entry or byte budget.",
      obs::MetricType::kCounter, base,
      [this] { return static_cast<double>(cache_.stats().evictions); });
  AddStatBridge(
      &m, "urm_answer_cache_ttl_expiries_total",
      "Answer-cache entries dropped because their TTL elapsed.",
      obs::MetricType::kCounter, base,
      [this] { return static_cast<double>(cache_.stats().expirations); });
  AddStatBridge(
      &m, "urm_answer_cache_epoch_fences_total",
      "Mapping-set reconfiguration fences that cleared the cache.",
      obs::MetricType::kCounter, base,
      [this] { return static_cast<double>(cache_.stats().epoch_fences); });
  AddStatBridge(&m, "urm_answer_cache_entries",
                "Answer-cache entries currently held.",
                obs::MetricType::kGauge, base,
                [this] { return static_cast<double>(cache_.stats().entries); });
  AddStatBridge(&m, "urm_answer_cache_bytes",
                "Answer bytes currently held by the cache.",
                obs::MetricType::kGauge, base,
                [this] { return static_cast<double>(cache_.stats().bytes); });

  if (operator_store_ != nullptr) {
    osharing::OperatorStore* store = operator_store_.get();
    AddStatBridge(&m, "urm_operator_store_hits_total",
                  "Materialized operators served from the shared store.",
                  obs::MetricType::kCounter, base,
                  [store] { return static_cast<double>(store->stats().hits); });
    AddStatBridge(
        &m, "urm_operator_store_misses_total",
        "Operator lookups computed fresh.", obs::MetricType::kCounter,
        base, [store] { return static_cast<double>(store->stats().misses); });
    AddStatBridge(
        &m, "urm_operator_store_evictions_total",
        "Store entries dropped by the byte budget.",
        obs::MetricType::kCounter, base,
        [store] { return static_cast<double>(store->stats().evictions); });
    AddStatBridge(&m, "urm_operator_store_single_flight_waits_total",
                  "Hits that waited on an in-flight compute of the same "
                  "operator.",
                  obs::MetricType::kCounter, base, [store] {
                    return static_cast<double>(
                        store->stats().single_flight_waits);
                  });
    AddStatBridge(&m, "urm_operator_store_bytes_reused_total",
                  "Result bytes served from the store instead of "
                  "recomputed.",
                  obs::MetricType::kCounter, base, [store] {
                    return static_cast<double>(store->stats().bytes_reused);
                  });
    AddStatBridge(&m, "urm_operator_store_epoch_fences_total",
                  "Mapping-set reconfiguration fences that cleared the "
                  "store.",
                  obs::MetricType::kCounter, base, [store] {
                    return static_cast<double>(store->stats().epoch_fences);
                  });
    AddStatBridge(
        &m, "urm_operator_store_entries",
        "Materialized operators currently held.", obs::MetricType::kGauge,
        base, [store] { return static_cast<double>(store->stats().entries); });
    AddStatBridge(&m, "urm_operator_store_bytes",
                  "Budget-weighted bytes currently held by the store "
                  "(results plus pinned inputs).",
                  obs::MetricType::kGauge, base,
                  [store] { return static_cast<double>(store->stats().bytes); });
  }

  // Storage families: the compressed-catalog footprint (collect-time
  // reads of the engine catalog's encodings) plus the scan-byte
  // counters RunWork accumulates from every evaluation. Registered
  // unconditionally so the urm_storage_* families appear in every
  // scrape (tools/metrics_lint.py --require-storage enforces this).
  auto with_label = [&base](const char* key, const char* value) {
    obs::Labels out = base;
    out.emplace_back(key, value);
    return out;
  };
  auto storage = std::make_shared<StorageStatsCache>(engine_);
  AddStatBridge(&m, "urm_storage_encoded_bytes",
                "Compressed (encoded) bytes of all columnar-encoded "
                "catalog relations.",
                obs::MetricType::kGauge, base, [storage] {
                  return static_cast<double>(storage->Get().encoded_bytes);
                });
  AddStatBridge(&m, "urm_storage_logical_bytes",
                "Row-format bytes the same encoded relations would "
                "occupy (encoded/logical = compression ratio).",
                obs::MetricType::kGauge, base, [storage] {
                  return static_cast<double>(storage->Get().logical_bytes);
                });
  AddStatBridge(&m, "urm_storage_encoded_relations",
                "Catalog relations holding a live columnar encoding.",
                obs::MetricType::kGauge, base, [storage] {
                  return static_cast<double>(
                      storage->Get().encoded_relations);
                });
  struct CodecGauge {
    const char* label;
    size_t relational::Catalog::StorageStats::* field;
  };
  static constexpr CodecGauge kCodecGauges[] = {
      {"plain", &relational::Catalog::StorageStats::columns_plain},
      {"delta", &relational::Catalog::StorageStats::columns_delta},
      {"rle", &relational::Catalog::StorageStats::columns_rle},
      {"dictionary", &relational::Catalog::StorageStats::columns_dictionary},
  };
  for (const CodecGauge& gauge : kCodecGauges) {
    AddStatBridge(&m, "urm_storage_columns",
                  "Encoded catalog columns, by codec.",
                  obs::MetricType::kGauge, with_label("codec", gauge.label),
                  [storage, field = gauge.field] {
                    return static_cast<double>(storage->Get().*field);
                  });
  }
  AddStatBridge(&m, "urm_storage_bytes_scanned_total",
                "Bytes selections actually read: encoded bytes on the "
                "columnar path, touched-cell bytes on the row path.",
                obs::MetricType::kCounter, base, [this] {
                  return static_cast<double>(
                      bytes_scanned_.load(std::memory_order_relaxed));
                });
  AddStatBridge(&m, "urm_storage_logical_bytes_scanned_total",
                "Row-format bytes of the same scanned cells (the "
                "uncompressed cost of the scan mix).",
                obs::MetricType::kCounter, base, [this] {
                  return static_cast<double>(logical_bytes_scanned_.load(
                      std::memory_order_relaxed));
                });
  AddStatBridge(&m, "urm_storage_selection_scans_total",
                "Selections answered via codec-aware selection vectors "
                "on the encoded form.",
                obs::MetricType::kCounter, with_label("path", "columnar"),
                [this] {
                  return static_cast<double>(
                      columnar_scans_.load(std::memory_order_relaxed));
                });
  AddStatBridge(&m, "urm_storage_selection_scans_total",
                "Selections that fell back to the row-at-a-time loop.",
                obs::MetricType::kCounter, with_label("path", "row"),
                [this] {
                  return static_cast<double>(
                      row_scans_.load(std::memory_order_relaxed));
                });

  AddStatBridge(&m, "urm_pool_threads", "Worker threads in the pool.",
                obs::MetricType::kGauge, base,
                [this] { return static_cast<double>(pool_.stats().threads); });
  AddStatBridge(
      &m, "urm_pool_queue_depth", "Tasks queued and not yet started.",
      obs::MetricType::kGauge, base,
      [this] { return static_cast<double>(pool_.stats().queue_depth); });
  AddStatBridge(
      &m, "urm_pool_running_tasks", "Tasks currently executing.",
      obs::MetricType::kGauge, base,
      [this] { return static_cast<double>(pool_.stats().running_tasks); });
  AddStatBridge(
      &m, "urm_pool_tasks_executed_total", "Tasks completed by the pool.",
      obs::MetricType::kCounter, base,
      [this] { return static_cast<double>(pool_.stats().tasks_executed); });
}

QueryService::~QueryService() {
  // The stat bridges read members of this service at Collect time;
  // unregister them before any member is torn down. The pool drains in
  // ~pool_ afterwards — in-flight evaluations only touch pre-resolved
  // instruments, which live in the registry, not here.
  if (metrics_ != nullptr) {
    for (uint64_t id : metrics_->callback_ids) {
      metrics_->registry->RemoveCallback(id);
    }
  }
}

algebra::PlanFingerprint QueryService::Fingerprint(
    const core::Request& request) const {
  // The engine memoizes the mapping-set hash per reconfiguration
  // epoch, so fingerprinting is O(plan size), not O(h mappings). The
  // shard configuration is folded in (O(1), no shard materialization):
  // sharded and unsharded evaluations of the same request agree only
  // to ~1e-12, so their cached answers must not alias.
  return core::FingerprintRequest(
      request, mapping::ShardContextHash(
                   engine_->mapping_set_hash(),
                   static_cast<size_t>(std::max(options_.mapping_shards, 1))));
}

algebra::PlanFingerprint QueryService::Fingerprint(
    const QueryRequest& request) const {
  return Fingerprint(core::Request::MethodEval(request.query, request.method));
}

std::future<QueryResponse> QueryService::SubmitAsync(
    const core::Request& request, core::AnswerSink* sink,
    CompletionCallback callback) {
  Status valid = core::ValidateRequest(request);
  if (!valid.ok()) {
    QueryResponse response;
    response.status = valid;
    if (metrics_ != nullptr) {
      metrics_->requests[static_cast<size_t>(request.kind)][kError]
          ->Increment();
    }
    URM_LOG(Warn, "service")
        << core::RequestKindName(request.kind)
        << " request rejected: " << valid.message();
    // Same contract as an engine-side failure: the sink's completion
    // hook fires exactly once even when nothing was evaluated.
    if (sink != nullptr) sink->OnComplete(valid);
    if (callback) callback(response);
    return ReadyFuture(response);
  }
  return Dispatch(request, Fingerprint(request), sink, std::move(callback));
}

std::future<QueryResponse> QueryService::Dispatch(
    const core::Request& request, const algebra::PlanFingerprint& fp,
    core::AnswerSink* sink, CompletionCallback callback) {
  // Mapping-epoch invalidation hook: entries cached before a
  // reconfiguration are unreachable anyway (the fingerprint contains
  // the mapping-set hash); the fence frees their memory instead of
  // letting them age out through the LRU.
  cache_.FenceEpoch(engine_->mapping_epoch());
  if (sink == nullptr) {
    // Cache probe and in-flight lookup under one lock: a finishing
    // evaluation Puts before erasing its in-flight entry, so a
    // submitter always sees the response via one of the two — never a
    // duplicate evaluation. Both probes are O(1); evaluations never
    // run under mu_.
    std::unique_lock<std::mutex> lock(mu_);
    if (auto cached = cache_.Get(fp)) {
      lock.unlock();
      QueryResponse response;
      response.fingerprint = fp;
      response.response = std::move(cached);
      response.cache_hit = true;
      AttachLegacyResult(&response);
      if (metrics_ != nullptr) {
        metrics_->requests[static_cast<size_t>(request.kind)][kCacheHit]
            ->Increment();
      }
      if (callback) callback(response);
      return ReadyFuture(response);
    }
    auto it = in_flight_.find(fp);
    if (it != in_flight_.end()) {
      Work::Subscriber subscriber;
      subscriber.callback = std::move(callback);
      subscriber.shared = true;
      auto future = subscriber.promise.get_future();
      it->second->subscribers.push_back(std::move(subscriber));
      if (metrics_ != nullptr) metrics_->dedup_joins->Increment();
      return future;
    }
    auto work = std::make_shared<Work>();
    work->request = request;
    work->fingerprint = fp;
    work->in_flight = true;
    work->submitted = std::chrono::steady_clock::now();
    Work::Subscriber subscriber;
    subscriber.callback = std::move(callback);
    auto future = subscriber.promise.get_future();
    work->subscribers.push_back(std::move(subscriber));
    in_flight_.emplace(fp, work);
    lock.unlock();
    if (metrics_ != nullptr) metrics_->in_flight->Add();
    pool_.Submit([this, work] { RunWork(work); });
    return future;
  }

  // Streaming requests: a cache hit that recorded its leaf trace is
  // replayed through the sink — same frames, no evaluation. Entries
  // without a trace (cached by a non-streaming submission) fall
  // through to a fresh evaluation, which records the trace and
  // republishes, upgrading the entry for the next streaming hit.
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto cached = cache_.Get(fp);
    lock.unlock();
    if (cached != nullptr && cached->leaves != nullptr) {
      QueryResponse response;
      response.fingerprint = fp;
      response.response = std::move(cached);
      response.cache_hit = true;
      AttachLegacyResult(&response);
      if (metrics_ != nullptr) {
        metrics_->requests[static_cast<size_t>(request.kind)][kCacheHit]
            ->Increment();
      }
      bool subscribed = true;
      for (const auto& leaf : *response.response->leaves) {
        if (!subscribed) break;
        subscribed = sink->OnAnswer(leaf.rows, leaf.probability);
      }
      sink->OnComplete(Status::OK());
      if (callback) callback(response);
      return ReadyFuture(response);
    }
  }

  // Otherwise a streaming request is a private evaluation: no
  // in-flight sharing — the sink must observe every leaf of its own
  // fresh u-trace. The finished response (with the recorded trace) is
  // still published to the cache.
  auto work = std::make_shared<Work>();
  work->request = request;
  work->fingerprint = fp;
  work->sink = sink;
  work->submitted = std::chrono::steady_clock::now();
  Work::Subscriber subscriber;
  subscriber.callback = std::move(callback);
  auto future = subscriber.promise.get_future();
  work->subscribers.push_back(std::move(subscriber));
  if (metrics_ != nullptr) metrics_->in_flight->Add();
  pool_.Submit([this, work] { RunWork(work); });
  return future;
}

void QueryService::RunWork(const std::shared_ptr<Work>& work) {
  // The epoch this evaluation runs under; the post-evaluation cache
  // Put is epoch-checked so a response computed before a concurrent
  // reconfiguration's fence cannot repopulate the fenced cache.
  const uint64_t epoch = engine_->mapping_epoch();
  // Data provenance for delta-aware invalidation, captured BEFORE the
  // evaluation pins its catalog snapshot: the entry's recorded
  // data_epoch is then <= the epoch it actually read, so any delta
  // that could affect the response fences (or rejects the Put of) the
  // entry — conservative, never stale.
  const uint64_t data_epoch = engine_->data_epoch();
  std::vector<uint64_t> sources = engine_->SourceFootprint(work->request);
  core::Engine::EvalOptions eval;
  // Streaming evaluations stay sequential: the parallel o-sharing path
  // buffers leaves per partition and replays them only after the
  // barrier, which would push the first streamed answer to completion
  // time — the opposite of what a sink is for.
  eval.parallelism =
      work->sink != nullptr ? 1 : options_.intra_query_parallelism;
  // Sharded evaluation: the engine splits the mapping set into
  // contiguous renormalized shards and fans them out on the pool.
  // Streaming requests evaluate whole-set (a sharded merge has no
  // global leaf order to stream); the engine enforces the same rule,
  // but zeroing it here keeps the dispatch intent explicit.
  eval.mapping_shards =
      work->sink != nullptr ? 1 : options_.mapping_shards;
  eval.pool = &pool_;
  eval.sink = work->sink;
  const size_t kind_index = static_cast<size_t>(work->request.kind);
  // Time-to-first-leaf: wrap the caller's sink so the first streamed
  // answer stamps the first_answer histogram (the wrapper only needs
  // to outlive the synchronous evaluation in this frame).
  std::unique_ptr<FirstAnswerTimingSink> timing_sink;
  if (work->sink != nullptr && metrics_ != nullptr) {
    timing_sink = std::make_unique<FirstAnswerTimingSink>(
        work->sink, metrics_->first_answer[kind_index], work->submitted);
    eval.sink = timing_sink.get();
  }
  // Record the leaf trace alongside the response, so sink-bearing
  // cache hits replay the stream instead of re-evaluating (an empty
  // trace is meaningful too: non-streaming kinds replay as a bare
  // OnComplete, exactly like their fresh evaluation).
  std::unique_ptr<RecordingSink> recording_sink;
  if (work->sink != nullptr) {
    recording_sink = std::make_unique<RecordingSink>(eval.sink);
    eval.sink = recording_sink.get();
  }
  if (metrics_ != nullptr) eval.shard_metrics = &metrics_->shard;
  if (operator_store_ != nullptr) {
    // Drop shared materializations from before a UseTopMappings
    // reconfiguration (entries are also epoch-keyed; the fence just
    // reclaims their memory promptly).
    operator_store_->FenceEpoch(epoch);
    eval.operator_store = operator_store_.get();
  }
  QueryResponse base;
  base.fingerprint = work->fingerprint;
  // An exception escaping the evaluation must not abandon the
  // subscribers' promises (future.get() would throw broken_promise and
  // callbacks / OnComplete would never fire); fold it into the
  // per-request status like any other evaluation failure.
  try {
    auto result = engine_->Run(work->request, eval);
    if (result.ok()) {
      core::Response evaluated = std::move(result).ValueOrDie();
      if (recording_sink != nullptr) {
        evaluated.leaves = recording_sink->TakeLeaves();
      }
      // Fold the evaluation's storage scan accounting into the
      // service-lifetime counters (every kind carries EvalStats).
      const algebra::EvalStats& stats =
          evaluated.kind == core::RequestKind::kTopK
              ? evaluated.top_k.stats
              : (evaluated.kind == core::RequestKind::kThreshold
                     ? evaluated.threshold.stats
                     : evaluated.evaluate.stats);
      bytes_scanned_.fetch_add(stats.bytes_scanned,
                               std::memory_order_relaxed);
      logical_bytes_scanned_.fetch_add(stats.logical_bytes_scanned,
                                       std::memory_order_relaxed);
      columnar_scans_.fetch_add(stats.columnar_scans,
                                std::memory_order_relaxed);
      row_scans_.fetch_add(stats.row_scans, std::memory_order_relaxed);
      base.response =
          std::make_shared<const core::Response>(std::move(evaluated));
      AttachLegacyResult(&base);
    } else {
      base.status = result.status();
    }
  } catch (const std::exception& e) {
    base.status = Status::Internal(std::string("evaluation threw: ") +
                                   e.what());
    if (work->sink != nullptr) work->sink->OnComplete(base.status);
  } catch (...) {
    base.status = Status::Internal("evaluation threw");
    if (work->sink != nullptr) work->sink->OnComplete(base.status);
  }

  // Publish to the cache before the in-flight entry disappears, so a
  // concurrent Dispatch always sees the response one way or the other;
  // the cache has its own lock, keeping mu_'s critical section O(1).
  // Exception: on a shard-configured service a streaming evaluation
  // ran whole-set (sinks bypass sharding), so its response must not be
  // published under the shard-folded fingerprint — sharded and
  // unsharded answers agree only to ~1e-12 and their cache entries
  // must never alias.
  // A mapping reconfiguration mid-evaluation means this response was
  // computed under a mapping-set snapshot other than the one its
  // fingerprint names — never cache it (the check can only drop valid
  // entries, it never admits an invalid one).
  const bool epoch_stable = engine_->mapping_epoch() == epoch;
  const bool cacheable =
      (work->sink == nullptr || options_.mapping_shards <= 1) && epoch_stable;
  if (base.status.ok() && cacheable) {
    cache_.Put(work->fingerprint, base.response, epoch, std::move(sources),
               data_epoch);
  }
  std::vector<Work::Subscriber> subscribers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (work->in_flight) in_flight_.erase(work->fingerprint);
    subscribers = std::move(work->subscribers);
  }
  if (metrics_ != nullptr) {
    metrics_->in_flight->Sub();
    metrics_->latency[kind_index]->Observe(SecondsSince(work->submitted));
  }
  if (!base.status.ok()) {
    URM_LOG(Warn, "service")
        << core::RequestKindName(work->request.kind)
        << " evaluation failed: " << base.status.message();
  }
  for (auto& subscriber : subscribers) {
    QueryResponse response = base;
    response.shared_in_batch = subscriber.shared;
    if (metrics_ != nullptr) {
      const Outcome outcome = !base.status.ok()
                                  ? kError
                                  : (subscriber.shared ? kShared : kEvaluated);
      metrics_->requests[kind_index][outcome]->Increment();
    }
    // Callback strictly before the future is fulfilled: anything the
    // callback writes is visible to whoever unblocks from get().
    if (subscriber.callback) subscriber.callback(response);
    subscriber.promise.set_value(response);
  }
}

FenceOutcome QueryService::FenceCatalogDelta(
    const relational::ApplyResult& delta) {
  FenceOutcome outcome;
  if (delta.relations.empty()) return outcome;
  if (options_.delta_aware_invalidation) {
    std::vector<uint64_t> changed;
    changed.reserve(delta.relations.size());
    for (const std::string& name : delta.relations) {
      changed.push_back(Fnv1a(name));
    }
    outcome.answers = cache_.FenceRelations(changed, delta.data_epoch);
    if (operator_store_ != nullptr) {
      std::vector<const relational::Relation*> replaced;
      replaced.reserve(delta.replaced.size());
      for (const auto& rel : delta.replaced) replaced.push_back(rel.get());
      outcome.operators = operator_store_->FenceRelations(replaced);
    }
    return outcome;
  }
  // Full fence: everything computed before this delta goes, touched or
  // not — the conservative control arm.
  outcome.answers = cache_.FenceAllRelations(delta.data_epoch);
  if (operator_store_ != nullptr) {
    outcome.operators = operator_store_->stats().entries;
    operator_store_->Clear();
  }
  return outcome;
}

QueryResponse QueryService::Wait(std::future<QueryResponse> future) {
  // Helping drain keeps num_threads = 0 single-threaded semantics and
  // speeds batch waits: the submitting thread runs queued evaluations
  // instead of blocking.
  while (future.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool_.TryRunOne()) {
      // Queue drained: the evaluation is running on another thread.
      future.wait();
    }
  }
  return future.get();
}

QueryResponse QueryService::Submit(const core::Request& request,
                                   core::AnswerSink* sink) {
  return Wait(SubmitAsync(request, sink));
}

std::vector<QueryResponse> QueryService::Submit(
    const std::vector<core::Request>& batch) {
  std::vector<QueryResponse> responses(batch.size());
  if (batch.empty()) return responses;

  // Fingerprint every request and dedup inside the batch: the first
  // occurrence of a fingerprint owns the dispatch, later occurrences
  // copy its response. Cross-batch sharing (cache, in-flight) is
  // handled by Dispatch.
  std::unordered_map<algebra::PlanFingerprint, size_t,
                     algebra::PlanFingerprintHash>
      first_of;
  std::vector<size_t> owner(batch.size(), SIZE_MAX);
  std::vector<std::future<QueryResponse>> futures(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Status valid = core::ValidateRequest(batch[i]);
    if (!valid.ok()) {
      responses[i].status = valid;
      continue;
    }
    responses[i].fingerprint = Fingerprint(batch[i]);
    auto [it, inserted] = first_of.emplace(responses[i].fingerprint, i);
    owner[i] = it->second;
    if (inserted) {
      futures[i] = Dispatch(batch[i], responses[i].fingerprint, nullptr,
                            nullptr);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (owner[i] == i) responses[i] = Wait(std::move(futures[i]));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (owner[i] == SIZE_MAX || owner[i] == i) continue;
    responses[i] = responses[owner[i]];
    // A duplicate of a cached request was served by the cache, not by
    // an in-batch evaluation.
    responses[i].shared_in_batch = !responses[i].cache_hit;
  }
  return responses;
}

std::vector<QueryResponse> QueryService::Submit(
    const std::vector<QueryRequest>& batch) {
  std::vector<core::Request> requests;
  requests.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    requests.push_back(
        core::Request::MethodEval(request.query, request.method));
  }
  return Submit(requests);
}

QueryResponse QueryService::SubmitOne(const QueryRequest& request) {
  return Submit(std::vector<QueryRequest>{request}).front();
}

}  // namespace service
}  // namespace urm
