#pragma once

#include <vector>

#include "algebra/evaluate.h"
#include "common/status.h"
#include "osharing/engine.h"
#include "qsharing/partition_tree.h"

/// \file topk.h
/// Probabilistic top-k queries (paper §VII, Algorithm 4): return the k
/// tuples with the highest probabilities without computing exact
/// probabilities. The u-trace is explored partition-by-partition in
/// descending probability mass; every answer tuple carries a lower
/// bound (probability mass seen so far) and an upper bound (lower bound
/// plus unexplored mass). Traversal stops as soon as no tuple outside
/// the current top k — nor any unseen tuple — can overtake the k-th
/// lower bound.

namespace urm {
namespace topk {

struct TopKOptions {
  /// Operator selection strategy etc.
  osharing::OSharingOptions osharing;
  /// Visit partitions in descending probability-mass order (the default;
  /// pruning fires earliest this way). Disabling it is an ablation knob:
  /// the answers stay correct but far fewer e-units are skipped.
  bool order_partitions_by_probability = true;
};

/// One reported tuple with its probability bounds. The exact
/// probability lies in [lower_bound, upper_bound].
struct TopKEntry {
  relational::Row values;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
};

struct TopKResult {
  std::vector<TopKEntry> tuples;  ///< best k, by lower bound descending
  bool early_terminated = false;  ///< true when pruning stopped the scan
  size_t leaves_visited = 0;
  algebra::EvalStats stats;
  double seconds = 0.0;
};

/// Runs Algorithm 4.
Result<TopKResult> RunTopK(const reformulation::TargetQueryInfo& info,
                           const std::vector<mapping::Mapping>& mappings,
                           const relational::Catalog& catalog, size_t k,
                           const TopKOptions& options = TopKOptions());

}  // namespace topk
}  // namespace urm
