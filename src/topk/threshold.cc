#include "topk/threshold.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "qsharing/qsharing.h"

namespace urm {
namespace topk {

using baselines::WeightedMapping;
using relational::HashRow;
using relational::Row;
using relational::RowsEqual;

namespace {

class ThresholdSink : public osharing::LeafVisitor {
 public:
  ThresholdSink(double threshold, double total_mass)
      : threshold_(threshold), remaining_(total_mass) {}

  bool OnLeaf(const std::vector<Row>& rows, double probability) override {
    for (const Row& row : rows) {
      AddMass(row, probability);
    }
    remaining_ -= probability;
    if (remaining_ < 0.0) remaining_ = 0.0;
    if (CanStop()) {
      stopped_early_ = true;
      return false;
    }
    return true;
  }

  void DiscountUpfront(double probability) {
    remaining_ -= probability;
    if (remaining_ < 0.0) remaining_ = 0.0;
  }

  bool CanStop() const {
    // New tuples could still qualify.
    if (remaining_ + kEps >= threshold_) return false;
    // Seen tuples that are neither confirmed nor pruned keep us going.
    for (const auto& e : entries_) {
      bool confirmed = e.lb + kEps >= threshold_;
      bool pruned = e.lb + remaining_ + kEps < threshold_;
      if (!confirmed && !pruned) return false;
    }
    return true;
  }

  bool stopped_early() const { return stopped_early_; }

  std::vector<ThresholdEntry> Extract() const {
    std::vector<ThresholdEntry> out;
    for (const auto& e : entries_) {
      if (e.lb + kEps >= threshold_) {
        out.push_back(ThresholdEntry{e.values, e.lb, e.lb + remaining_});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const ThresholdEntry& a, const ThresholdEntry& b) {
                if (a.lower_bound != b.lower_bound) {
                  return a.lower_bound > b.lower_bound;
                }
                return relational::RowLess(a.values, b.values);
              });
    return out;
  }

 private:
  struct Entry {
    Row values;
    double lb = 0.0;
  };

  static constexpr double kEps = 1e-12;

  void AddMass(const Row& row, double probability) {
    size_t h = HashRow(row);
    auto it = index_.find(h);
    if (it != index_.end()) {
      for (size_t idx : it->second) {
        if (RowsEqual(entries_[idx].values, row)) {
          entries_[idx].lb += probability;
          return;
        }
      }
    }
    index_[h].push_back(entries_.size());
    entries_.push_back(Entry{row, probability});
  }

  double threshold_;
  double remaining_;
  bool stopped_early_ = false;
  std::vector<Entry> entries_;
  std::unordered_map<size_t, std::vector<size_t>> index_;
};

}  // namespace

Result<ThresholdResult> RunThreshold(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog, double threshold,
    const osharing::OSharingOptions& options) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in (0, 1]");
  }
  Timer timer;
  ThresholdResult result;

  auto tree = qsharing::PartitionTree::Build(info, mappings);
  if (!tree.ok()) return tree.status();
  double unanswerable = 0.0;
  std::vector<WeightedMapping> reps =
      qsharing::Represent(tree.ValueOrDie(), &unanswerable);

  double total = unanswerable;
  for (const auto& r : reps) total += r.probability;

  osharing::OSharingOptions engine_options = options;
  engine_options.visit_partitions_by_probability = true;
  osharing::OSharingEngine engine(info, catalog, engine_options);
  URM_RETURN_NOT_OK(engine.Init());

  ThresholdSink sink(threshold, total);
  sink.DiscountUpfront(unanswerable);
  osharing::TeeVisitor teed(&sink, engine_options.tee);
  URM_RETURN_NOT_OK(engine.Run(reps, &teed));

  result.tuples = sink.Extract();
  result.early_terminated = sink.stopped_early();
  result.leaves_visited = engine.leaves_visited();
  result.stats = engine.stats();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace topk
}  // namespace urm
