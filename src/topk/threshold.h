#pragma once

#include <vector>

#include "algebra/evaluate.h"
#include "common/status.h"
#include "osharing/engine.h"

/// \file threshold.h
/// Probability-threshold queries: return every answer tuple whose
/// probability is at least `p`. The paper motivates top-k with "a user
/// can require a query to only return answers with a high confidence";
/// threshold queries are the other standard confidence filter in
/// probabilistic databases (cited as [19] in the paper). The evaluation
/// reuses the u-trace bounds: a tuple is *confirmed* once its lower
/// bound reaches p, *pruned* once lower bound + unexplored mass falls
/// below p, and the scan stops when the unexplored mass cannot qualify
/// a new tuple and no seen tuple is undecided.

namespace urm {
namespace topk {

struct ThresholdEntry {
  relational::Row values;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
};

struct ThresholdResult {
  /// Tuples with Pr >= threshold, by lower bound descending.
  std::vector<ThresholdEntry> tuples;
  bool early_terminated = false;
  size_t leaves_visited = 0;
  algebra::EvalStats stats;
  double seconds = 0.0;
};

/// Evaluates a probability-threshold query over the mapping set.
/// `threshold` must lie in (0, 1].
Result<ThresholdResult> RunThreshold(
    const reformulation::TargetQueryInfo& info,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog, double threshold,
    const osharing::OSharingOptions& options = osharing::OSharingOptions());

}  // namespace topk
}  // namespace urm
