#include "topk/topk.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "qsharing/qsharing.h"

namespace urm {
namespace topk {

using baselines::WeightedMapping;
using relational::HashRow;
using relational::Row;
using relational::RowsEqual;

namespace {

/// Implements decide_result: maintains tuple lower bounds, the
/// unexplored mass, and the stopping rule.
class TopKSink : public osharing::LeafVisitor {
 public:
  TopKSink(size_t k, double total_mass) : k_(k), remaining_(total_mass) {}

  bool OnLeaf(const std::vector<Row>& rows, double probability) override {
    for (const Row& row : rows) {
      AddMass(row, probability);
    }
    remaining_ -= probability;
    if (remaining_ < 0.0) remaining_ = 0.0;
    if (CanStop()) {
      stopped_early_ = true;
      return false;
    }
    return true;
  }

  /// True when the scan aborted before exhausting the u-trace.
  bool stopped_early() const { return stopped_early_; }

  /// θ mass known before traversal (unanswerable partitions).
  void DiscountUpfront(double probability) {
    remaining_ -= probability;
    if (remaining_ < 0.0) remaining_ = 0.0;
  }

  bool CanStop() const {
    if (entries_.size() < k_) {
      // With fewer candidates than k every unseen tuple would belong to
      // the answer, so only an exhausted u-trace lets us stop.
      return remaining_ <= kEps;
    }
    // Select the k-th and (k+1)-th largest lower bounds in O(n).
    std::vector<double> lbs;
    lbs.reserve(entries_.size());
    for (const auto& e : entries_) lbs.push_back(e.lb);
    std::nth_element(lbs.begin(), lbs.begin() + static_cast<long>(k_ - 1),
                     lbs.end(), std::greater<double>());
    double kth = lbs[k_ - 1];
    // 1) no unseen tuple can beat the k-th selected lower bound;
    if (remaining_ > kth + kEps) return false;
    // 2) no tuple outside the selected k (including ties with the k-th)
    //    can end above the k-th selected tuple's guaranteed mass.
    if (entries_.size() > k_) {
      double next = *std::max_element(lbs.begin() + static_cast<long>(k_),
                                      lbs.end());
      if (next + remaining_ > kth + kEps) return false;
    }
    return true;
  }

  std::vector<TopKEntry> Extract() const {
    // Only k rows are materialized; candidate ordering runs on indexes
    // (answer sets can be large, row copies are not).
    std::vector<size_t> order(entries_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    size_t take = std::min(k_, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<long>(take), order.end(),
                      [this](size_t a, size_t b) {
                        if (entries_[a].lb != entries_[b].lb) {
                          return entries_[a].lb > entries_[b].lb;
                        }
                        return relational::RowLess(entries_[a].values,
                                                   entries_[b].values);
                      });
    std::vector<TopKEntry> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      const Entry& e = entries_[order[i]];
      out.push_back(TopKEntry{e.values, e.lb, e.lb + remaining_});
    }
    return out;
  }

 private:
  struct Entry {
    Row values;
    double lb = 0.0;
  };

  static constexpr double kEps = 1e-12;

  void AddMass(const Row& row, double probability) {
    size_t h = HashRow(row);
    auto it = index_.find(h);
    if (it != index_.end()) {
      for (size_t idx : it->second) {
        if (RowsEqual(entries_[idx].values, row)) {
          entries_[idx].lb += probability;
          return;
        }
      }
    }
    index_[h].push_back(entries_.size());
    entries_.push_back(Entry{row, probability});
  }

  size_t k_;
  double remaining_;
  bool stopped_early_ = false;
  std::vector<Entry> entries_;
  std::unordered_map<size_t, std::vector<size_t>> index_;
};

}  // namespace

Result<TopKResult> RunTopK(const reformulation::TargetQueryInfo& info,
                           const std::vector<mapping::Mapping>& mappings,
                           const relational::Catalog& catalog, size_t k,
                           const TopKOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  Timer timer;
  TopKResult result;

  auto tree = qsharing::PartitionTree::Build(info, mappings);
  if (!tree.ok()) return tree.status();
  double unanswerable = 0.0;
  std::vector<WeightedMapping> reps =
      qsharing::Represent(tree.ValueOrDie(), &unanswerable);

  double total = unanswerable;
  for (const auto& r : reps) total += r.probability;

  osharing::OSharingOptions engine_options = options.osharing;
  engine_options.visit_partitions_by_probability =
      options.order_partitions_by_probability;
  osharing::OSharingEngine engine(info, catalog, engine_options);
  URM_RETURN_NOT_OK(engine.Init());

  TopKSink sink(k, total);
  sink.DiscountUpfront(unanswerable);
  // The top-k scan consumes leaves incrementally by design; a tee
  // exposes that stream to callers (service AnswerSink) as-is.
  osharing::TeeVisitor teed(&sink, engine_options.tee);
  URM_RETURN_NOT_OK(engine.Run(reps, &teed));

  result.tuples = sink.Extract();
  result.early_terminated = sink.stopped_early();
  result.leaves_visited = engine.leaves_visited();
  result.stats = engine.stats();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace topk
}  // namespace urm
