#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace urm {
namespace obs {

namespace internal {

size_t NextThreadStripe() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

namespace {

/// Family/label names: Prometheus identifier charset.
bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// Sample values and histogram bounds: integers render without a
/// decimal point, everything else with 9 significant digits (enough to
/// round-trip seconds-scale sums and bucket bounds).
std::string FormatValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Renders `{a="x",b="y"}` (empty string for no labels); `extra`, if
/// non-null, is appended last (the histogram `le` label).
std::string RenderLabels(const Labels& labels, const Label* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += label.first + "=\"" + EscapeLabelValue(label.second) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

// ------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(kMetricStripes * (bounds_.size() + 1)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    URM_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  for (double b : bounds_) {
    URM_CHECK(std::isfinite(b)) << "the +Inf bucket is implicit";
  }
  for (auto& sum : sums_) sum.store(0.0, std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds (Prometheus `le`): the first bound >= value
  // owns the observation; beyond every bound lands in +Inf overflow.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  size_t stripe = internal::ThreadStripe() & (kMetricStripes - 1);
  counts_[stripe * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  internal::AtomicDoubleAdd(&sums_[stripe], value);
}

void Histogram::Snapshot(std::vector<uint64_t>* bucket_counts,
                         double* sum) const {
  const size_t buckets = bounds_.size() + 1;
  bucket_counts->assign(buckets, 0);
  for (size_t stripe = 0; stripe < kMetricStripes; ++stripe) {
    for (size_t b = 0; b < buckets; ++b) {
      (*bucket_counts)[b] +=
          counts_[stripe * buckets + b].load(std::memory_order_relaxed);
    }
  }
  double total = 0.0;
  for (const auto& s : sums_) total += s.load(std::memory_order_relaxed);
  *sum = total;
}

// --------------------------------------------------------------- Family

template <typename T>
T* Family<T>::WithLabels(const std::vector<std::string>& label_values) {
  URM_CHECK_EQ(label_values.size(), label_names_.size())
      << "family " << name_ << " label arity";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(label_values);
  if (it == children_.end()) {
    it = children_.emplace(label_values, std::unique_ptr<T>(MakeChild()))
             .first;
  }
  return it->second.get();
}

template <>
Counter* Family<Counter>::MakeChild() {
  return new Counter();
}

template <>
Gauge* Family<Gauge>::MakeChild() {
  return new Gauge();
}

template <>
Histogram* Family<Histogram>::MakeChild() {
  return new Histogram(histogram_bounds_);
}

template class Family<Counter>;
template class Family<Gauge>;
template class Family<Histogram>;

// -------------------------------------------------------------- buckets

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  URM_CHECK_GT(start, 0.0);
  URM_CHECK_GT(factor, 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencyBuckets() {
  // 500 µs .. 30 s in 1-2.5-5 steps: fine enough that p50/p99 and
  // time-to-first-answer interpolate meaningfully at both REPL and
  // bench scales.
  static const std::vector<double> kBounds = {
      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
      0.25,   0.5,   1.0,    2.5,   5.0,  10.0,  30.0};
  return kBounds;
}

// ------------------------------------------------------------- Registry

Registry::InstrumentFamily& Registry::FindOrCreate(
    const std::string& name, const std::string& help, MetricType type,
    const std::vector<std::string>& label_names,
    const std::vector<double>& bounds) {
  URM_CHECK(ValidName(name)) << "metric family name: " << name;
  for (const std::string& label : label_names) {
    URM_CHECK(ValidName(label)) << "label name: " << label;
  }
  std::lock_guard<std::mutex> lock(mu_);
  URM_CHECK(callbacks_.find(name) == callbacks_.end())
      << name << " already registered as a callback family";
  auto it = families_.find(name);
  if (it != families_.end()) {
    // Idempotent re-registration (a second QueryService sharing the
    // registry); the shape must agree or exposition would lie.
    InstrumentFamily& family = it->second;
    URM_CHECK(family.type == type) << name << " re-registered as a "
                                   << MetricTypeName(type);
    const std::vector<std::string>& existing =
        family.type == MetricType::kCounter ? family.counter->label_names()
        : family.type == MetricType::kGauge ? family.gauge->label_names()
                                            : family.histogram->label_names();
    URM_CHECK(existing == label_names)
        << name << " re-registered with different label names";
    if (family.type == MetricType::kHistogram) {
      URM_CHECK(family.histogram->histogram_bounds_ == bounds)
          << name << " re-registered with different buckets";
    }
    return family;
  }
  InstrumentFamily family;
  family.type = type;
  auto setup = [&](auto* fam) {
    fam->name_ = name;
    fam->help_ = help;
    fam->label_names_ = label_names;
    fam->histogram_bounds_ = bounds;
  };
  switch (type) {
    case MetricType::kCounter:
      family.counter.reset(new Family<Counter>());
      setup(family.counter.get());
      break;
    case MetricType::kGauge:
      family.gauge.reset(new Family<Gauge>());
      setup(family.gauge.get());
      break;
    case MetricType::kHistogram:
      family.histogram.reset(new Family<Histogram>());
      setup(family.histogram.get());
      break;
  }
  return families_.emplace(name, std::move(family)).first->second;
}

Family<Counter>& Registry::CounterFamily(
    const std::string& name, const std::string& help,
    std::vector<std::string> label_names) {
  return *FindOrCreate(name, help, MetricType::kCounter, label_names, {})
              .counter;
}

Family<Gauge>& Registry::GaugeFamily(const std::string& name,
                                     const std::string& help,
                                     std::vector<std::string> label_names) {
  return *FindOrCreate(name, help, MetricType::kGauge, label_names, {})
              .gauge;
}

Family<Histogram>& Registry::HistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<double> bounds, std::vector<std::string> label_names) {
  return *FindOrCreate(name, help, MetricType::kHistogram, label_names,
                       bounds)
              .histogram;
}

uint64_t Registry::AddCallback(const std::string& name,
                               const std::string& help, MetricType type,
                               SampleCallback fn) {
  URM_CHECK(ValidName(name)) << "metric family name: " << name;
  std::lock_guard<std::mutex> lock(mu_);
  URM_CHECK(families_.find(name) == families_.end())
      << name << " already registered as an instrument family";
  auto it = callbacks_.find(name);
  if (it == callbacks_.end()) {
    it = callbacks_.emplace(name, CallbackFamily{help, type, {}}).first;
  } else {
    URM_CHECK(it->second.type == type)
        << name << " re-registered as a " << MetricTypeName(type);
  }
  uint64_t id = next_callback_id_++;
  it->second.providers.emplace(id, std::move(fn));
  return id;
}

void Registry::RemoveCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end();) {
    it->second.providers.erase(id);
    // Empty callback families disappear from exposition entirely (the
    // provider owning every sample is gone).
    if (it->second.providers.empty()) {
      it = callbacks_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

void FillSample(const Counter& counter, Sample* sample) {
  sample->value = static_cast<double>(counter.Value());
}

void FillSample(const Gauge& gauge, Sample* sample) {
  sample->value = static_cast<double>(gauge.Value());
}

void FillSample(const Histogram& histogram, Sample* sample) {
  sample->is_histogram = true;
  sample->bounds = histogram.bounds();
  histogram.Snapshot(&sample->bucket_counts, &sample->sum);
}

}  // namespace

std::vector<FamilySnapshot> Registry::Collect() const {
  std::vector<FamilySnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(families_.size() + callbacks_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.type = family.type;
    auto collect_children = [&](auto& fam) {
      snapshot.help = fam->help_;
      std::lock_guard<std::mutex> child_lock(fam->mu_);
      for (const auto& [values, child] : fam->children_) {
        Sample sample;
        for (size_t i = 0; i < values.size(); ++i) {
          sample.labels.emplace_back(fam->label_names_[i], values[i]);
        }
        FillSample(*child, &sample);
        snapshot.samples.push_back(std::move(sample));
      }
    };
    switch (family.type) {
      case MetricType::kCounter: collect_children(family.counter); break;
      case MetricType::kGauge: collect_children(family.gauge); break;
      case MetricType::kHistogram:
        collect_children(family.histogram);
        break;
    }
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, family] : callbacks_) {
    FamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.help = family.help;
    snapshot.type = family.type;
    for (const auto& [id, fn] : family.providers) {
      (void)id;
      fn(&snapshot.samples);
    }
    out.push_back(std::move(snapshot));
  }
  std::sort(out.begin(), out.end(),
            [](const FamilySnapshot& a, const FamilySnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::ExposeText() const { return obs::ExposeText(Collect()); }

// ----------------------------------------------------------- exposition

std::string ExposeText(const std::vector<FamilySnapshot>& families) {
  std::string out;
  for (const FamilySnapshot& family : families) {
    out += "# HELP " + family.name + " " + EscapeHelp(family.help) + "\n";
    out += "# TYPE " + family.name + " " +
           MetricTypeName(family.type) + "\n";
    for (const Sample& sample : family.samples) {
      if (!sample.is_histogram) {
        out += family.name + RenderLabels(sample.labels, nullptr) + " " +
               FormatValue(sample.value) + "\n";
        continue;
      }
      uint64_t cumulative = 0;
      for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
        cumulative += sample.bucket_counts[b];
        Label le{"le", b < sample.bounds.size()
                           ? FormatValue(sample.bounds[b])
                           : std::string("+Inf")};
        out += family.name + "_bucket" +
               RenderLabels(sample.labels, &le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += family.name + "_sum" + RenderLabels(sample.labels, nullptr) +
             " " + FormatValue(sample.sum) + "\n";
      out += family.name + "_count" +
             RenderLabels(sample.labels, nullptr) + " " +
             std::to_string(cumulative) + "\n";
    }
  }
  return out;
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace urm
