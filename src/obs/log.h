#pragma once

#include <functional>
#include <sstream>
#include <string>

/// \file log.h
/// Structured severity/channel logging for the serving tier.
///
///   URM_LOG(Info, "service") << "engine ready in " << ms << " ms";
///   // -> 2026-08-09T12:34:56.789Z I [service] query_service.cc:42 ...
///
/// Severities: Debug < Info < Warn < Error < Fatal. Messages below the
/// process threshold are filtered before their stream arguments are
/// evaluated (the macro short-circuits). The threshold defaults to
/// Info, is seeded once from the URM_LOG_LEVEL environment variable
/// (debug|info|warn|error|off), and can be changed at runtime with
/// set_log_threshold (urm_server's --log-level flag). Fatal is never
/// filtered.
///
/// Channels are free-form short tags ("service", "cache", "ostore",
/// "shard", "check", "server") that identify the subsystem; the
/// glossary lives in docs/OBSERVABILITY.md.
///
/// Output is line-atomic: each message is formatted into one buffer
/// and written to stderr with a single flushed fwrite, so concurrent
/// loggers (and concurrent URM_CHECK failures, which route through
/// this sink at Fatal) never interleave within a line.
///
/// This header depends only on the standard library — common/logging.h
/// includes it, so it must stay below everything else.

namespace urm {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
  kOff = 5,  ///< threshold-only value: filters everything but Fatal
};

/// Single-character severity tag used in the line format (D/I/W/E/F).
char LogLevelChar(LogLevel level);

/// Parses "debug" / "info" / "warn" (or "warning") / "error" / "off"
/// (case-sensitive, lowercase). Returns false on unknown names.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// The current process-wide threshold (atomic; safe to read anywhere).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Whether a message at `level` would be emitted. Fatal always is.
bool LogEnabled(LogLevel level);

/// Test hook: capture formatted lines instead of writing to stderr.
/// Pass nullptr to restore the stderr sink. Not synchronized with
/// in-flight LogMessage destructors — install before logging starts.
using LogSinkForTesting = std::function<void(LogLevel, const std::string&)>;
void SetLogSinkForTesting(LogSinkForTesting sink);

/// \brief One log statement: accumulates a message, then formats and
/// writes the whole line atomically on destruction.
///
/// Use through URM_LOG — constructing one directly skips the threshold
/// check.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* channel, const char* file,
             int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* channel_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace obs
}  // namespace urm

/// Emits one structured log line at the given severity token (Debug,
/// Info, Warn, Error, Fatal) and channel tag. Arguments after << are
/// not evaluated when the severity is below the threshold.
#define URM_LOG(severity, channel)                                     \
  if (!::urm::obs::LogEnabled(::urm::obs::LogLevel::k##severity)) {    \
  } else                                                               \
    ::urm::obs::LogMessage(::urm::obs::LogLevel::k##severity, channel, \
                           __FILE__, __LINE__)                         \
        .stream()
