#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace urm {
namespace obs {

namespace {

LogLevel ThresholdFromEnv() {
  const char* v = std::getenv("URM_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (v != nullptr) ParseLogLevel(v, &level);
  return level;
}

std::atomic<int>& ThresholdStorage() {
  // Seeded from the environment exactly once, on first use (which may
  // be before main; the atomic makes later set_log_threshold calls
  // safe from any thread).
  static std::atomic<int> threshold{static_cast<int>(ThresholdFromEnv())};
  return threshold;
}

/// Test-sink storage. Guarded by a mutex only on the install path; the
/// emit path reads the shared_ptr-like flag first (logging tests are
/// single-threaded around installation).
std::mutex g_sink_mu;
LogSinkForTesting g_test_sink;
std::atomic<bool> g_has_test_sink{false};

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

char LogLevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo:  return 'I';
    case LogLevel::kWarn:  return 'W';
    case LogLevel::kError: return 'E';
    case LogLevel::kFatal: return 'F';
    case LogLevel::kOff:   return '?';
  }
  return '?';
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") *level = LogLevel::kDebug;
  else if (name == "info") *level = LogLevel::kInfo;
  else if (name == "warn" || name == "warning") *level = LogLevel::kWarn;
  else if (name == "error") *level = LogLevel::kError;
  else if (name == "off") *level = LogLevel::kOff;
  else return false;
  return true;
}

LogLevel log_threshold() {
  return static_cast<LogLevel>(
      ThresholdStorage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  ThresholdStorage().store(static_cast<int>(level),
                           std::memory_order_relaxed);
}

bool LogEnabled(LogLevel level) {
  if (level == LogLevel::kFatal) return true;
  return static_cast<int>(level) >=
         ThresholdStorage().load(std::memory_order_relaxed);
}

void SetLogSinkForTesting(LogSinkForTesting sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_test_sink = std::move(sink);
  g_has_test_sink.store(g_test_sink != nullptr, std::memory_order_release);
}

LogMessage::LogMessage(LogLevel level, const char* channel,
                       const char* file, int line)
    : level_(level), channel_(channel), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // Format the entire line into one buffer so the final write is a
  // single syscall-sized fwrite — concurrent messages cannot
  // interleave within a line.
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[80];
  std::snprintf(stamp, sizeof(stamp),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, millis);

  std::string line = stamp;
  line += ' ';
  line += LogLevelChar(level_);
  line += " [";
  line += channel_;
  line += "] ";
  line += Basename(file_);
  line += ':';
  line += std::to_string(line_);
  line += ' ';
  line += stream_.str();
  line += '\n';

  if (g_has_test_sink.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_test_sink) {
      g_test_sink(level_, line);
      return;
    }
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace obs
}  // namespace urm
