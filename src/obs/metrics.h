#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.h
/// The production metrics registry: labeled counters, gauges, and
/// fixed-bucket histograms with Prometheus text exposition — the
/// single place every serving-tier component (QueryService,
/// AnswerCache, OperatorStore, ThreadPool, Engine::RunSharded) reports
/// into, and the `/metrics` payload the future HTTP tier serves for
/// free (urm_server's `metrics` command and --metrics-file dump emit
/// the same text today).
///
/// Model (mirrors the Prometheus client data model):
///   * a *family* is (name, help, type, label names) — registered once
///     via Registry::{CounterFamily,GaugeFamily,HistogramFamily};
///   * a *child* is one instrument within a family, keyed by its label
///     values (Family::WithLabels). Children are created under a lock
///     but the returned pointers are stable for the registry's
///     lifetime — resolve them once, then update lock-free;
///   * *callback families* (Registry::AddCallback) produce their
///     samples at Collect time from an external source of truth (the
///     cache/store/pool stats structs that already maintain their own
///     counters) instead of duplicating hot-path increments.
///
/// Hot-path cost: Counter::Increment and Histogram::Observe touch
/// striped cache-line-padded atomics (relaxed), so concurrent request
/// threads don't bounce one cache line; Gauge is a single atomic
/// (gauges update at request granularity, not per-operator).
///
/// Snapshots (Registry::Collect) and ExposeText are read-side and may
/// run concurrently with updates; a snapshot is internally consistent
/// per instrument (histogram counts are summed bucket-first so
/// `_count` always equals the +Inf bucket).
///
/// Naming conventions (enforced by tools/metrics_lint.py over the
/// urm_server smoke run): families are `urm_<subsystem>_<what>`,
/// counters end in `_total`, histograms carry a unit suffix
/// (`_seconds`, `_ratio`). The glossary lives in
/// docs/OBSERVABILITY.md.

namespace urm {
namespace obs {

/// One label: (name, value).
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Number of atomic stripes per counter/histogram (power of two). Each
/// stripe is cache-line padded; threads hash to stripes by a stable
/// per-thread slot.
constexpr size_t kMetricStripes = 8;

namespace internal {

size_t NextThreadStripe();

/// Stable small integer per thread, used to pick an atomic stripe.
/// Inline so the hot path is one TLS load once the slot is assigned;
/// the assignment itself (first touch per thread) is out of line.
inline size_t ThreadStripe() {
  thread_local const size_t stripe = NextThreadStripe();
  return stripe;
}

struct alignas(64) PaddedCounterCell {
  std::atomic<uint64_t> value{0};
};

/// Relaxed add for atomic<double> (C++17 has no fetch_add for
/// floating atomics): CAS loop, uncontended in the striped layout.
inline void AtomicDoubleAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// \brief Monotonic counter (striped atomics; Increment is lock-free).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[internal::ThreadStripe() & (kMetricStripes - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::PaddedCounterCell cells_[kMetricStripes];
};

/// \brief Point-in-time value (single atomic; Set/Add/Sub lock-free).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram. `le` semantics match Prometheus: an
/// observation lands in the first bucket whose upper bound is >= the
/// value (bounds are inclusive), overflowing into the implicit +Inf
/// bucket. Observe is lock-free on striped atomics.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and finite; the +Inf bucket
  /// is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Snapshot: per-bucket *non-cumulative* counts (bounds.size() + 1
  /// entries, last = +Inf overflow), plus the observation sum.
  /// Bucket-first summation keeps count == sum(buckets) even while
  /// concurrent Observes land.
  void Snapshot(std::vector<uint64_t>* bucket_counts, double* sum) const;

 private:
  std::vector<double> bounds_;
  /// Stripe-major layout: counts_[stripe * (bounds+1) + bucket].
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<double> sums_[kMetricStripes];
};

/// One exposed series (or histogram child) in a snapshot.
struct Sample {
  Labels labels;
  double value = 0.0;  ///< counter/gauge value
  /// Histogram-only payload (is_histogram true): non-cumulative bucket
  /// counts aligned with `bounds` plus a final +Inf overflow count.
  bool is_histogram = false;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  double sum = 0.0;
};

/// One family's samples at Collect time.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<Sample> samples;
};

/// Emits a Collect result in the Prometheus text exposition format
/// (version 0.0.4): # HELP / # TYPE headers, one line per series,
/// histograms expanded into cumulative _bucket{le=...}, _sum, _count.
std::string ExposeText(const std::vector<FamilySnapshot>& families);

class Registry;

/// \brief One registered family of instruments; hands out label-keyed
/// children with stable addresses.
template <typename T>
class Family {
 public:
  /// Returns the child for `label_values` (matching the family's label
  /// names positionally), creating it on first use. The pointer stays
  /// valid for the registry's lifetime; resolve once, update lock-free.
  T* WithLabels(const std::vector<std::string>& label_values);

  /// The unlabeled child (families registered with no label names).
  T* Default() { return WithLabels({}); }

  const std::string& name() const { return name_; }
  const std::vector<std::string>& label_names() const {
    return label_names_;
  }

 private:
  friend class Registry;
  Family() = default;
  T* MakeChild();

  std::string name_;
  std::string help_;
  std::vector<std::string> label_names_;
  std::vector<double> histogram_bounds_;  ///< Family<Histogram> only
  std::mutex mu_;
  /// Node-stable map keyed by label values.
  std::map<std::vector<std::string>, std::unique_ptr<T>> children_;
};

using CounterFamilyT = Family<Counter>;
using GaugeFamilyT = Family<Gauge>;
using HistogramFamilyT = Family<Histogram>;

/// Exponentially spaced bucket bounds: start, start*factor, ... count
/// bounds total.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// The default request-latency bounds (500 µs .. 30 s, roughly 2.5x
/// steps) shared by the per-kind latency histograms.
const std::vector<double>& LatencyBuckets();

/// \brief The metrics registry: owns families, merges callback-driven
/// samples, and renders exposition text.
///
/// Thread-safety: all members may be called concurrently. Family
/// registration is idempotent — re-registering the same (name, type,
/// label names) returns the existing family (so any number of
/// QueryServices can share one registry); a name collision with a
/// different type or label names check-fails (it would corrupt the
/// exposition).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Family<Counter>& CounterFamily(const std::string& name,
                                 const std::string& help,
                                 std::vector<std::string> label_names = {});
  Family<Gauge>& GaugeFamily(const std::string& name,
                             const std::string& help,
                             std::vector<std::string> label_names = {});
  Family<Histogram>& HistogramFamily(
      const std::string& name, const std::string& help,
      std::vector<double> bounds,
      std::vector<std::string> label_names = {});

  /// Registers a collect-time sample provider for family `name` (help
  /// and type fixed by the first registration): at Collect, `fn` is
  /// invoked to append samples — the bridge for components that
  /// already maintain counters in their own stats structs
  /// (CacheStats, OperatorStoreStats, PoolStats). Multiple providers
  /// may feed one family (one per QueryService, distinguished by
  /// their labels). Counter-typed callback samples must be monotonic
  /// over the source's lifetime. Returns an id for RemoveCallback;
  /// `fn` must stay valid until removed. A name collision with an
  /// instrument family check-fails.
  using SampleCallback = std::function<void(std::vector<Sample>*)>;
  uint64_t AddCallback(const std::string& name, const std::string& help,
                       MetricType type, SampleCallback fn);
  void RemoveCallback(uint64_t id);

  /// Snapshots every family (instrument children + callback samples),
  /// sorted by family name.
  std::vector<FamilySnapshot> Collect() const;

  /// Collect + ExposeText.
  std::string ExposeText() const;

 private:
  struct InstrumentFamily {
    MetricType type;
    std::unique_ptr<Family<Counter>> counter;
    std::unique_ptr<Family<Gauge>> gauge;
    std::unique_ptr<Family<Histogram>> histogram;
  };
  struct CallbackFamily {
    std::string help;
    MetricType type;
    std::map<uint64_t, SampleCallback> providers;
  };

  InstrumentFamily& FindOrCreate(const std::string& name,
                                 const std::string& help, MetricType type,
                                 const std::vector<std::string>& label_names,
                                 const std::vector<double>& bounds);

  mutable std::mutex mu_;
  std::map<std::string, InstrumentFamily> families_;
  std::map<std::string, CallbackFamily> callbacks_;
  uint64_t next_callback_id_ = 1;
};

/// The process-wide registry every component reports into unless
/// given an explicit one (ServiceOptions::metrics_registry).
Registry& DefaultRegistry();

/// \brief Pre-resolved instruments the engine's sharded evaluation
/// reports into (wired through Engine::EvalOptions by the service so
/// core/ never touches the registry itself).
struct ShardMetrics {
  Histogram* shard_seconds = nullptr;  ///< per-shard wall time
  /// Per sharded run: slowest shard's wall time over the mean — the
  /// skew a static shard split leaves on the table (1.0 = balanced).
  Histogram* shard_skew = nullptr;
};

}  // namespace obs
}  // namespace urm
