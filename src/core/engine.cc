#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/hash_util.h"
#include "common/timer.h"
#include "mapping/sharded.h"
#include "obs/log.h"
#include "matching/matcher.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"

namespace urm {
namespace core {

namespace {

/// Adapts the public streaming interface to the o-sharing engine's
/// LeafVisitor so Run can tee u-trace leaves to a caller's sink.
class SinkLeafAdapter : public osharing::LeafVisitor {
 public:
  explicit SinkLeafAdapter(AnswerSink* sink) : sink_(sink) {}

  bool OnLeaf(const std::vector<relational::Row>& rows,
              double probability) override {
    return sink_->OnAnswer(rows, probability);
  }

 private:
  AnswerSink* sink_;
};

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Create(const Options& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;

  datagen::TpchOptions tpch;
  tpch.target_mb = options.target_mb;
  tpch.seed = options.seed;
  auto catalog = datagen::GenerateTpch(tpch);
  if (!catalog.ok()) return catalog.status();
  engine->catalog_ = std::move(catalog).ValueOrDie();
  engine->source_schema_ = datagen::TpchSchema();

  datagen::TargetSchemaBundle bundle =
      datagen::GetTargetSchema(options.target_schema);
  engine->target_schema_ = std::move(bundle.schema);

  matching::MatcherOptions matcher_options;
  matcher_options.threshold = options.matcher_threshold;
  matching::NameMatcher matcher(matching::SynonymDictionary::Default(),
                                matcher_options);
  engine->correspondences_ = matcher.Match(
      engine->source_schema_, engine->target_schema_, bundle.seeds);
  if (engine->correspondences_.empty()) {
    return Status::Internal("matcher produced no correspondences");
  }

  mapping::MappingGenOptions gen;
  gen.h = options.num_mappings;
  auto mappings =
      mapping::GenerateMappings(engine->correspondences_, gen);
  if (!mappings.ok()) return mappings.status();
  engine->all_mappings_ = std::move(mappings).ValueOrDie();
  engine->PublishMappings(engine->all_mappings_, /*advance_epoch=*/false);
  return engine;
}

std::unique_ptr<Engine> Engine::FromParts(
    relational::Catalog catalog, matching::SchemaDef source_schema,
    matching::SchemaDef target_schema,
    std::vector<mapping::Mapping> mappings, Options options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->catalog_ = std::move(catalog);
  engine->source_schema_ = std::move(source_schema);
  engine->target_schema_ = std::move(target_schema);
  engine->all_mappings_ = std::move(mappings);
  engine->options_ = options;
  engine->PublishMappings(engine->all_mappings_, /*advance_epoch=*/false);
  return engine;
}

std::shared_ptr<const Engine::MappingState> Engine::CurrentMappingState()
    const {
  std::lock_guard<std::mutex> lock(mapping_mu_);
  return mapping_state_;
}

void Engine::PublishMappings(std::vector<mapping::Mapping> mappings,
                             bool advance_epoch) {
  auto state = std::make_shared<MappingState>();
  state->mappings = std::move(mappings);
  state->hash = mapping::MappingSetHash(state->mappings);
  std::lock_guard<std::mutex> lock(mapping_mu_);
  state->epoch = advance_epoch && mapping_state_ != nullptr
                     ? mapping_state_->epoch + 1
                     : 0;
  mapping_epoch_.store(state->epoch, std::memory_order_release);
  mapping_set_hash_.store(state->hash, std::memory_order_release);
  mapping_state_ = std::move(state);
}

void Engine::UseTopMappings(size_t h) {
  PublishMappings(mapping::TakeTopMappings(all_mappings_, h),
                  /*advance_epoch=*/true);
}

Status Engine::SetActiveMappings(std::vector<mapping::Mapping> mappings) {
  if (mappings.empty()) {
    return Status::InvalidArgument("mapping set must not be empty");
  }
  double total = 0.0;
  for (const mapping::Mapping& m : mappings) total += m.probability();
  if (!(total > 0.0)) {
    return Status::InvalidArgument(
        "mapping set has non-positive total probability");
  }
  for (mapping::Mapping& m : mappings) {
    m.set_probability(m.probability() / total);
  }
  PublishMappings(std::move(mappings), /*advance_epoch=*/true);
  return Status::OK();
}

Result<reformulation::TargetQueryInfo> Engine::Analyze(
    const algebra::PlanPtr& query) const {
  return reformulation::AnalyzeTargetQuery(query, target_schema_);
}

std::vector<uint64_t> Engine::SourceFootprint(const Request& request) const {
  const std::shared_ptr<const MappingState> state = CurrentMappingState();
  std::set<uint64_t> tables;
  // Union over the active mappings of the source tables backing every
  // needed target attribute of every instance — a superset of what any
  // reformulation of this request can scan. An analysis failure yields
  // the empty set, which callers treat as depends-on-everything.
  auto absorb = [&](const algebra::PlanPtr& plan) -> bool {
    auto info = Analyze(plan);
    if (!info.ok()) return false;
    for (const reformulation::InstanceInfo& inst :
         info.ValueOrDie().instances) {
      for (const std::string& attr : inst.needed) {
        const std::string target_attr = inst.table + "." + attr;
        for (const mapping::Mapping& m : state->mappings) {
          const std::optional<std::string> source = m.SourceFor(target_attr);
          if (!source.has_value()) continue;
          const size_t dot = source->find('.');
          tables.insert(Fnv1a(dot == std::string::npos
                                  ? *source
                                  : source->substr(0, dot)));
        }
      }
    }
    return true;
  };
  if (request.query == nullptr || !absorb(request.query)) return {};
  if (request.kind == RequestKind::kSetOp &&
      (request.right == nullptr || !absorb(request.right))) {
    return {};
  }
  return std::vector<uint64_t>(tables.begin(), tables.end());
}

Result<Response> Engine::Run(const Request& request) const {
  return Run(request, EvalOptions());
}

Result<Response> Engine::Run(const Request& request,
                             const EvalOptions& eval) const {
  auto response = RunInternal(request, eval);
  if (eval.sink != nullptr) {
    eval.sink->OnComplete(response.ok() ? Status::OK() : response.status());
  }
  return response;
}

Result<baselines::MethodResult> Engine::EvaluateMethodOverMappings(
    const reformulation::TargetQueryInfo& info, const Request& request,
    const EvalOptions& eval, const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog, uint64_t store_epoch,
    uint64_t store_shard_epoch, osharing::LeafVisitor* tee) const {
  reformulation::Reformulator reformulator(source_schema_);
  baselines::ExecOptions exec;
  exec.parallelism = eval.parallelism;
  exec.pool = eval.pool;
  switch (request.method) {
    case Method::kBasic:
      return baselines::RunBasic(info, baselines::AsWeighted(mappings),
                                 catalog, reformulator, exec);
    case Method::kEBasic:
      return baselines::RunEBasic(info, baselines::AsWeighted(mappings),
                                  catalog, reformulator, exec);
    case Method::kEMqo:
      return baselines::RunEMqo(info, baselines::AsWeighted(mappings),
                                catalog, reformulator, exec);
    case Method::kQSharing:
      return qsharing::RunQSharing(info, mappings, catalog, reformulator,
                                   exec);
    case Method::kOSharing: {
      osharing::OSharingOptions options;
      options.strategy = request.strategy.value_or(options_.strategy);
      options.random_seed = options_.seed;
      options.parallelism = eval.parallelism;
      options.pool = eval.pool;
      options.tee = tee;
      options.store = eval.operator_store;
      options.store_epoch = store_epoch;
      options.store_shard_epoch = store_shard_epoch;
      return osharing::RunOSharing(info, mappings, catalog, options);
    }
  }
  return Status::Internal("unreachable");
}

Result<Response> Engine::RunInternal(const Request& request,
                                     const EvalOptions& eval) const {
  URM_RETURN_NOT_OK(ValidateRequest(request));
  // Pin the world once per dispatch: an immutable mapping-set snapshot
  // and a point-in-time catalog copy (cheap — shared_ptrs to immutable
  // relations). Everything below reads only these, so a concurrent
  // ApplyDelta / reconfiguration cannot tear an evaluation: it
  // completes entirely against the pinned state.
  const std::shared_ptr<const MappingState> state = CurrentMappingState();
  const relational::Catalog catalog = catalog_;
  return RunPinned(request, eval, *state, catalog);
}

Result<Response> Engine::RunPinned(const Request& request,
                                   const EvalOptions& eval,
                                   const MappingState& state,
                                   const relational::Catalog& catalog) const {
  // Sharded dispatch: streaming requests stay on the single-pass path
  // (a per-shard merge has no global leaf order to stream), and a set
  // that cannot be split (h < 2) falls through below.
  if (eval.mapping_shards > 1 && eval.sink == nullptr &&
      state.mappings.size() > 1) {
    return RunSharded(request, eval, state, catalog);
  }
  SinkLeafAdapter adapter(eval.sink);
  osharing::LeafVisitor* tee = eval.sink != nullptr ? &adapter : nullptr;

  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kEvaluate: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      auto result = EvaluateMethodOverMappings(info.ValueOrDie(), request,
                                               eval, state.mappings, catalog,
                                               /*store_epoch=*/state.epoch,
                                               /*store_shard_epoch=*/0, tee);
      if (!result.ok()) return result.status();
      response.evaluate = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kTopK: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      topk::TopKOptions options;
      options.osharing.strategy = request.strategy.value_or(options_.strategy);
      options.osharing.random_seed = options_.seed;
      options.osharing.tee = tee;
      options.osharing.store = eval.operator_store;
      options.osharing.store_epoch = state.epoch;
      auto result = topk::RunTopK(info.ValueOrDie(), state.mappings, catalog,
                                  request.k, options);
      if (!result.ok()) return result.status();
      response.top_k = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kSetOp: {
      auto left_info = Analyze(request.query);
      if (!left_info.ok()) return left_info.status();
      auto right_info = Analyze(request.right);
      if (!right_info.ok()) return right_info.status();
      reformulation::Reformulator reformulator(source_schema_);
      auto result = core::EvaluateSetOp(left_info.ValueOrDie(),
                                        right_info.ValueOrDie(),
                                        request.set_op, state.mappings,
                                        catalog, reformulator);
      if (!result.ok()) return result.status();
      response.evaluate = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kThreshold: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      osharing::OSharingOptions options;
      options.strategy = request.strategy.value_or(options_.strategy);
      options.random_seed = options_.seed;
      options.tee = tee;
      options.store = eval.operator_store;
      options.store_epoch = state.epoch;
      auto result = topk::RunThreshold(info.ValueOrDie(), state.mappings,
                                       catalog, request.threshold, options);
      if (!result.ok()) return result.status();
      response.threshold = std::move(result).ValueOrDie();
      return response;
    }
  }
  return Status::Internal("unreachable");
}

namespace {

/// Reweights one shard's answer set by its probability mass into
/// `merged`. Determinism: shards merge in shard order (the caller's
/// loop) and tuples within a shard in their accumulation order, so
/// repeated sharded evaluations produce the same AnswerSet — and, for
/// exactly representable probabilities, the same bits as the unsharded
/// pass.
void MergeShardAnswers(const reformulation::AnswerSet& shard_answers,
                       double mass, reformulation::AnswerSet* merged) {
  for (const reformulation::AnswerTuple& t : shard_answers.tuples()) {
    merged->Add(t.values, t.probability * mass);
  }
  merged->AddNull(shard_answers.null_probability() * mass);
}

constexpr double kShardMergeEps = 1e-12;  ///< mirrors the u-trace sinks

}  // namespace

std::shared_ptr<const mapping::ShardedMappingSet> Engine::ShardedView(
    const MappingState& state, size_t num_shards) const {
  std::lock_guard<std::mutex> lock(shard_memo_mu_);
  if (shard_memo_ == nullptr || shard_memo_epoch_ != state.epoch ||
      shard_memo_count_ != num_shards) {
    shard_memo_ = std::make_shared<const mapping::ShardedMappingSet>(
        mapping::ShardedMappingSet::Build(state.mappings, num_shards));
    shard_memo_epoch_ = state.epoch;
    shard_memo_count_ = num_shards;
  }
  return shard_memo_;
}

Result<Response> Engine::RunSharded(const Request& request,
                                    const EvalOptions& eval,
                                    const MappingState& state,
                                    const relational::Catalog& catalog) const {
  Timer timer;
  const std::shared_ptr<const mapping::ShardedMappingSet> view = ShardedView(
      state, static_cast<size_t>(std::max(eval.mapping_shards, 1)));
  const mapping::ShardedMappingSet& sharded = *view;
  if (sharded.num_shards() <= 1) {
    EvalOptions whole = eval;
    whole.mapping_shards = 1;
    return RunPinned(request, whole, state, catalog);
  }

  auto info = Analyze(request.query);
  if (!info.ok()) return info.status();
  std::optional<reformulation::TargetQueryInfo> right_info;
  if (request.kind == RequestKind::kSetOp) {
    auto right = Analyze(request.right);
    if (!right.ok()) return right.status();
    right_info = std::move(right).ValueOrDie();
  }

  // Per-shard evaluation: each shard is a well-formed renormalized
  // mapping set evaluated by its own engine clone (private
  // reformulator / o-sharing engine; shared read-only catalog and
  // query info). The QueryService's OperatorStore is shared by all
  // shards, each under its shard-local key epoch. Within a shard the
  // evaluation may fan out further (eval.parallelism); the nested
  // ParallelFor is claim-based and deadlock-free.
  EvalOptions shard_eval = eval;
  shard_eval.mapping_shards = 1;
  shard_eval.sink = nullptr;
  const size_t num_shards = sharded.num_shards();
  std::vector<Result<baselines::MethodResult>> parts(
      num_shards, Result<baselines::MethodResult>(
                      Status::Internal("shard not evaluated")));
  std::vector<double> shard_seconds(num_shards, 0.0);
  auto eval_shard_inner = [&](size_t s) {
    const mapping::MappingShard& shard = sharded.shard(s);
    switch (request.kind) {
      case RequestKind::kEvaluate:
        parts[s] = EvaluateMethodOverMappings(
            info.ValueOrDie(), request, shard_eval, shard.mappings, catalog,
            /*store_epoch=*/state.epoch, shard.hash, nullptr);
        return;
      case RequestKind::kSetOp: {
        reformulation::Reformulator reformulator(source_schema_);
        parts[s] = core::EvaluateSetOp(info.ValueOrDie(), *right_info,
                                       request.set_op, shard.mappings,
                                       catalog, reformulator);
        return;
      }
      case RequestKind::kTopK:
      case RequestKind::kThreshold: {
        // Top-k / threshold shards compute their complete renormalized
        // answer mass with the full o-sharing scan: a shard cannot
        // prune locally below the global rank/threshold cut (a tuple's
        // probability sums contributions across shards), so its only
        // sound early-termination bound is its own exhausted mass —
        // which the scan applies by construction. The cut happens on
        // the merged exact probabilities below.
        osharing::OSharingOptions options;
        options.strategy = request.strategy.value_or(options_.strategy);
        options.random_seed = options_.seed;
        options.parallelism = shard_eval.parallelism;
        options.pool = shard_eval.pool;
        options.store = shard_eval.operator_store;
        options.store_epoch = state.epoch;
        options.store_shard_epoch = shard.hash;
        parts[s] = osharing::RunOSharing(info.ValueOrDie(), shard.mappings,
                                         catalog, options);
        return;
      }
    }
    parts[s] = Status::Internal("unreachable request kind");
  };
  // Per-shard wall time feeds the skew metric below: with a static
  // contiguous shard split, one slow shard bounds the whole request.
  auto eval_shard = [&](size_t s) {
    Timer shard_timer;
    eval_shard_inner(s);
    shard_seconds[s] = shard_timer.Seconds();
  };
  if (eval.pool != nullptr) {
    eval.pool->ParallelFor(num_shards, eval_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) eval_shard(s);
  }
  for (const auto& part : parts) {
    if (!part.ok()) return part.status();
  }
  if (eval.shard_metrics != nullptr) {
    double max_seconds = 0.0;
    double total_seconds = 0.0;
    for (double s : shard_seconds) {
      if (eval.shard_metrics->shard_seconds != nullptr) {
        eval.shard_metrics->shard_seconds->Observe(s);
      }
      max_seconds = std::max(max_seconds, s);
      total_seconds += s;
    }
    const double mean_seconds =
        total_seconds / static_cast<double>(num_shards);
    if (eval.shard_metrics->shard_skew != nullptr && mean_seconds > 0.0) {
      eval.shard_metrics->shard_skew->Observe(max_seconds / mean_seconds);
    }
    URM_LOG(Debug, "shard")
        << RequestKindName(request.kind) << " over " << num_shards
        << " shards: max " << max_seconds * 1e3 << " ms, mean "
        << mean_seconds * 1e3 << " ms";
  }

  // Deterministic merge in shard order, reweighted by shard mass.
  baselines::MethodResult combined;
  combined.answers = reformulation::AnswerSet(
      parts[0].ValueOrDie().answers.column_names());
  for (size_t s = 0; s < num_shards; ++s) {
    const baselines::MethodResult& part = parts[s].ValueOrDie();
    MergeShardAnswers(part.answers, sharded.shard(s).mass,
                      &combined.answers);
    combined.stats += part.stats;
    combined.rewrite_seconds += part.rewrite_seconds;
    combined.plan_seconds += part.plan_seconds;
    combined.eval_seconds += part.eval_seconds;
    combined.aggregate_seconds += part.aggregate_seconds;
    combined.source_queries += part.source_queries;
    combined.partitions += part.partitions;
  }

  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kEvaluate:
    case RequestKind::kSetOp:
      response.evaluate = std::move(combined);
      return response;
    case RequestKind::kTopK: {
      // AnswerSet::TopK is (probability desc, row order) — the same
      // tie order as the unsharded top-k extraction, over exact
      // probabilities.
      auto top = combined.answers.TopK(request.k);
      topk::TopKResult result;
      result.tuples.reserve(top.size());
      for (auto& t : top) {
        result.tuples.push_back(topk::TopKEntry{
            std::move(t.values), t.probability, t.probability});
      }
      result.early_terminated = false;  // every shard scanned its mass
      result.leaves_visited = combined.source_queries;
      result.stats = combined.stats;
      result.seconds = timer.Seconds();
      response.top_k = std::move(result);
      return response;
    }
    case RequestKind::kThreshold: {
      auto sorted = combined.answers.Sorted();
      topk::ThresholdResult result;
      for (auto& t : sorted) {
        if (t.probability + kShardMergeEps < request.threshold) break;
        result.tuples.push_back(topk::ThresholdEntry{
            std::move(t.values), t.probability, t.probability});
      }
      result.early_terminated = false;
      result.leaves_visited = combined.source_queries;
      result.stats = combined.stats;
      result.seconds = timer.Seconds();
      response.threshold = std::move(result);
      return response;
    }
  }
  return Status::Internal("unreachable");
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method) const {
  return Evaluate(query, method, EvalOptions());
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method,
    const EvalOptions& eval) const {
  auto response = Run(Request::MethodEval(query, method), eval);
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<baselines::MethodResult> Engine::EvaluateOSharing(
    const algebra::PlanPtr& query, osharing::StrategyKind strategy) const {
  auto response = Run(
      Request::MethodEval(query, Method::kOSharing).WithStrategy(strategy));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<baselines::MethodResult> Engine::EvaluateSetOp(
    const algebra::PlanPtr& left, const algebra::PlanPtr& right,
    SetOpKind kind) const {
  auto response = Run(Request::SetOp(left, right, kind));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<topk::TopKResult> Engine::EvaluateTopK(const algebra::PlanPtr& query,
                                              size_t k) const {
  auto response = Run(Request::TopK(query, k));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().top_k);
}

Result<topk::ThresholdResult> Engine::EvaluateThreshold(
    const algebra::PlanPtr& query, double threshold) const {
  auto response = Run(Request::Threshold(query, threshold));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().threshold);
}

}  // namespace core
}  // namespace urm
