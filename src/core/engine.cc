#include "core/engine.h"

#include "matching/matcher.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"

namespace urm {
namespace core {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBasic:
      return "basic";
    case Method::kEBasic:
      return "e-basic";
    case Method::kEMqo:
      return "e-MQO";
    case Method::kQSharing:
      return "q-sharing";
    case Method::kOSharing:
      return "o-sharing";
  }
  return "?";
}

Result<std::unique_ptr<Engine>> Engine::Create(const Options& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;

  datagen::TpchOptions tpch;
  tpch.target_mb = options.target_mb;
  tpch.seed = options.seed;
  auto catalog = datagen::GenerateTpch(tpch);
  if (!catalog.ok()) return catalog.status();
  engine->catalog_ = std::move(catalog).ValueOrDie();
  engine->source_schema_ = datagen::TpchSchema();

  datagen::TargetSchemaBundle bundle =
      datagen::GetTargetSchema(options.target_schema);
  engine->target_schema_ = std::move(bundle.schema);

  matching::MatcherOptions matcher_options;
  matcher_options.threshold = options.matcher_threshold;
  matching::NameMatcher matcher(matching::SynonymDictionary::Default(),
                                matcher_options);
  engine->correspondences_ = matcher.Match(
      engine->source_schema_, engine->target_schema_, bundle.seeds);
  if (engine->correspondences_.empty()) {
    return Status::Internal("matcher produced no correspondences");
  }

  mapping::MappingGenOptions gen;
  gen.h = options.num_mappings;
  auto mappings =
      mapping::GenerateMappings(engine->correspondences_, gen);
  if (!mappings.ok()) return mappings.status();
  engine->all_mappings_ = std::move(mappings).ValueOrDie();
  engine->mappings_ = engine->all_mappings_;
  return engine;
}

std::unique_ptr<Engine> Engine::FromParts(
    relational::Catalog catalog, matching::SchemaDef source_schema,
    matching::SchemaDef target_schema,
    std::vector<mapping::Mapping> mappings, Options options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->catalog_ = std::move(catalog);
  engine->source_schema_ = std::move(source_schema);
  engine->target_schema_ = std::move(target_schema);
  engine->all_mappings_ = std::move(mappings);
  engine->mappings_ = engine->all_mappings_;
  engine->options_ = options;
  return engine;
}

void Engine::UseTopMappings(size_t h) {
  mappings_ = mapping::TakeTopMappings(all_mappings_, h);
}

Result<reformulation::TargetQueryInfo> Engine::Analyze(
    const algebra::PlanPtr& query) const {
  return reformulation::AnalyzeTargetQuery(query, target_schema_);
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method) const {
  return Evaluate(query, method, EvalOptions());
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method,
    const EvalOptions& eval) const {
  auto info = Analyze(query);
  if (!info.ok()) return info.status();
  reformulation::Reformulator reformulator(source_schema_);
  baselines::ExecOptions exec;
  exec.parallelism = eval.parallelism;
  exec.pool = eval.pool;
  switch (method) {
    case Method::kBasic:
      return baselines::RunBasic(info.ValueOrDie(),
                                 baselines::AsWeighted(mappings_),
                                 catalog_, reformulator, exec);
    case Method::kEBasic:
      return baselines::RunEBasic(info.ValueOrDie(),
                                  baselines::AsWeighted(mappings_),
                                  catalog_, reformulator, exec);
    case Method::kEMqo:
      return baselines::RunEMqo(info.ValueOrDie(),
                                baselines::AsWeighted(mappings_),
                                catalog_, reformulator, exec);
    case Method::kQSharing:
      return qsharing::RunQSharing(info.ValueOrDie(), mappings_, catalog_,
                                   reformulator, exec);
    case Method::kOSharing: {
      osharing::OSharingOptions options;
      options.strategy = options_.strategy;
      options.random_seed = options_.seed;
      options.parallelism = eval.parallelism;
      options.pool = eval.pool;
      return osharing::RunOSharing(info.ValueOrDie(), mappings_, catalog_,
                                   options);
    }
  }
  return Status::Internal("unreachable");
}

Result<baselines::MethodResult> Engine::EvaluateOSharing(
    const algebra::PlanPtr& query, osharing::StrategyKind strategy) const {
  auto info = Analyze(query);
  if (!info.ok()) return info.status();
  osharing::OSharingOptions options;
  options.strategy = strategy;
  options.random_seed = options_.seed;
  return osharing::RunOSharing(info.ValueOrDie(), mappings_, catalog_,
                               options);
}

Result<baselines::MethodResult> Engine::EvaluateSetOp(
    const algebra::PlanPtr& left, const algebra::PlanPtr& right,
    SetOpKind kind) const {
  auto left_info = Analyze(left);
  if (!left_info.ok()) return left_info.status();
  auto right_info = Analyze(right);
  if (!right_info.ok()) return right_info.status();
  reformulation::Reformulator reformulator(source_schema_);
  return core::EvaluateSetOp(left_info.ValueOrDie(),
                             right_info.ValueOrDie(), kind, mappings_,
                             catalog_, reformulator);
}

Result<topk::TopKResult> Engine::EvaluateTopK(const algebra::PlanPtr& query,
                                              size_t k) const {
  auto info = Analyze(query);
  if (!info.ok()) return info.status();
  topk::TopKOptions options;
  options.osharing.strategy = options_.strategy;
  options.osharing.random_seed = options_.seed;
  return topk::RunTopK(info.ValueOrDie(), mappings_, catalog_, k, options);
}

Result<topk::ThresholdResult> Engine::EvaluateThreshold(
    const algebra::PlanPtr& query, double threshold) const {
  auto info = Analyze(query);
  if (!info.ok()) return info.status();
  osharing::OSharingOptions options;
  options.strategy = options_.strategy;
  options.random_seed = options_.seed;
  return topk::RunThreshold(info.ValueOrDie(), mappings_, catalog_,
                            threshold, options);
}

}  // namespace core
}  // namespace urm
