#include "core/engine.h"

#include "matching/matcher.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"

namespace urm {
namespace core {

namespace {

/// Adapts the public streaming interface to the o-sharing engine's
/// LeafVisitor so Run can tee u-trace leaves to a caller's sink.
class SinkLeafAdapter : public osharing::LeafVisitor {
 public:
  explicit SinkLeafAdapter(AnswerSink* sink) : sink_(sink) {}

  bool OnLeaf(const std::vector<relational::Row>& rows,
              double probability) override {
    return sink_->OnAnswer(rows, probability);
  }

 private:
  AnswerSink* sink_;
};

}  // namespace

Result<std::unique_ptr<Engine>> Engine::Create(const Options& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;

  datagen::TpchOptions tpch;
  tpch.target_mb = options.target_mb;
  tpch.seed = options.seed;
  auto catalog = datagen::GenerateTpch(tpch);
  if (!catalog.ok()) return catalog.status();
  engine->catalog_ = std::move(catalog).ValueOrDie();
  engine->source_schema_ = datagen::TpchSchema();

  datagen::TargetSchemaBundle bundle =
      datagen::GetTargetSchema(options.target_schema);
  engine->target_schema_ = std::move(bundle.schema);

  matching::MatcherOptions matcher_options;
  matcher_options.threshold = options.matcher_threshold;
  matching::NameMatcher matcher(matching::SynonymDictionary::Default(),
                                matcher_options);
  engine->correspondences_ = matcher.Match(
      engine->source_schema_, engine->target_schema_, bundle.seeds);
  if (engine->correspondences_.empty()) {
    return Status::Internal("matcher produced no correspondences");
  }

  mapping::MappingGenOptions gen;
  gen.h = options.num_mappings;
  auto mappings =
      mapping::GenerateMappings(engine->correspondences_, gen);
  if (!mappings.ok()) return mappings.status();
  engine->all_mappings_ = std::move(mappings).ValueOrDie();
  engine->mappings_ = engine->all_mappings_;
  engine->RefreshMappingSetHash();
  return engine;
}

std::unique_ptr<Engine> Engine::FromParts(
    relational::Catalog catalog, matching::SchemaDef source_schema,
    matching::SchemaDef target_schema,
    std::vector<mapping::Mapping> mappings, Options options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->catalog_ = std::move(catalog);
  engine->source_schema_ = std::move(source_schema);
  engine->target_schema_ = std::move(target_schema);
  engine->all_mappings_ = std::move(mappings);
  engine->mappings_ = engine->all_mappings_;
  engine->options_ = options;
  engine->RefreshMappingSetHash();
  return engine;
}

void Engine::UseTopMappings(size_t h) {
  mappings_ = mapping::TakeTopMappings(all_mappings_, h);
  mapping_epoch_++;
  RefreshMappingSetHash();
}

void Engine::RefreshMappingSetHash() {
  mapping_set_hash_ = mapping::MappingSetHash(mappings_);
}

Result<reformulation::TargetQueryInfo> Engine::Analyze(
    const algebra::PlanPtr& query) const {
  return reformulation::AnalyzeTargetQuery(query, target_schema_);
}

Result<Response> Engine::Run(const Request& request) const {
  return Run(request, EvalOptions());
}

Result<Response> Engine::Run(const Request& request,
                             const EvalOptions& eval) const {
  auto response = RunInternal(request, eval);
  if (eval.sink != nullptr) {
    eval.sink->OnComplete(response.ok() ? Status::OK() : response.status());
  }
  return response;
}

Result<Response> Engine::RunInternal(const Request& request,
                                     const EvalOptions& eval) const {
  URM_RETURN_NOT_OK(ValidateRequest(request));
  SinkLeafAdapter adapter(eval.sink);
  osharing::LeafVisitor* tee = eval.sink != nullptr ? &adapter : nullptr;

  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kEvaluate: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      reformulation::Reformulator reformulator(source_schema_);
      baselines::ExecOptions exec;
      exec.parallelism = eval.parallelism;
      exec.pool = eval.pool;
      Result<baselines::MethodResult> result =
          Status::Internal("unreachable");
      switch (request.method) {
        case Method::kBasic:
          result = baselines::RunBasic(info.ValueOrDie(),
                                       baselines::AsWeighted(mappings_),
                                       catalog_, reformulator, exec);
          break;
        case Method::kEBasic:
          result = baselines::RunEBasic(info.ValueOrDie(),
                                        baselines::AsWeighted(mappings_),
                                        catalog_, reformulator, exec);
          break;
        case Method::kEMqo:
          result = baselines::RunEMqo(info.ValueOrDie(),
                                      baselines::AsWeighted(mappings_),
                                      catalog_, reformulator, exec);
          break;
        case Method::kQSharing:
          result = qsharing::RunQSharing(info.ValueOrDie(), mappings_,
                                         catalog_, reformulator, exec);
          break;
        case Method::kOSharing: {
          osharing::OSharingOptions options;
          options.strategy = request.strategy.value_or(options_.strategy);
          options.random_seed = options_.seed;
          options.parallelism = eval.parallelism;
          options.pool = eval.pool;
          options.tee = tee;
          options.store = eval.operator_store;
          options.store_epoch = mapping_epoch_;
          result = osharing::RunOSharing(info.ValueOrDie(), mappings_,
                                         catalog_, options);
          break;
        }
      }
      if (!result.ok()) return result.status();
      response.evaluate = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kTopK: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      topk::TopKOptions options;
      options.osharing.strategy = request.strategy.value_or(options_.strategy);
      options.osharing.random_seed = options_.seed;
      options.osharing.tee = tee;
      options.osharing.store = eval.operator_store;
      options.osharing.store_epoch = mapping_epoch_;
      auto result = topk::RunTopK(info.ValueOrDie(), mappings_, catalog_,
                                  request.k, options);
      if (!result.ok()) return result.status();
      response.top_k = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kSetOp: {
      auto left_info = Analyze(request.query);
      if (!left_info.ok()) return left_info.status();
      auto right_info = Analyze(request.right);
      if (!right_info.ok()) return right_info.status();
      reformulation::Reformulator reformulator(source_schema_);
      auto result = core::EvaluateSetOp(left_info.ValueOrDie(),
                                        right_info.ValueOrDie(),
                                        request.set_op, mappings_, catalog_,
                                        reformulator);
      if (!result.ok()) return result.status();
      response.evaluate = std::move(result).ValueOrDie();
      return response;
    }

    case RequestKind::kThreshold: {
      auto info = Analyze(request.query);
      if (!info.ok()) return info.status();
      osharing::OSharingOptions options;
      options.strategy = request.strategy.value_or(options_.strategy);
      options.random_seed = options_.seed;
      options.tee = tee;
      options.store = eval.operator_store;
      options.store_epoch = mapping_epoch_;
      auto result = topk::RunThreshold(info.ValueOrDie(), mappings_,
                                       catalog_, request.threshold, options);
      if (!result.ok()) return result.status();
      response.threshold = std::move(result).ValueOrDie();
      return response;
    }
  }
  return Status::Internal("unreachable");
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method) const {
  return Evaluate(query, method, EvalOptions());
}

Result<baselines::MethodResult> Engine::Evaluate(
    const algebra::PlanPtr& query, Method method,
    const EvalOptions& eval) const {
  auto response = Run(Request::MethodEval(query, method), eval);
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<baselines::MethodResult> Engine::EvaluateOSharing(
    const algebra::PlanPtr& query, osharing::StrategyKind strategy) const {
  auto response = Run(
      Request::MethodEval(query, Method::kOSharing).WithStrategy(strategy));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<baselines::MethodResult> Engine::EvaluateSetOp(
    const algebra::PlanPtr& left, const algebra::PlanPtr& right,
    SetOpKind kind) const {
  auto response = Run(Request::SetOp(left, right, kind));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().evaluate);
}

Result<topk::TopKResult> Engine::EvaluateTopK(const algebra::PlanPtr& query,
                                              size_t k) const {
  auto response = Run(Request::TopK(query, k));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().top_k);
}

Result<topk::ThresholdResult> Engine::EvaluateThreshold(
    const algebra::PlanPtr& query, double threshold) const {
  auto response = Run(Request::Threshold(query, threshold));
  if (!response.ok()) return response.status();
  return std::move(response.ValueOrDie().threshold);
}

}  // namespace core
}  // namespace urm
