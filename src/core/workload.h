#pragma once

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "datagen/target_schemas.h"

/// \file workload.h
/// The paper's evaluation workload (Table III): ten target queries over
/// the Excel / Noris / Paragon purchase-order schemas, plus the
/// parametric query families used in Figures 11(d) and 11(e).
///
/// Attribute references are alias-qualified ("po.telephone"); constants
/// match values planted by the TPC-H-style generator so that every
/// query selects a non-trivial answer set.

namespace urm {
namespace core {

/// One Table III query.
struct WorkloadQuery {
  std::string id;  ///< "Q1".."Q10"
  datagen::TargetSchemaId schema;
  algebra::PlanPtr query;
};

/// Q1-Q5 (Excel), Q6-Q7 (Noris), Q8-Q10 (Paragon).
std::vector<WorkloadQuery> PaperWorkload();

/// The paper's default query (Q4, Excel).
WorkloadQuery DefaultQuery();

/// Query by id ("Q1".."Q10"); check-fails on unknown ids.
WorkloadQuery QueryById(const std::string& id);

/// Figure 11(d): a chain of `num_selections` (1..5) selections over
/// Excel PO, each on a different attribute.
algebra::PlanPtr SelectionChainQuery(int num_selections);

/// Figure 11(e): `num_products` (1..3) self-join Cartesian products of
/// Excel PO instances, chained by orderNum equality, with one constant
/// selection bounding the result.
algebra::PlanPtr SelfJoinQuery(int num_products);

}  // namespace core
}  // namespace urm
