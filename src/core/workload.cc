#include "core/workload.h"

#include "common/logging.h"

namespace urm {
namespace core {

using algebra::AggKind;
using algebra::CmpOp;
using algebra::MakeAggregate;
using algebra::MakeProduct;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;
using datagen::TargetSchemaId;

namespace {

Predicate Eq(std::string attr, relational::Value value) {
  return Predicate::AttrCmpValue(std::move(attr), CmpOp::kEq,
                                 std::move(value));
}

Predicate Join(std::string lhs, std::string rhs) {
  return Predicate::AttrCmpAttr(std::move(lhs), CmpOp::kEq, std::move(rhs));
}

PlanPtr Q1() {
  // Excel: σ telephone σ priority σ invoiceTo (PO)
  PlanPtr p = MakeScan("PO", "po");
  p = MakeSelect(p, Eq("po.invoiceTo", "Mary"));
  p = MakeSelect(p, Eq("po.priority", 2));
  p = MakeSelect(p, Eq("po.telephone", "335-1736"));
  return p;
}

PlanPtr Q2() {
  // Excel: σ quantity σ itemNum (PO × Item); PO is bare (cover-only).
  PlanPtr p = MakeProduct(MakeScan("PO", "po"), MakeScan("Item", "item"));
  p = MakeSelect(p, Eq("item.itemNum", "00001"));
  p = MakeSelect(p, Eq("item.quantity", 10));
  return p;
}

PlanPtr Q3() {
  // Excel: σ PO.orderNum=Item1.orderNum over
  //        (σ telephone PO) × (σ itemNum1 σ Item1.orderNum=Item2.orderNum
  //                            (Item1 × Item2))
  PlanPtr items =
      MakeProduct(MakeScan("Item", "item1"), MakeScan("Item", "item2"));
  items = MakeSelect(items, Join("item1.orderNum", "item2.orderNum"));
  items = MakeSelect(items, Eq("item1.itemNum", "00001"));
  PlanPtr po = MakeSelect(MakeScan("PO", "po"),
                          Eq("po.telephone", "335-1736"));
  PlanPtr p = MakeProduct(po, items);
  p = MakeSelect(p, Join("po.orderNum", "item1.orderNum"));
  return p;
}

PlanPtr Q4() {
  // Excel: σ itemNum1 ((σ PO1.orderNum=PO2.orderNum (PO1 × PO2)) ×
  //                    (σ Item1.orderNum=Item2.orderNum (Item1 × Item2)))
  PlanPtr pos = MakeProduct(MakeScan("PO", "po1"), MakeScan("PO", "po2"));
  pos = MakeSelect(pos, Join("po1.orderNum", "po2.orderNum"));
  PlanPtr items =
      MakeProduct(MakeScan("Item", "item1"), MakeScan("Item", "item2"));
  items = MakeSelect(items, Join("item1.orderNum", "item2.orderNum"));
  PlanPtr p = MakeProduct(pos, items);
  p = MakeSelect(p, Eq("item1.itemNum", "00001"));
  return p;
}

PlanPtr Q5() {
  // Excel: COUNT(σ telephone σ company σ invoiceTo σ deliverToStreet PO)
  PlanPtr p = MakeScan("PO", "po");
  p = MakeSelect(p, Eq("po.deliverToStreet", "Central"));
  p = MakeSelect(p, Eq("po.invoiceTo", "Mary"));
  p = MakeSelect(p, Eq("po.company", "ABC"));
  p = MakeSelect(p, Eq("po.telephone", "335-1736"));
  return MakeAggregate(p, AggKind::kCount);
}

PlanPtr Q6() {
  // Noris: σ telephone σ invoiceTo σ deliverToStreet (PO)
  PlanPtr p = MakeScan("PO", "po");
  p = MakeSelect(p, Eq("po.deliverToStreet", "Central"));
  p = MakeSelect(p, Eq("po.invoiceTo", "Mary"));
  p = MakeSelect(p, Eq("po.telephone", "335-1736"));
  return p;
}

PlanPtr Q7() {
  // Noris: π itemNum,unitPrice σ orderNum σ deliverTo σ deliverToStreet
  //        (PO × Item)
  PlanPtr p = MakeProduct(MakeScan("PO", "po"), MakeScan("Item", "item"));
  p = MakeSelect(p, Eq("po.deliverToStreet", "Central"));
  p = MakeSelect(p, Eq("po.deliverTo", "Mary"));
  p = MakeSelect(p, Eq("po.orderNum", "00001"));
  return MakeProject(p, {"item.itemNum", "item.unitPrice"});
}

PlanPtr Q8() {
  // Paragon: σ billTo σ shipToAddress σ shipToPhone (PO)
  PlanPtr p = MakeScan("PO", "po");
  p = MakeSelect(p, Eq("po.shipToPhone", "335-1736"));
  p = MakeSelect(p, Eq("po.shipToAddress", "ABC"));
  p = MakeSelect(p, Eq("po.billTo", "Mary"));
  return p;
}

PlanPtr Q9() {
  // Paragon: SUM(π price σ telephone σ billToAddress σ itemNum
  //              (PO × Item))
  PlanPtr p = MakeProduct(MakeScan("PO", "po"), MakeScan("Item", "item"));
  p = MakeSelect(p, Eq("item.itemNum", "00001"));
  p = MakeSelect(p, Eq("po.billToAddress", "ABC"));
  p = MakeSelect(p, Eq("po.telephone", "335-1736"));
  p = MakeProject(p, {"item.price"});
  return MakeAggregate(p, AggKind::kSum, "item.price");
}

PlanPtr Q10() {
  // Paragon: COUNT(σ invoiceTo σ billToAddress (PO × Item)); Item bare.
  PlanPtr p = MakeProduct(MakeScan("PO", "po"), MakeScan("Item", "item"));
  p = MakeSelect(p, Eq("po.billToAddress", "ABC"));
  p = MakeSelect(p, Eq("po.invoiceTo", "Mary"));
  return MakeAggregate(p, AggKind::kCount);
}

}  // namespace

std::vector<WorkloadQuery> PaperWorkload() {
  return {
      {"Q1", TargetSchemaId::kExcel, Q1()},
      {"Q2", TargetSchemaId::kExcel, Q2()},
      {"Q3", TargetSchemaId::kExcel, Q3()},
      {"Q4", TargetSchemaId::kExcel, Q4()},
      {"Q5", TargetSchemaId::kExcel, Q5()},
      {"Q6", TargetSchemaId::kNoris, Q6()},
      {"Q7", TargetSchemaId::kNoris, Q7()},
      {"Q8", TargetSchemaId::kParagon, Q8()},
      {"Q9", TargetSchemaId::kParagon, Q9()},
      {"Q10", TargetSchemaId::kParagon, Q10()},
  };
}

WorkloadQuery DefaultQuery() { return QueryById("Q4"); }

WorkloadQuery QueryById(const std::string& id) {
  for (auto& q : PaperWorkload()) {
    if (q.id == id) return q;
  }
  URM_CHECK(false) << "unknown workload query: " << id;
  return {};
}

algebra::PlanPtr SelectionChainQuery(int num_selections) {
  URM_CHECK_GE(num_selections, 1);
  URM_CHECK_LE(num_selections, 5);
  const std::vector<Predicate> preds = {
      Eq("po.telephone", "335-1736"), Eq("po.priority", 2),
      Eq("po.invoiceTo", "Mary"), Eq("po.deliverToStreet", "Central"),
      Eq("po.company", "ABC")};
  PlanPtr p = MakeScan("PO", "po");
  for (int i = 0; i < num_selections; ++i) {
    p = MakeSelect(p, preds[static_cast<size_t>(i)]);
  }
  return p;
}

algebra::PlanPtr SelfJoinQuery(int num_products) {
  URM_CHECK_GE(num_products, 1);
  URM_CHECK_LE(num_products, 3);
  PlanPtr p = MakeScan("PO", "po1");
  for (int i = 0; i < num_products; ++i) {
    std::string prev = "po" + std::to_string(i + 1);
    std::string cur = "po" + std::to_string(i + 2);
    p = MakeProduct(p, MakeScan("PO", cur));
    p = MakeSelect(p, Join(prev + ".orderNum", cur + ".orderNum"));
  }
  p = MakeSelect(p, Eq("po1.telephone", "335-1736"));
  return p;
}

}  // namespace core
}  // namespace urm
