#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/status.h"
#include "core/setops.h"
#include "datagen/target_schemas.h"
#include "datagen/tpch.h"
#include "mapping/generator.h"
#include "osharing/osharing.h"
#include "topk/threshold.h"
#include "topk/topk.h"

/// \file engine.h
/// The library's public facade. An Engine bundles everything the paper's
/// setup (§VIII-A) prepares once per configuration:
///   * a TPC-H-style source instance `D` (datagen),
///   * the scored correspondences between TPC-H and a target schema
///     (matching),
///   * the h best possible mappings with probabilities (mapping),
/// and evaluates probabilistic queries with any of the five methods plus
/// the top-k algorithm.
///
/// Quickstart:
/// \code
///   urm::core::Engine::Options opts;
///   opts.target_schema = urm::datagen::TargetSchemaId::kExcel;
///   auto engine = urm::core::Engine::Create(opts);
///   auto q = urm::core::QueryById("Q1");
///   auto result = engine.ValueOrDie()->Evaluate(
///       q.query, urm::core::Method::kOSharing);
/// \endcode

namespace urm {
namespace core {

/// Evaluation methods compared in the paper.
enum class Method {
  kBasic,
  kEBasic,
  kEMqo,
  kQSharing,
  kOSharing,
};

const char* MethodName(Method method);

/// \brief One fully-prepared experiment configuration.
///
/// Thread-safety: all const members (Analyze, Evaluate, EvaluateOSharing,
/// EvaluateTopK, EvaluateSetOp, EvaluateThreshold, the accessors) are
/// safe to call concurrently — every evaluation builds its own mutable
/// state and only reads the catalog/mapping set. UseTopMappings mutates
/// the active mapping set and must not race with evaluations; the
/// service layer treats it as a stop-the-world reconfiguration.
class Engine {
 public:
  struct Options {
    /// Source instance size; row counts scale linearly (§VIII-A uses
    /// 100 MB; benchmarks default lower so suites finish in minutes).
    double target_mb = 5.0;
    uint64_t seed = 42;
    datagen::TargetSchemaId target_schema =
        datagen::TargetSchemaId::kExcel;
    /// Number of possible mappings (the paper's h).
    int num_mappings = 100;
    /// Name-score threshold for the matcher (seeded pairs always kept).
    double matcher_threshold = 0.74;
    /// Operator selection strategy for o-sharing / top-k.
    osharing::StrategyKind strategy = osharing::StrategyKind::kSEF;
  };

  /// Generates the instance, runs the matcher, and enumerates the h
  /// best mappings.
  static Result<std::unique_ptr<Engine>> Create(const Options& options);

  /// Builds an Engine from pre-made parts (tests use this to craft
  /// small controlled scenarios).
  static std::unique_ptr<Engine> FromParts(
      relational::Catalog catalog, matching::SchemaDef source_schema,
      matching::SchemaDef target_schema,
      std::vector<mapping::Mapping> mappings, Options options);

  const relational::Catalog& catalog() const { return catalog_; }
  const matching::SchemaDef& source_schema() const { return source_schema_; }
  const matching::SchemaDef& target_schema() const { return target_schema_; }
  const std::vector<mapping::Mapping>& mappings() const { return mappings_; }
  const std::vector<matching::Correspondence>& correspondences() const {
    return correspondences_;
  }
  const Options& options() const { return options_; }

  /// Restricts the mapping set to the top h (renormalized); used by the
  /// |M| sweeps.
  void UseTopMappings(size_t h);

  /// Analyzes a target query against the target schema.
  Result<reformulation::TargetQueryInfo> Analyze(
      const algebra::PlanPtr& query) const;

  /// Intra-query parallelism knobs for Evaluate. With parallelism > 1
  /// and a pool, the mapping-partition loops of the chosen method fan
  /// out (q-sharing/basic/e-basic: one task per representative source
  /// query; o-sharing: one task per root u-trace partition) and merge
  /// deterministically in partition order. e-MQO stays sequential (its
  /// shared-subexpression memo is an execution-order dependency).
  struct EvalOptions {
    int parallelism = 1;
    ThreadPool* pool = nullptr;
  };

  /// Evaluates a probabilistic query with the chosen method.
  Result<baselines::MethodResult> Evaluate(const algebra::PlanPtr& query,
                                           Method method) const;

  /// Evaluate with explicit parallelism options; identical results to
  /// the sequential overload (bit-identical for deterministic
  /// strategies, see OSharingOptions::parallelism).
  Result<baselines::MethodResult> Evaluate(const algebra::PlanPtr& query,
                                           Method method,
                                           const EvalOptions& eval) const;

  /// o-sharing with an explicit operator-selection strategy (used by
  /// the strategy-comparison experiments, Fig. 11(f) / Table IV).
  Result<baselines::MethodResult> EvaluateOSharing(
      const algebra::PlanPtr& query, osharing::StrategyKind strategy) const;

  /// Evaluates a probabilistic top-k query (§VII).
  Result<topk::TopKResult> EvaluateTopK(const algebra::PlanPtr& query,
                                        size_t k) const;

  /// Evaluates `left OP right` (probabilistic set operations — the
  /// paper's future-work extension; see setops.h).
  Result<baselines::MethodResult> EvaluateSetOp(
      const algebra::PlanPtr& left, const algebra::PlanPtr& right,
      SetOpKind kind) const;

  /// Evaluates a probability-threshold query: all tuples with
  /// Pr >= threshold (extension; see threshold.h).
  Result<topk::ThresholdResult> EvaluateThreshold(
      const algebra::PlanPtr& query, double threshold) const;

  /// Average pairwise overlap of the current mapping set (Fig. 9).
  double MappingOverlapRatio() const {
    return mapping::MappingSetOverlapRatio(mappings_);
  }

 private:
  Engine() = default;

  relational::Catalog catalog_;
  matching::SchemaDef source_schema_;
  matching::SchemaDef target_schema_;
  std::vector<matching::Correspondence> correspondences_;
  std::vector<mapping::Mapping> all_mappings_;  ///< full enumerated set
  std::vector<mapping::Mapping> mappings_;      ///< active (top-h) set
  Options options_;
};

}  // namespace core
}  // namespace urm
