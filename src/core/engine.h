#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/status.h"
#include "core/request.h"
#include "core/setops.h"
#include "datagen/target_schemas.h"
#include "datagen/tpch.h"
#include "mapping/generator.h"
#include "mapping/sharded.h"
#include "obs/metrics.h"
#include "osharing/osharing.h"
#include "topk/threshold.h"
#include "topk/topk.h"

/// \file engine.h
/// The library's public facade. An Engine bundles everything the paper's
/// setup (§VIII-A) prepares once per configuration:
///   * a TPC-H-style source instance `D` (datagen),
///   * the scored correspondences between TPC-H and a target schema
///     (matching),
///   * the h best possible mappings with probabilities (mapping),
/// and answers probabilistic queries of every kind through the unified
/// request API: build a core::Request (method evaluation, top-k,
/// set-op, or threshold) and dispatch it with Run. See request.h for
/// the envelope and the AnswerSink streaming hook, and
/// EvalOptions::mapping_shards for sharded (h ≫ 10³) evaluation.
///
/// Quickstart:
/// \code
///   urm::core::Engine::Options opts;
///   opts.target_schema = urm::datagen::TargetSchemaId::kExcel;
///   auto engine = urm::core::Engine::Create(opts);
///   auto q = urm::core::QueryById("Q1");
///   auto response = engine.ValueOrDie()->Run(
///       urm::core::Request::MethodEval(q.query,
///                                      urm::core::Method::kOSharing));
///   // response.ValueOrDie().evaluate.answers holds the AnswerSet.
/// \endcode
///
/// Migration note: the per-kind entry points (Evaluate,
/// EvaluateOSharing, EvaluateTopK, EvaluateSetOp, EvaluateThreshold)
/// predate the Request API. They remain as thin wrappers over Run —
/// same results, same costs — but new code should construct Requests:
/// only Run offers streaming sinks, and only Requests flow through the
/// service tier's fingerprint/dedup/cache machinery.

namespace urm {
namespace core {

/// \brief One fully-prepared experiment configuration.
///
/// Thread-safety: all const members (Run, Analyze, the legacy Evaluate*
/// wrappers, the accessors) are safe to call concurrently — every
/// evaluation pins an immutable snapshot of the active mapping set and
/// of the catalog once at dispatch and never rereads either, so
/// UseTopMappings / SetActiveMappings (mapping hot-reconfiguration)
/// and ApplyDelta (row-level ingest) may run under traffic: in-flight
/// evaluations complete against their pinned epoch, later dispatches
/// see the new state. `mappings()` returns a reference into the
/// current snapshot — do not hold it across a reconfiguration.
class Engine {
 public:
  struct Options {
    /// Source instance size; row counts scale linearly (§VIII-A uses
    /// 100 MB; benchmarks default lower so suites finish in minutes).
    double target_mb = 5.0;
    uint64_t seed = 42;
    datagen::TargetSchemaId target_schema =
        datagen::TargetSchemaId::kExcel;
    /// Number of possible mappings (the paper's h).
    int num_mappings = 100;
    /// Name-score threshold for the matcher (seeded pairs always kept).
    double matcher_threshold = 0.74;
    /// Operator selection strategy for o-sharing / top-k.
    osharing::StrategyKind strategy = osharing::StrategyKind::kSEF;
  };

  /// Generates the instance, runs the matcher, and enumerates the h
  /// best mappings.
  static Result<std::unique_ptr<Engine>> Create(const Options& options);

  /// Builds an Engine from pre-made parts (tests use this to craft
  /// small controlled scenarios).
  static std::unique_ptr<Engine> FromParts(
      relational::Catalog catalog, matching::SchemaDef source_schema,
      matching::SchemaDef target_schema,
      std::vector<mapping::Mapping> mappings, Options options);

  /// Configuration accessors. Safe to call concurrently with
  /// evaluations; the references stay valid for the engine's lifetime,
  /// but `mappings()` returns a view into the current mapping-set
  /// snapshot, which a reconfiguration replaces — do not hold the
  /// reference across one.
  const relational::Catalog& catalog() const { return catalog_; }
  const matching::SchemaDef& source_schema() const { return source_schema_; }
  const matching::SchemaDef& target_schema() const { return target_schema_; }
  const std::vector<mapping::Mapping>& mappings() const {
    return CurrentMappingState()->mappings;
  }
  const std::vector<matching::Correspondence>& correspondences() const {
    return correspondences_;
  }
  const Options& options() const { return options_; }

  /// Restricts the mapping set to the top h (renormalized); used by the
  /// |M| sweeps. Bumps the reconfiguration epoch and refreshes the
  /// memoized mapping-set hash. Safe under traffic: in-flight
  /// evaluations complete against their pinned snapshot.
  void UseTopMappings(size_t h);

  /// Replaces the active mapping set wholesale (hot reconfiguration:
  /// swap or reweight under traffic). Probabilities are renormalized
  /// to sum to 1; fails on an empty set or non-positive total mass.
  /// Bumps the reconfiguration epoch like UseTopMappings. The full
  /// enumerated set (`all_mappings_`, the UseTopMappings source) is
  /// left untouched.
  Status SetActiveMappings(std::vector<mapping::Mapping> mappings);

  /// Applies a row-level delta batch to the catalog (see
  /// relational/delta.h). In-flight evaluations complete against their
  /// pinned catalog snapshot; later dispatches see the new state. The
  /// receipt carries what the serving tier needs to fence its caches.
  Result<relational::ApplyResult> ApplyDelta(
      const relational::DeltaBatch& batch) {
    return catalog_.ApplyDelta(batch);
  }

  /// Structural hash of the active mapping set, memoized per
  /// reconfiguration epoch — the serving tier folds it into every
  /// request fingerprint without rehashing h mappings per submission.
  uint64_t mapping_set_hash() const {
    return mapping_set_hash_.load(std::memory_order_acquire);
  }

  /// Monotonic counter incremented by each mapping reconfiguration
  /// (UseTopMappings / SetActiveMappings).
  uint64_t mapping_epoch() const {
    return mapping_epoch_.load(std::memory_order_acquire);
  }

  /// The catalog's data epoch (bumped per applied delta batch).
  uint64_t data_epoch() const { return catalog_.data_epoch(); }

  /// The set of source relations `request` can read under the current
  /// mapping set, as FNV-1a hashes of the relation names (sorted,
  /// deduplicated) — the AnswerCache's delta-aware invalidation keys.
  /// Returns an empty vector when the footprint cannot be determined
  /// (analysis failure), which callers must treat as
  /// "depends on every relation".
  std::vector<uint64_t> SourceFootprint(const Request& request) const;

  /// Analyzes a target query against the target schema.
  Result<reformulation::TargetQueryInfo> Analyze(
      const algebra::PlanPtr& query) const;

  /// Per-dispatch knobs for Run. With parallelism > 1 and a pool, the
  /// mapping-partition loops of a method evaluation fan out
  /// (q-sharing/basic/e-basic: one task per representative source
  /// query; o-sharing: one task per root u-trace partition) and merge
  /// deterministically in partition order. e-MQO stays sequential (its
  /// shared-subexpression memo is an execution-order dependency), as do
  /// top-k/threshold (their pruning depends on ordered traversal).
  struct EvalOptions {
    int parallelism = 1;
    ThreadPool* pool = nullptr;
    /// Partition the active mapping set into this many contiguous
    /// probability-renormalized shards (mapping::ShardedMappingSet),
    /// evaluate each shard independently — its own engine clone /
    /// reformulator, concurrently when `pool` is set — and merge the
    /// per-shard AnswerSets deterministically in shard order,
    /// reweighting probabilities by shard mass. <= 1 evaluates the
    /// whole set in one pass (the default; bit-identical to the
    /// pre-sharding behavior). Applies to all four request kinds; for
    /// top-k / threshold each shard computes its complete renormalized
    /// answer mass (per-shard scans still terminate on their own
    /// exhausted-mass bound) and the rank/threshold cut happens on the
    /// merged exact probabilities. Ignored for streaming requests
    /// (`sink` set): a sharded merge has no global leaf order to
    /// stream.
    int mapping_shards = 1;
    /// Streams u-trace leaf answers as they are produced (o-sharing
    /// evaluation, top-k, threshold); see core::AnswerSink. May be
    /// null. OnComplete fires for every request kind.
    AnswerSink* sink = nullptr;
    /// Shared cross-query memo of materialized o-sharing operators
    /// (selections + scans); see osharing/operator_store.h. The
    /// serving tier owns one per QueryService and fences it on
    /// mapping-epoch changes, so concurrent and successive queries
    /// over the same catalog reuse each other's materializations. May
    /// be null (each evaluation then shares only within itself).
    osharing::OperatorStore* operator_store = nullptr;
    /// Pre-resolved histograms RunSharded reports per-shard wall time
    /// and per-run skew (max/mean) into; the serving tier wires this
    /// from its metrics bundle. May be null (no reporting).
    const obs::ShardMetrics* shard_metrics = nullptr;
  };

  /// Dispatches any Request — the single entry point behind all query
  /// kinds. Returns the kind-tagged Response; with eval.sink set, leaf
  /// answers stream to the sink before Run returns.
  Result<Response> Run(const Request& request,
                       const EvalOptions& eval) const;

  /// Run with default EvalOptions (sequential, no streaming).
  Result<Response> Run(const Request& request) const;

  // Legacy per-kind entry points. All are thin wrappers over Run with
  // the matching Request factory — same results, same costs, same
  // thread-safety (const, concurrent) — kept for source compatibility.
  // New code should construct Requests (see the migration note above);
  // only Run offers streaming sinks, sharding, and the service tier's
  // fingerprint/dedup/cache machinery.

  /// \deprecated Run(Request::MethodEval(query, method)).
  Result<baselines::MethodResult> Evaluate(const algebra::PlanPtr& query,
                                           Method method) const;

  /// \deprecated Run(Request::MethodEval(query, method), eval).
  Result<baselines::MethodResult> Evaluate(const algebra::PlanPtr& query,
                                           Method method,
                                           const EvalOptions& eval) const;

  /// \deprecated Run(Request::MethodEval(...).WithStrategy(strategy)).
  Result<baselines::MethodResult> EvaluateOSharing(
      const algebra::PlanPtr& query, osharing::StrategyKind strategy) const;

  /// \deprecated Run(Request::TopK(query, k)).
  Result<topk::TopKResult> EvaluateTopK(const algebra::PlanPtr& query,
                                        size_t k) const;

  /// \deprecated Run(Request::SetOp(left, right, kind)).
  Result<baselines::MethodResult> EvaluateSetOp(
      const algebra::PlanPtr& left, const algebra::PlanPtr& right,
      SetOpKind kind) const;

  /// \deprecated Run(Request::Threshold(query, threshold)).
  Result<topk::ThresholdResult> EvaluateThreshold(
      const algebra::PlanPtr& query, double threshold) const;

  /// Average pairwise overlap of the current mapping set (Fig. 9).
  double MappingOverlapRatio() const {
    return mapping::MappingSetOverlapRatio(CurrentMappingState()->mappings);
  }

 private:
  Engine() = default;

  /// One immutable published generation of the active mapping set.
  /// Evaluations pin the current state once at dispatch;
  /// reconfigurations build a new state and swap the pointer, so
  /// mappings / epoch / hash can never tear apart mid-evaluation.
  struct MappingState {
    std::vector<mapping::Mapping> mappings;
    uint64_t epoch = 0;
    uint64_t hash = 0;
  };

  std::shared_ptr<const MappingState> CurrentMappingState() const;

  /// Swaps in a new active mapping set and refreshes the atomic
  /// epoch/hash mirrors. `advance_epoch` is false only at construction
  /// (the initial publish keeps epoch 0); reconfigurations pass true
  /// and the next epoch is taken under the lock, so concurrent
  /// reconfigurations cannot mint the same epoch twice.
  void PublishMappings(std::vector<mapping::Mapping> mappings,
                       bool advance_epoch);

  /// Run minus the sink OnComplete notification (Run wraps it so the
  /// completion hook fires exactly once on every path). Pins the
  /// mapping-set snapshot and a catalog snapshot, then delegates.
  Result<Response> RunInternal(const Request& request,
                               const EvalOptions& eval) const;

  /// The dispatch body, everything below the snapshot pin: `state` and
  /// `catalog` are the request's frozen view of the world for its
  /// whole (synchronous) evaluation, shards included.
  Result<Response> RunPinned(const Request& request,
                             const EvalOptions& eval,
                             const MappingState& state,
                             const relational::Catalog& catalog) const;

  /// Sharded evaluation (EvalOptions::mapping_shards > 1): builds the
  /// ShardedMappingSet, evaluates every shard (concurrently when
  /// eval.pool is set), and merges the per-shard results in shard
  /// order. Falls back to the single-pass path when the set cannot be
  /// split (h < 2).
  Result<Response> RunSharded(const Request& request,
                              const EvalOptions& eval,
                              const MappingState& state,
                              const relational::Catalog& catalog) const;

  /// The memoized sharded view of `state`'s mapping set for
  /// `num_shards`, rebuilt only when the reconfiguration epoch or the
  /// requested shard count changes — serving a sharded request is
  /// O(plan), not O(h), after the first build (mirrors the
  /// mapping-set-hash memo). Callers alternating shard counts on one
  /// engine thrash the memo but stay correct (each gets its own
  /// shared_ptr).
  std::shared_ptr<const mapping::ShardedMappingSet> ShardedView(
      const MappingState& state, size_t num_shards) const;

  /// The kEvaluate method dispatch over an explicit mapping set — one
  /// code path shared by the whole-set evaluation and every shard
  /// evaluation, so the merged sharded result cannot drift from the
  /// unsharded one. `store_shard_epoch` is 0 for whole-set runs, the
  /// shard's identity hash otherwise (see OperatorKey::shard_epoch);
  /// `store_epoch` is the pinned mapping epoch.
  Result<baselines::MethodResult> EvaluateMethodOverMappings(
      const reformulation::TargetQueryInfo& info, const Request& request,
      const EvalOptions& eval,
      const std::vector<mapping::Mapping>& mappings,
      const relational::Catalog& catalog, uint64_t store_epoch,
      uint64_t store_shard_epoch, osharing::LeafVisitor* tee) const;

  relational::Catalog catalog_;
  matching::SchemaDef source_schema_;
  matching::SchemaDef target_schema_;
  std::vector<matching::Correspondence> correspondences_;
  std::vector<mapping::Mapping> all_mappings_;  ///< full enumerated set
  /// Active mapping set: published generations swapped under
  /// mapping_mu_, read via CurrentMappingState().
  mutable std::mutex mapping_mu_;
  std::shared_ptr<const MappingState> mapping_state_;
  /// Lock-free mirrors of mapping_state_->{hash, epoch} for the
  /// hot-path accessors (fingerprinting, per-dispatch fences).
  std::atomic<uint64_t> mapping_set_hash_{0};
  std::atomic<uint64_t> mapping_epoch_{0};
  /// ShardedView memo (guarded by shard_memo_mu_): the sharded set for
  /// the last (epoch, shard count) pair requested.
  mutable std::mutex shard_memo_mu_;
  mutable std::shared_ptr<const mapping::ShardedMappingSet> shard_memo_;
  mutable uint64_t shard_memo_epoch_ = 0;
  mutable size_t shard_memo_count_ = 0;
  Options options_;
};

}  // namespace core
}  // namespace urm
