#pragma once

#include <memory>
#include <optional>

#include "algebra/fingerprint.h"
#include "algebra/plan.h"
#include "baselines/method_result.h"
#include "common/status.h"
#include "core/setops.h"
#include "topk/threshold.h"
#include "topk/topk.h"

/// \file request.h
/// The unified request/response envelope of the serving API. The engine
/// answers four kinds of probabilistic queries — evaluate-with-method
/// (the paper's five methods of §VIII), top-k (§VII), set operations
/// and probability thresholds (the §IX extensions) — and every kind
/// flows through one tagged `Request` dispatched by
/// `Engine::Run(const Request&, const EvalOptions&)`. The service tier
/// (QueryService) fingerprints, deduplicates, caches and schedules
/// Requests uniformly; callers receive a `Response` whose active member
/// is selected by `kind`.
///
/// Build requests with the factories:
/// \code
///   auto r1 = core::Request::MethodEval(q, core::Method::kOSharing);
///   auto r2 = core::Request::TopK(q, 5);
///   auto r3 = core::Request::SetOp(qa, qb, core::SetOpKind::kUnion);
///   auto r4 = core::Request::Threshold(q, 0.25);
/// \endcode

namespace urm {
namespace core {

/// Evaluation methods compared in the paper.
enum class Method {
  kBasic,
  kEBasic,
  kEMqo,
  kQSharing,
  kOSharing,
};

const char* MethodName(Method method);

/// Discriminates the four query kinds of the unified API.
enum class RequestKind {
  kEvaluate,   ///< full probabilistic answers with a chosen Method
  kTopK,       ///< k highest-probability tuples with bounds (§VII)
  kSetOp,      ///< query OP right under possible-world semantics
  kThreshold,  ///< all tuples with Pr >= threshold
};

const char* RequestKindName(RequestKind kind);

/// \brief One query request of any kind — the single envelope accepted
/// by Engine::Run and QueryService.
///
/// `kind` selects which of the kind-specific fields are meaningful;
/// the factories below set exactly the relevant ones. A Request is
/// cheap to copy (plans are shared_ptr).
struct Request {
  RequestKind kind = RequestKind::kEvaluate;
  /// The target query plan (the left operand for kSetOp).
  algebra::PlanPtr query;

  /// kEvaluate: the evaluation method.
  Method method = Method::kOSharing;
  /// kEvaluate (o-sharing) / kTopK / kThreshold: operator-selection
  /// strategy override; the engine default applies when unset.
  std::optional<osharing::StrategyKind> strategy;
  /// kTopK: number of tuples to return (must be > 0).
  size_t k = 0;
  /// kSetOp: the right operand.
  algebra::PlanPtr right;
  /// kSetOp: which set operation.
  SetOpKind set_op = SetOpKind::kUnion;
  /// kThreshold: minimum probability, in (0, 1].
  double threshold = 0.0;

  static Request MethodEval(algebra::PlanPtr query, Method method);
  static Request TopK(algebra::PlanPtr query, size_t k);
  static Request SetOp(algebra::PlanPtr left, algebra::PlanPtr right,
                       SetOpKind op);
  static Request Threshold(algebra::PlanPtr query, double threshold);

  /// Sets the o-sharing strategy override (kEvaluate with kOSharing,
  /// kTopK, kThreshold); returns *this for chaining.
  Request& WithStrategy(osharing::StrategyKind s) {
    strategy = s;
    return *this;
  }
};

/// Shape errors caught before dispatch: null plans, k == 0, a
/// threshold outside (0, 1].
Status ValidateRequest(const Request& request);

/// One recorded u-trace leaf: the distinct answer rows and the mapping
/// partition's probability mass, in emission order. A streaming
/// evaluation records its leaf sequence so a later sink-bearing cache
/// hit can replay the stream without re-evaluating.
struct RecordedLeaf {
  std::vector<relational::Row> rows;
  double probability = 0.0;
};

/// \brief The result of one Request; the member matching `kind` is
/// populated (kEvaluate and kSetOp both produce a MethodResult).
///
/// Plain movable value type so the engine can hand it out without
/// copies and the service can share one immutable instance (via
/// shared_ptr) between the cache and any number of waiters.
struct Response {
  RequestKind kind = RequestKind::kEvaluate;
  baselines::MethodResult evaluate;  ///< kEvaluate / kSetOp
  topk::TopKResult top_k;            ///< kTopK
  topk::ThresholdResult threshold;   ///< kThreshold
  /// The complete leaf sequence of the streaming evaluation that
  /// produced this response (null when it was evaluated without a sink
  /// or the trace was cut short) — the service replays it on
  /// sink-bearing cache hits.
  std::shared_ptr<const std::vector<RecordedLeaf>> leaves;
};

/// \brief Streaming consumer of answers as the evaluation produces
/// them, ahead of the final aggregated Response.
///
/// The o-sharing u-trace emits one leaf at a time (a set of answer
/// rows and the probability mass of the mapping partition that
/// produced them) and the top-k / threshold scans consume those leaves
/// incrementally; an AnswerSink taps that flow. Wire one through
/// Engine::EvalOptions::sink or QueryService::SubmitAsync.
///
/// Streaming applies to the u-trace kinds — kEvaluate with kOSharing,
/// kTopK, kThreshold; for the other kinds only OnComplete fires.
/// Callbacks run on the evaluating thread, strictly before the
/// Response is returned (or the future becomes ready).
class AnswerSink {
 public:
  virtual ~AnswerSink() = default;

  /// One u-trace leaf: `rows` are the distinct answer rows (layout =
  /// the query's output refs; empty = the θ "no answer" outcome) and
  /// `probability` the leaf's mapping-partition mass. Return false to
  /// unsubscribe — evaluation continues to the full Response, but this
  /// sink sees no further leaves.
  virtual bool OnAnswer(const std::vector<relational::Row>& rows,
                        double probability) = 0;

  /// Fires exactly once when the evaluation finishes, after the last
  /// OnAnswer, with the evaluation's final status.
  virtual void OnComplete(const Status& status) { (void)status; }
};

/// Fingerprints the full request — the structural plan hash (both
/// plans for kSetOp) plus every kind-specific parameter — with the
/// caller's evaluation-context hash (the service folds in the active
/// mapping-set hash). Two Requests fingerprint equal iff they are the
/// same query of the same kind with the same parameters, which is what
/// makes top-k / set-op / threshold results cacheable and
/// batch-dedupable alongside method evaluations.
algebra::PlanFingerprint FingerprintRequest(const Request& request,
                                            uint64_t context_hash = 0);

}  // namespace core
}  // namespace urm
