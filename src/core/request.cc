#include "core/request.h"

#include <cstring>

namespace urm {
namespace core {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBasic:
      return "basic";
    case Method::kEBasic:
      return "e-basic";
    case Method::kEMqo:
      return "e-MQO";
    case Method::kQSharing:
      return "q-sharing";
    case Method::kOSharing:
      return "o-sharing";
  }
  return "?";
}

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEvaluate:
      return "evaluate";
    case RequestKind::kTopK:
      return "top-k";
    case RequestKind::kSetOp:
      return "set-op";
    case RequestKind::kThreshold:
      return "threshold";
  }
  return "?";
}

Request Request::MethodEval(algebra::PlanPtr query, Method method) {
  Request request;
  request.kind = RequestKind::kEvaluate;
  request.query = std::move(query);
  request.method = method;
  return request;
}

Request Request::TopK(algebra::PlanPtr query, size_t k) {
  Request request;
  request.kind = RequestKind::kTopK;
  request.query = std::move(query);
  request.k = k;
  return request;
}

Request Request::SetOp(algebra::PlanPtr left, algebra::PlanPtr right,
                       SetOpKind op) {
  Request request;
  request.kind = RequestKind::kSetOp;
  request.query = std::move(left);
  request.right = std::move(right);
  request.set_op = op;
  return request;
}

Request Request::Threshold(algebra::PlanPtr query, double threshold) {
  Request request;
  request.kind = RequestKind::kThreshold;
  request.query = std::move(query);
  request.threshold = threshold;
  return request;
}

Status ValidateRequest(const Request& request) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("null query plan");
  }
  switch (request.kind) {
    case RequestKind::kEvaluate:
      return Status::OK();
    case RequestKind::kTopK:
      if (request.k == 0) {
        return Status::InvalidArgument("k must be positive");
      }
      return Status::OK();
    case RequestKind::kSetOp:
      if (request.right == nullptr) {
        return Status::InvalidArgument("null right plan for set-op");
      }
      return Status::OK();
    case RequestKind::kThreshold:
      if (request.threshold <= 0.0 || request.threshold > 1.0) {
        return Status::InvalidArgument("threshold must be in (0, 1]");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

algebra::PlanFingerprint FingerprintRequest(const Request& request,
                                            uint64_t context_hash) {
  using algebra::MixHash;
  uint64_t h = algebra::HashPlan(request.query);
  h = MixHash(h, static_cast<uint64_t>(request.kind) + 1);
  switch (request.kind) {
    case RequestKind::kEvaluate:
      h = MixHash(h, static_cast<uint64_t>(request.method) + 1);
      break;
    case RequestKind::kTopK:
      h = MixHash(h, static_cast<uint64_t>(request.k));
      break;
    case RequestKind::kSetOp:
      h = MixHash(h, algebra::HashPlan(request.right));
      h = MixHash(h, static_cast<uint64_t>(request.set_op) + 1);
      break;
    case RequestKind::kThreshold: {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(request.threshold), "");
      std::memcpy(&bits, &request.threshold, sizeof(bits));
      h = MixHash(h, bits);
      break;
    }
  }
  // The strategy override changes which u-trace is taken (and thereby
  // top-k/threshold bound tightness), so it is part of the identity —
  // but only for the kinds that consume it; elsewhere a stray override
  // must not split the cache/dedup key of identical evaluations.
  const bool strategy_applies =
      request.kind == RequestKind::kTopK ||
      request.kind == RequestKind::kThreshold ||
      (request.kind == RequestKind::kEvaluate &&
       request.method == Method::kOSharing);
  h = MixHash(h, strategy_applies && request.strategy.has_value()
                     ? static_cast<uint64_t>(*request.strategy) + 1
                     : 0);
  algebra::PlanFingerprint fp;
  fp.plan_hash = h;
  fp.context_hash = context_hash;
  return fp;
}

}  // namespace core
}  // namespace urm
