#pragma once

#include <vector>

#include "baselines/method_result.h"
#include "common/status.h"
#include "mapping/mapping.h"
#include "reformulation/reformulator.h"
#include "relational/catalog.h"

/// \file setops.h
/// Probabilistic set operations over uncertain matching — the paper's
/// §IX future work ("the use of o-sharing to support other complex
/// queries (e.g., set operators)"). Given two target queries q₁, q₂
/// with identical output arity, the answer of q₁ OP q₂ is defined
/// possible-world style: under mapping m the answer is
/// rows(q₁,m) OP rows(q₂,m) (set semantics), and
/// Pr(t) = Σ_m Pr(m)·[t ∈ answer under m].
///
/// Evaluation shares work the q-sharing way: mappings are partitioned
/// by their *combined* signature over both queries, and each partition
/// evaluates the two reformulated queries once.

namespace urm {
namespace core {

enum class SetOpKind {
  kUnion,
  kIntersect,
  kExcept,  ///< q1 minus q2
};

const char* SetOpName(SetOpKind kind);

/// Evaluates `left OP right` over the mapping set. Fails when the two
/// queries' output arities differ. A mapping that cannot answer a side
/// treats that side as empty (∅ ∪ B = B, ∅ ∩ B = ∅, ∅ − B = ∅).
/// Thread-safe for concurrent calls (reads `mappings`/`catalog` only);
/// the sharded evaluation path runs it once per mapping shard.
Result<baselines::MethodResult> EvaluateSetOp(
    const reformulation::TargetQueryInfo& left,
    const reformulation::TargetQueryInfo& right, SetOpKind kind,
    const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator);

}  // namespace core
}  // namespace urm
