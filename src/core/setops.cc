#include "core/setops.h"

#include <map>
#include <unordered_set>

#include "algebra/evaluate.h"
#include "algebra/optimize.h"
#include "common/timer.h"

namespace urm {
namespace core {

using reformulation::SourceQuery;
using reformulation::TargetQueryInfo;
using relational::HashRow;
using relational::Row;
using relational::RowsEqual;

const char* SetOpName(SetOpKind kind) {
  switch (kind) {
    case SetOpKind::kUnion:
      return "UNION";
    case SetOpKind::kIntersect:
      return "INTERSECT";
    case SetOpKind::kExcept:
      return "EXCEPT";
  }
  return "?";
}

namespace {

/// Rows of one side under one representative mapping (empty when the
/// mapping cannot answer the side).
Result<std::vector<Row>> SideRows(
    const TargetQueryInfo& info, const mapping::Mapping& rep,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator,
    algebra::EvalStats* stats) {
  auto reformed = reformulator.Reformulate(info, rep);
  if (!reformed.ok()) return reformed.status();
  const SourceQuery& sq = reformed.ValueOrDie();
  if (!sq.answerable) return std::vector<Row>{};
  auto optimized = algebra::PushDownSelections(sq.plan, catalog);
  if (!optimized.ok()) return optimized.status();
  algebra::EvalContext ctx;
  ctx.catalog = &catalog;
  ctx.stats = stats;
  auto rel = algebra::Evaluate(optimized.ValueOrDie(), ctx);
  if (!rel.ok()) return rel.status();
  return reformulation::AssembleRows(*rel.ValueOrDie(), sq.layout);
}

/// Applies the set operation (both sides are already duplicate-free).
std::vector<Row> Apply(SetOpKind kind, const std::vector<Row>& a,
                       const std::vector<Row>& b) {
  auto contains = [](const std::vector<Row>& rows, const Row& r) {
    for (const auto& row : rows) {
      if (RowsEqual(row, r)) return true;
    }
    return false;
  };
  std::vector<Row> out;
  switch (kind) {
    case SetOpKind::kUnion:
      out = a;
      for (const auto& r : b) {
        if (!contains(a, r)) out.push_back(r);
      }
      return out;
    case SetOpKind::kIntersect:
      for (const auto& r : a) {
        if (contains(b, r)) out.push_back(r);
      }
      return out;
    case SetOpKind::kExcept:
      for (const auto& r : a) {
        if (!contains(b, r)) out.push_back(r);
      }
      return out;
  }
  return out;
}

}  // namespace

Result<baselines::MethodResult> EvaluateSetOp(
    const TargetQueryInfo& left, const TargetQueryInfo& right,
    SetOpKind kind, const std::vector<mapping::Mapping>& mappings,
    const relational::Catalog& catalog,
    const reformulation::Reformulator& reformulator) {
  if (left.output_refs.size() != right.output_refs.size()) {
    return Status::InvalidArgument(
        "set operation over queries with different output arity: " +
        std::to_string(left.output_refs.size()) + " vs " +
        std::to_string(right.output_refs.size()));
  }

  baselines::MethodResult result;
  result.answers = reformulation::AnswerSet(left.output_refs);
  Timer timer;

  // Partition by the combined signature: mappings agreeing on both
  // queries' slots produce identical answers for the set expression.
  struct Partition {
    const mapping::Mapping* representative = nullptr;
    double probability = 0.0;
  };
  std::map<std::string, Partition> partitions;
  for (const auto& m : mappings) {
    std::string sig = reformulation::MappingSignature(left, m) + "||" +
                      reformulation::MappingSignature(right, m);
    Partition& p = partitions[sig];
    if (p.representative == nullptr) p.representative = &m;
    p.probability += m.probability();
  }
  result.rewrite_seconds = timer.Lap();
  result.partitions = partitions.size();

  for (const auto& [sig, p] : partitions) {
    auto a = SideRows(left, *p.representative, catalog, reformulator,
                      &result.stats);
    if (!a.ok()) return a.status();
    auto b = SideRows(right, *p.representative, catalog, reformulator,
                      &result.stats);
    if (!b.ok()) return b.status();
    result.source_queries += 2;
    std::vector<Row> rows =
        Apply(kind, a.ValueOrDie(), b.ValueOrDie());
    if (rows.empty()) {
      result.answers.AddNull(p.probability);
    } else {
      for (const auto& r : rows) {
        result.answers.Add(r, p.probability);
      }
    }
  }
  result.eval_seconds = timer.Lap();
  return result;
}

}  // namespace core
}  // namespace urm
