#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "relational/schema.h"
#include "relational/value.h"

/// \file columnar_relation.h
/// A relation in column-major encoded form: one compressed `Column`
/// per schema attribute, each under the codec its value distribution
/// selects (see EncodeColumn). Immutable once built — mutation goes
/// through `relational::Relation`, which drops its cached encoding on
/// the first write (copy-on-write invalidation) and re-encodes lazily.
///
/// Sits below `relational::Relation` in the layer map: Relation holds
/// an optional shared ColumnarRelation as its compressed backing and
/// materializes rows from it on demand; the algebra evaluator consumes
/// `Column::EvalPredicate` selection vectors directly on the encoded
/// form. See docs/STORAGE.md.

namespace urm {
namespace columnar {

/// Per-column encoding report (catalog storage stats, CSV load stats).
struct ColumnStats {
  std::string name;
  CodecKind codec = CodecKind::kPlain;
  size_t rows = 0;
  size_t encoded_bytes = 0;
  size_t logical_bytes = 0;
};

class ColumnarRelation;
using ColumnarRelationPtr = std::shared_ptr<const ColumnarRelation>;

/// \brief One relation, column-major and per-column compressed.
class ColumnarRelation {
 public:
  /// Encodes row storage (transposes, then EncodeColumn per column).
  /// `schema` arity must match every row.
  static ColumnarRelationPtr Encode(const relational::RelationSchema& schema,
                                    const std::vector<relational::Row>& rows,
                                    const EncodingOptions& options = {});

  /// Process-wide count of Encode() calls (row-major re-encodes; the
  /// column-major FromColumns path is not counted). Lets tests assert
  /// bulk mutation re-encodes once per batch rather than once per row.
  static uint64_t EncodeCallsForTest();

  /// Encodes column-major input directly — the no-row-materialization
  /// path the CSV loader uses. All columns must share one length, and
  /// match the schema's arity.
  static ColumnarRelationPtr FromColumns(
      relational::RelationSchema schema,
      std::vector<std::vector<relational::Value>> columns,
      const EncodingOptions& options = {});

  const relational::RelationSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return *columns_[i]; }

  /// Sum of Column::EncodedBytes over all columns.
  size_t EncodedBytes() const;
  /// Sum of Column::LogicalBytes (the row-format footprint).
  size_t LogicalBytes() const;
  /// Per-column codec / size report, in schema order.
  std::vector<ColumnStats> Stats() const;
  /// Number of columns encoded with `codec`.
  size_t CodecCount(CodecKind codec) const;

  /// Decodes one row (random access across all columns).
  relational::Row MaterializeRow(size_t row) const;
  /// Appends every row to `out` in order (full decode, column-at-a-time).
  void MaterializeRows(std::vector<relational::Row>* out) const;

 private:
  ColumnarRelation(relational::RelationSchema schema, size_t num_rows,
                   std::vector<std::unique_ptr<Column>> columns)
      : schema_(std::move(schema)),
        num_rows_(num_rows),
        columns_(std::move(columns)) {}

  relational::RelationSchema schema_;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
};

}  // namespace columnar
}  // namespace urm
