#include "columnar/column.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace urm {
namespace columnar {

const char* CodecName(CodecKind codec) {
  switch (codec) {
    case CodecKind::kPlain:
      return "plain";
    case CodecKind::kDelta:
      return "delta";
    case CodecKind::kRle:
      return "rle";
    case CodecKind::kDictionary:
      return "dictionary";
  }
  return "?";
}

const char* CmpName(Cmp op) {
  switch (op) {
    case Cmp::kEq:
      return "=";
    case Cmp::kNe:
      return "!=";
    case Cmp::kLt:
      return "<";
    case Cmp::kLe:
      return "<=";
    case Cmp::kGt:
      return ">";
    case Cmp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareCells(const Value& lhs, Cmp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case Cmp::kEq:
      return lhs == rhs;
    case Cmp::kNe:
      return !(lhs == rhs);
    case Cmp::kLt:
      return lhs < rhs;
    case Cmp::kLe:
      // Spelled exactly as algebra::CompareValues — NOT !(rhs < lhs):
      // Value's numeric order is IEEE (not total), so for a NaN
      // operand the negated form would return true where the row path
      // returns false.
      return lhs < rhs || lhs == rhs;
    case Cmp::kGt:
      return rhs < lhs;
    case Cmp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

namespace {

/// Exact-representation equality: same cell type AND Value equality.
/// Runs must not merge 2 with 2.0 (Value::== would) or decode stops
/// being the identity.
bool ExactEqual(const Value& a, const Value& b) {
  return a.type() == b.type() && a == b;
}

/// Verdict of `lhs <op> rhs` when the two sides have different type
/// ranks (numeric=1 < string=2) — constant for every cell of the rank,
/// per Value::operator<. Both sides non-null.
bool RankVerdict(int lhs_rank, int rhs_rank, Cmp op) {
  switch (op) {
    case Cmp::kEq:
      return false;
    case Cmp::kNe:
      return true;
    case Cmp::kLt:
    case Cmp::kLe:
      return lhs_rank < rhs_rank;
    case Cmp::kGt:
    case Cmp::kGe:
      return lhs_rank > rhs_rank;
  }
  return false;
}

/// Numeric-domain compare matching Value semantics (== and < both go
/// through NumericValue, i.e. the double domain).
bool NumericVerdict(double lhs, Cmp op, double rhs) {
  switch (op) {
    case Cmp::kEq:
      return lhs == rhs;
    case Cmp::kNe:
      return lhs != rhs;
    case Cmp::kLt:
      return lhs < rhs;
    case Cmp::kLe:
      return lhs <= rhs;
    case Cmp::kGt:
      return lhs > rhs;
    case Cmp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// ---------------------------------------------------------------------------
// PLAIN

class PlainColumn : public Column {
 public:
  explicit PlainColumn(std::vector<Value> values)
      : values_(std::move(values)) {
    for (const Value& v : values_) bytes_ += relational::ApproxValueBytes(v);
  }

  CodecKind codec() const override { return CodecKind::kPlain; }
  size_t size() const override { return values_.size(); }

  Value ValueAt(size_t row) const override {
    URM_CHECK(row < values_.size());
    return values_[row];
  }

  void Decode(std::vector<Value>* out) const override {
    out->insert(out->end(), values_.begin(), values_.end());
  }

  size_t EncodedBytes() const override { return bytes_; }
  size_t LogicalBytes() const override { return bytes_; }

  void EvalPredicate(Cmp op, const Value& rhs,
                     SelectionVector* out) const override {
    if (rhs.is_null()) return;
    for (size_t i = 0; i < values_.size(); ++i) {
      if (CompareCells(values_[i], op, rhs)) {
        out->push_back(static_cast<uint32_t>(i));
      }
    }
  }

 private:
  std::vector<Value> values_;
  size_t bytes_ = 0;
};

// ---------------------------------------------------------------------------
// DELTA

/// Restart-block interval: random access decodes at most this many
/// varints past the nearest block anchor.
constexpr size_t kDeltaBlock = 128;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void PutVarint(uint64_t u, std::vector<uint8_t>* out) {
  while (u >= 0x80) {
    out->push_back(static_cast<uint8_t>(u) | 0x80);
    u >>= 7;
  }
  out->push_back(static_cast<uint8_t>(u));
}

uint64_t GetVarint(const std::vector<uint8_t>& bytes, size_t* pos) {
  uint64_t u = 0;
  int shift = 0;
  while (true) {
    uint8_t b = bytes[*pos];
    ++*pos;
    u |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return u;
}

class DeltaColumn : public Column {
 public:
  /// `values` must be all-int64, no NULLs (caller verified).
  explicit DeltaColumn(const std::vector<Value>& values)
      : n_(values.size()) {
    int64_t prev = 0;
    for (size_t i = 0; i < n_; ++i) {
      int64_t v = values[i].AsInt64();
      if (i % kDeltaBlock == 0) {
        block_first_.push_back(v);
        block_offset_.push_back(static_cast<uint32_t>(bytes_.size()));
      } else {
        PutVarint(ZigZag(v - prev), &bytes_);
      }
      prev = v;
    }
  }

  CodecKind codec() const override { return CodecKind::kDelta; }
  size_t size() const override { return n_; }

  Value ValueAt(size_t row) const override {
    URM_CHECK(row < n_);
    size_t block = row / kDeltaBlock;
    int64_t v = block_first_[block];
    size_t pos = block_offset_[block];
    for (size_t i = block * kDeltaBlock; i < row; ++i) {
      v += UnZigZag(GetVarint(bytes_, &pos));
    }
    return Value(v);
  }

  void Decode(std::vector<Value>* out) const override {
    ForEach([out](size_t, int64_t v) { out->push_back(Value(v)); });
  }

  size_t EncodedBytes() const override {
    return bytes_.size() + block_first_.size() * sizeof(int64_t) +
           block_offset_.size() * sizeof(uint32_t);
  }

  size_t LogicalBytes() const override { return n_ * 8; }

  void EvalPredicate(Cmp op, const Value& rhs,
                     SelectionVector* out) const override {
    if (rhs.is_null()) return;
    if (!rhs.is_numeric()) {
      // int64 cells vs a string constant: rank verdict, same for all.
      if (!RankVerdict(1, 2, op)) return;
      for (uint32_t i = 0; i < n_; ++i) out->push_back(i);
      return;
    }
    const double c = rhs.NumericValue();
    ForEach([&](size_t i, int64_t v) {
      if (NumericVerdict(static_cast<double>(v), op, c)) {
        out->push_back(static_cast<uint32_t>(i));
      }
    });
  }

 private:
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t pos = 0;
    int64_t v = 0;
    for (size_t i = 0; i < n_; ++i) {
      if (i % kDeltaBlock == 0) {
        v = block_first_[i / kDeltaBlock];
      } else {
        v += UnZigZag(GetVarint(bytes_, &pos));
      }
      fn(i, v);
    }
  }

  size_t n_;
  std::vector<uint8_t> bytes_;        ///< zigzag varint deltas
  std::vector<int64_t> block_first_;  ///< first value of each block
  std::vector<uint32_t> block_offset_;  ///< byte offset of each block
};

// ---------------------------------------------------------------------------
// RLE

class RleColumn : public Column {
 public:
  explicit RleColumn(const std::vector<Value>& values) : n_(values.size()) {
    for (size_t i = 0; i < n_; ++i) {
      if (run_values_.empty() || !ExactEqual(run_values_.back(), values[i])) {
        run_values_.push_back(values[i]);
        run_starts_.push_back(static_cast<uint32_t>(i));
      }
    }
  }

  CodecKind codec() const override { return CodecKind::kRle; }
  size_t size() const override { return n_; }
  size_t num_runs() const { return run_values_.size(); }

  Value ValueAt(size_t row) const override {
    URM_CHECK(row < n_);
    // Last run whose start <= row.
    size_t run = static_cast<size_t>(
        std::upper_bound(run_starts_.begin(), run_starts_.end(),
                         static_cast<uint32_t>(row)) -
        run_starts_.begin() - 1);
    return run_values_[run];
  }

  void Decode(std::vector<Value>* out) const override {
    for (size_t r = 0; r < run_values_.size(); ++r) {
      size_t end = RunEnd(r);
      for (size_t i = run_starts_[r]; i < end; ++i) {
        out->push_back(run_values_[r]);
      }
    }
  }

  size_t EncodedBytes() const override {
    size_t bytes = 0;
    for (const Value& v : run_values_) {
      bytes += relational::ApproxValueBytes(v) + sizeof(uint32_t);
    }
    return bytes;
  }

  size_t LogicalBytes() const override {
    size_t bytes = 0;
    for (size_t r = 0; r < run_values_.size(); ++r) {
      bytes += (RunEnd(r) - run_starts_[r]) *
               relational::ApproxValueBytes(run_values_[r]);
    }
    return bytes;
  }

  void EvalPredicate(Cmp op, const Value& rhs,
                     SelectionVector* out) const override {
    if (rhs.is_null()) return;
    for (size_t r = 0; r < run_values_.size(); ++r) {
      if (!CompareCells(run_values_[r], op, rhs)) continue;
      size_t end = RunEnd(r);
      for (size_t i = run_starts_[r]; i < end; ++i) {
        out->push_back(static_cast<uint32_t>(i));
      }
    }
  }

 private:
  size_t RunEnd(size_t run) const {
    return run + 1 < run_starts_.size() ? run_starts_[run + 1] : n_;
  }

  size_t n_;
  std::vector<Value> run_values_;
  std::vector<uint32_t> run_starts_;
};

// ---------------------------------------------------------------------------
// DICTIONARY

constexpr uint32_t kNullCode = 0xFFFFFFFFu;

class DictionaryColumn : public Column {
 public:
  DictionaryColumn(std::vector<std::string> dict, std::vector<uint32_t> codes)
      : dict_(std::move(dict)), codes_(std::move(codes)) {}

  CodecKind codec() const override { return CodecKind::kDictionary; }
  size_t size() const override { return codes_.size(); }
  size_t dictionary_size() const { return dict_.size(); }

  Value ValueAt(size_t row) const override {
    URM_CHECK(row < codes_.size());
    uint32_t c = codes_[row];
    return c == kNullCode ? Value::Null() : Value(dict_[c]);
  }

  void Decode(std::vector<Value>* out) const override {
    for (uint32_t c : codes_) {
      out->push_back(c == kNullCode ? Value::Null() : Value(dict_[c]));
    }
  }

  size_t EncodedBytes() const override {
    size_t bytes = codes_.size() * sizeof(uint32_t);
    for (const std::string& s : dict_) bytes += 8 + s.size();
    return bytes;
  }

  size_t LogicalBytes() const override {
    size_t bytes = 0;
    for (uint32_t c : codes_) {
      bytes += 8 + (c == kNullCode ? 0 : dict_[c].size());
    }
    return bytes;
  }

  void EvalPredicate(Cmp op, const Value& rhs,
                     SelectionVector* out) const override {
    if (rhs.is_null()) return;
    // One comparison per distinct string, then a pure code scan.
    std::vector<char> match(dict_.size());
    for (size_t c = 0; c < dict_.size(); ++c) {
      match[c] = CompareCells(Value(dict_[c]), op, rhs) ? 1 : 0;
    }
    for (size_t i = 0; i < codes_.size(); ++i) {
      uint32_t c = codes_[i];
      if (c != kNullCode && match[c]) {
        out->push_back(static_cast<uint32_t>(i));
      }
    }
  }

 private:
  std::vector<std::string> dict_;   ///< distinct strings, first-seen order
  std::vector<uint32_t> codes_;     ///< per row; kNullCode marks NULL
};

/// Builds the dictionary form, or null when the vocabulary exceeds
/// `max_entries` (the PLAIN-fallback trigger). `values` must be
/// string-or-NULL (caller verified).
std::unique_ptr<Column> TryBuildDictionary(const std::vector<Value>& values,
                                           size_t max_entries) {
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  std::unordered_map<std::string, uint32_t> index;
  for (const Value& v : values) {
    if (v.is_null()) {
      codes.push_back(kNullCode);
      continue;
    }
    auto [it, inserted] =
        index.emplace(v.AsString(), static_cast<uint32_t>(dict.size()));
    if (inserted) {
      if (dict.size() >= max_entries) return nullptr;
      dict.push_back(v.AsString());
    }
    codes.push_back(it->second);
  }
  return std::make_unique<DictionaryColumn>(std::move(dict),
                                            std::move(codes));
}

/// One full pass of column shape statistics for codec selection.
struct ColumnShape {
  size_t nulls = 0;
  size_t ints = 0;
  size_t strings = 0;
  size_t runs = 0;
  size_t sampled = 0;
  size_t sampled_distinct = 0;
};

ColumnShape MeasureShape(const std::vector<Value>& values,
                         const EncodingOptions& options) {
  ColumnShape shape;
  const size_t n = values.size();
  const size_t stride =
      options.sample_size == 0 ? 1
                               : std::max<size_t>(1, n / options.sample_size);
  std::unordered_set<size_t> sample_hashes;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = values[i];
    switch (v.type()) {
      case ValueType::kNull:
        ++shape.nulls;
        break;
      case ValueType::kInt64:
        ++shape.ints;
        break;
      case ValueType::kString:
        ++shape.strings;
        break;
      default:
        break;
    }
    if (i == 0 || !ExactEqual(values[i - 1], v)) ++shape.runs;
    if (i % stride == 0) {
      ++shape.sampled;
      sample_hashes.insert(v.Hash());
    }
  }
  shape.sampled_distinct = sample_hashes.size();
  return shape;
}

}  // namespace

std::unique_ptr<Column> EncodeColumn(const std::vector<Value>& values,
                                     const EncodingOptions& options) {
  URM_CHECK(values.size() < 0xFFFFFFFFull)
      << "columnar encoding is limited to 2^32-1 rows";
  const size_t n = values.size();
  if (n == 0) return std::make_unique<PlainColumn>(std::vector<Value>());

  const ColumnShape shape = MeasureShape(values, options);
  const size_t max_runs = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) *
                             options.rle_max_run_fraction));

  if (shape.runs <= max_runs) {
    return std::make_unique<RleColumn>(values);
  }
  if (shape.ints == n) {
    return std::make_unique<DeltaColumn>(values);
  }
  if (shape.strings > 0 && shape.strings + shape.nulls == n) {
    // Dictionary only pays when the vocabulary is bounded; a sampled
    // distinct ratio above 1/2 predicts near-unique strings.
    if (shape.sampled == 0 || shape.sampled_distinct * 2 <= shape.sampled) {
      auto dict = TryBuildDictionary(values, options.dictionary_max_entries);
      if (dict != nullptr) return dict;
    }
  }
  return std::make_unique<PlainColumn>(values);
}

Result<std::unique_ptr<Column>> EncodeColumnAs(
    const std::vector<Value>& values, CodecKind codec,
    const EncodingOptions& options) {
  URM_CHECK(values.size() < 0xFFFFFFFFull)
      << "columnar encoding is limited to 2^32-1 rows";
  switch (codec) {
    case CodecKind::kPlain:
      return std::unique_ptr<Column>(std::make_unique<PlainColumn>(values));
    case CodecKind::kRle:
      return std::unique_ptr<Column>(std::make_unique<RleColumn>(values));
    case CodecKind::kDelta:
      for (const Value& v : values) {
        if (v.type() != ValueType::kInt64) {
          return Status::InvalidArgument(
              "DELTA requires a null-free int64 column");
        }
      }
      return std::unique_ptr<Column>(std::make_unique<DeltaColumn>(values));
    case CodecKind::kDictionary: {
      for (const Value& v : values) {
        if (!v.is_null() && v.type() != ValueType::kString) {
          return Status::InvalidArgument(
              "DICTIONARY requires a string (or NULL) column");
        }
      }
      auto dict = TryBuildDictionary(values, options.dictionary_max_entries);
      if (dict == nullptr) {
        return Status::InvalidArgument(
            "dictionary overflow: more than " +
            std::to_string(options.dictionary_max_entries) +
            " distinct strings");
      }
      return std::unique_ptr<Column>(std::move(dict));
    }
  }
  return Status::InvalidArgument("unknown codec");
}

}  // namespace columnar
}  // namespace urm
