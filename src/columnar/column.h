#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

/// \file column.h
/// Compressed column storage: one `Column` holds every cell of one
/// attribute of a relation under a lightweight codec. Four codecs cover
/// the column shapes of the workloads (the TPC-H column→codec map is
/// the reference spec):
///
///   PLAIN       materialized `Value` vector; the universal fallback.
///   DELTA       zigzag-varint deltas with restart blocks, for
///               monotone / near-monotone int64 keys and dates.
///               Null-free int64 columns only.
///   RLE         (value, run-length) pairs for low-cardinality flag
///               columns of any type; run boundaries preserve the
///               exact cell type so decode is the identity.
///   DICTIONARY  distinct strings + per-row codes, for string columns
///               with a bounded vocabulary; falls back to PLAIN when
///               the vocabulary overflows `dictionary_max_entries`.
///
/// Every codec exposes typed iteration (`Decode`), random access
/// (`ValueAt`) and codec-aware predicate evaluation (`EvalPredicate`):
/// comparisons run directly on dictionary codes / RLE runs / the delta
/// stream — without materializing rows — and return a selection vector
/// of matching row indices in ascending order.
///
/// `EvalPredicate` reproduces `algebra::CompareValues` semantics
/// bit-for-bit (any NULL operand fails the predicate, including `!=`;
/// numerics compare in the double domain; mixed numeric/string
/// operands order by type rank). columnar sits *below* algebra in the
/// layer map, so the comparison semantics are restated here as
/// `CompareCells`; a tier-1 test cross-checks the two stay identical.

namespace urm {
namespace columnar {

using relational::Value;
using relational::ValueType;

/// The compression codec backing a column.
enum class CodecKind {
  kPlain = 0,
  kDelta,
  kRle,
  kDictionary,
};

const char* CodecName(CodecKind codec);

/// Comparison operators, mirroring algebra::CmpOp (columnar cannot
/// include algebra without a dependency cycle).
enum class Cmp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpName(Cmp op);

/// Predicate-compare of two cells with algebra::CompareValues
/// semantics: false whenever either side is NULL (even for kNe),
/// otherwise Value::operator== / operator< (numerics numeric, mixed
/// numeric-vs-string by type rank).
bool CompareCells(const Value& lhs, Cmp op, const Value& rhs);

/// Matching row indices, ascending. uint32 indices bound relations to
/// 2^32-1 rows; encoding check-fails beyond that.
using SelectionVector = std::vector<uint32_t>;

/// Knobs for automatic codec selection (EncodeColumn).
struct EncodingOptions {
  /// DICTIONARY falls back to PLAIN past this many distinct strings.
  size_t dictionary_max_entries = 1u << 16;
  /// RLE wins when runs <= rle_max_run_fraction * rows.
  double rle_max_run_fraction = 0.25;
  /// Values sampled (evenly spaced) for the distinct-count estimate.
  size_t sample_size = 1024;
};

/// \brief One encoded column: cells of a single attribute under one
/// codec. Immutable after encoding; cheap shared reads.
class Column {
 public:
  virtual ~Column() = default;

  virtual CodecKind codec() const = 0;
  /// Number of cells.
  virtual size_t size() const = 0;

  /// Random access to one cell (decoded copy).
  virtual Value ValueAt(size_t row) const = 0;

  /// Appends every cell to `out`, in row order (the decode side of the
  /// round-trip identity: Decode(Encode(v)) == v, exact types).
  virtual void Decode(std::vector<Value>* out) const = 0;

  /// Bytes of the encoded representation actually held in memory.
  virtual size_t EncodedBytes() const = 0;

  /// Bytes the same cells occupy in row format
  /// (sum of relational::ApproxValueBytes).
  virtual size_t LogicalBytes() const = 0;

  /// Appends the indices of all rows whose cell satisfies
  /// `cell <op> rhs` (CompareCells semantics) to `out`, ascending.
  /// Runs on the encoded form: DICTIONARY compares each distinct
  /// string once and scans codes, RLE compares once per run, DELTA
  /// streams the varint deltas.
  virtual void EvalPredicate(Cmp op, const Value& rhs,
                             SelectionVector* out) const = 0;
};

/// Encodes a column with automatic codec selection from one stats pass
/// (exact type/null/run counts, sampled distinct estimate). Total:
/// always succeeds, PLAIN is the catch-all.
std::unique_ptr<Column> EncodeColumn(const std::vector<Value>& values,
                                     const EncodingOptions& options = {});

/// Encodes with a forced codec. Fails (InvalidArgument) when the codec
/// cannot represent the data: DELTA needs null-free int64, DICTIONARY
/// needs strings/NULLs within dictionary_max_entries.
Result<std::unique_ptr<Column>> EncodeColumnAs(
    const std::vector<Value>& values, CodecKind codec,
    const EncodingOptions& options = {});

}  // namespace columnar
}  // namespace urm
