#include "columnar/columnar_relation.h"

#include <atomic>

#include "common/logging.h"

namespace urm {
namespace columnar {

namespace {
std::atomic<uint64_t> encode_calls{0};
}  // namespace

uint64_t ColumnarRelation::EncodeCallsForTest() {
  return encode_calls.load(std::memory_order_relaxed);
}

ColumnarRelationPtr ColumnarRelation::Encode(
    const relational::RelationSchema& schema,
    const std::vector<relational::Row>& rows,
    const EncodingOptions& options) {
  encode_calls.fetch_add(1, std::memory_order_relaxed);
  const size_t ncols = schema.num_columns();
  std::vector<std::vector<relational::Value>> columns(ncols);
  for (auto& col : columns) col.reserve(rows.size());
  for (const relational::Row& row : rows) {
    URM_CHECK(row.size() == ncols) << "row arity != schema arity";
    for (size_t c = 0; c < ncols; ++c) columns[c].push_back(row[c]);
  }
  return FromColumns(schema, std::move(columns), options);
}

ColumnarRelationPtr ColumnarRelation::FromColumns(
    relational::RelationSchema schema,
    std::vector<std::vector<relational::Value>> columns,
    const EncodingOptions& options) {
  URM_CHECK(columns.size() == schema.num_columns())
      << "column count != schema arity";
  size_t num_rows = columns.empty() ? 0 : columns[0].size();
  std::vector<std::unique_ptr<Column>> encoded;
  encoded.reserve(columns.size());
  for (auto& col : columns) {
    URM_CHECK(col.size() == num_rows) << "ragged column lengths";
    encoded.push_back(EncodeColumn(col, options));
    col.clear();
    col.shrink_to_fit();
  }
  return ColumnarRelationPtr(new ColumnarRelation(
      std::move(schema), num_rows, std::move(encoded)));
}

size_t ColumnarRelation::EncodedBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col->EncodedBytes();
  return bytes;
}

size_t ColumnarRelation::LogicalBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col->LogicalBytes();
  return bytes;
}

std::vector<ColumnStats> ColumnarRelation::Stats() const {
  std::vector<ColumnStats> stats;
  stats.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnStats s;
    s.name = schema_.column(c).name;
    s.codec = columns_[c]->codec();
    s.rows = num_rows_;
    s.encoded_bytes = columns_[c]->EncodedBytes();
    s.logical_bytes = columns_[c]->LogicalBytes();
    stats.push_back(std::move(s));
  }
  return stats;
}

size_t ColumnarRelation::CodecCount(CodecKind codec) const {
  size_t count = 0;
  for (const auto& col : columns_) {
    if (col->codec() == codec) ++count;
  }
  return count;
}

relational::Row ColumnarRelation::MaterializeRow(size_t row) const {
  URM_CHECK(row < num_rows_);
  relational::Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col->ValueAt(row));
  return out;
}

void ColumnarRelation::MaterializeRows(
    std::vector<relational::Row>* out) const {
  const size_t base = out->size();
  out->resize(base + num_rows_, relational::Row(columns_.size()));
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::vector<relational::Value> decoded;
    decoded.reserve(num_rows_);
    columns_[c]->Decode(&decoded);
    for (size_t i = 0; i < num_rows_; ++i) {
      (*out)[base + i][c] = std::move(decoded[i]);
    }
  }
}

}  // namespace columnar
}  // namespace urm
