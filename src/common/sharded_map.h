#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

/// \file sharded_map.h
/// A mutex-per-shard concurrent hash map. Keys are distributed over a
/// power-of-two number of shards by their hash; each shard holds an
/// independent std::unordered_map plus an optional caller-defined
/// per-shard state (LRU lists, byte counters, ...) that is mutated
/// under the same lock as the map itself.
///
/// The map deliberately exposes *locked scopes* rather than value-like
/// Get/Put: callers pass a functor that runs with the shard lock held
/// and receives the shard's map and state. This keeps compound
/// operations (lookup + LRU promotion + byte accounting) atomic without
/// a global lock, and keeps lock hold times explicit at the call site.
/// Cross-shard operations (Clear, ForEachShard) lock one shard at a
/// time and therefore see a point-in-time view per shard, not a global
/// snapshot — fine for caches and counters, not for invariants that
/// span shards.

namespace urm {

/// Default per-shard extra state: nothing.
struct NoShardState {};

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename ShardState = NoShardState>
class ShardedMap {
 public:
  using Map = std::unordered_map<Key, Value, Hash>;

  /// `num_shards` is rounded up to a power of two (minimum 1).
  explicit ShardedMap(size_t num_shards)
      : shards_(RoundUpPowerOfTwo(num_shards)) {}

  size_t num_shards() const { return shards_.size(); }

  /// Runs `fn(map, state)` with the lock of `key`'s shard held and
  /// returns its result. The functor must not call back into the same
  /// ShardedMap (self-deadlock).
  template <typename Fn>
  decltype(auto) WithShard(const Key& key, Fn&& fn) {
    Shard& shard = shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return fn(shard.map, shard.state);
  }

  /// Runs `fn(map, state)` once per shard, locking each in turn.
  template <typename Fn>
  void ForEachShard(Fn&& fn) {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      fn(shard.map, shard.state);
    }
  }

  /// const overload for read-only sweeps (stats aggregation).
  template <typename Fn>
  void ForEachShard(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      fn(shard.map, shard.state);
    }
  }

  /// Empties every shard's map and resets its state.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.state = ShardState{};
    }
  }

  /// Total entries across shards (point-in-time per shard).
  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    Map map;
    ShardState state;
  };

  static size_t RoundUpPowerOfTwo(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  size_t ShardIndex(const Key& key) const {
    // Shard on the high bits: unordered_map buckets already consume the
    // low bits, and hashes whose low bits collide (pointer alignment)
    // would otherwise pile onto few shards.
    size_t h = Hash{}(key);
    h ^= h >> 17;
    return ((h * 0x9e3779b97f4a7c15ULL) >> 32) & (shards_.size() - 1);
  }

  /// deque, not vector: Shard holds a mutex (immovable), and deque
  /// constructs elements in place without ever relocating them.
  std::deque<Shard> shards_;
};

}  // namespace urm
