#include "common/sha1.h"

#include <cstring>

namespace urm {

namespace {

inline uint32_t Rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

/// One 64-byte block into the running state.
void Compress(uint32_t state[5], const uint8_t block[64]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
           e = state[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}

}  // namespace

std::array<uint8_t, 20> Sha1(std::string_view data) {
  uint32_t state[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                       0xc3d2e1f0};
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  size_t remaining = data.size();
  while (remaining >= 64) {
    Compress(state, bytes);
    bytes += 64;
    remaining -= 64;
  }
  // Final block(s): 0x80 pad, zeros, 64-bit big-endian bit length.
  uint8_t block[128];
  std::memcpy(block, bytes, remaining);
  block[remaining] = 0x80;
  size_t padded = remaining + 1 <= 56 ? 64 : 128;
  std::memset(block + remaining + 1, 0, padded - remaining - 1 - 8);
  uint64_t bit_length = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    block[padded - 1 - i] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  Compress(state, block);
  if (padded == 128) Compress(state, block + 64);

  std::array<uint8_t, 20> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
  return digest;
}

}  // namespace urm
