#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Arrow/RocksDB-style Status and Result types used across the library.
/// Public APIs return Status (or Result<T>) instead of throwing; internal
/// invariant violations use URM_CHECK (see logging.h).

namespace urm {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Cheap to copy in the OK case (empty message). Use the static factory
/// functions to construct errors:
/// \code
///   if (h == 0) return Status::InvalidArgument("h must be positive");
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: h must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Modeled after arrow::Result. Accessors check-fail on misuse so that
/// errors surface at the point of the bug.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value. Must hold a value.
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(repr_)); }

  /// The contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace urm

/// Propagates a non-OK Status from an expression, Arrow-style.
#define URM_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::urm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)
