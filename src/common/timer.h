#pragma once

#include <chrono>

/// \file timer.h
/// Wall-clock stopwatch for the experiment harness.

namespace urm {

/// \brief Monotonic stopwatch; starts at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds, then restart — for timing consecutive phases.
  double Lap() {
    double s = Seconds();
    Reset();
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace urm
