#include "common/base64.h"

#include <cstdint>

namespace urm {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// -1 = invalid, -2 = padding.
int DecodeChar(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return -2;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    uint32_t group = (static_cast<uint8_t>(bytes[i]) << 16) |
                     (static_cast<uint8_t>(bytes[i + 1]) << 8) |
                     static_cast<uint8_t>(bytes[i + 2]);
    out += kAlphabet[(group >> 18) & 63];
    out += kAlphabet[(group >> 12) & 63];
    out += kAlphabet[(group >> 6) & 63];
    out += kAlphabet[group & 63];
  }
  size_t rest = bytes.size() - i;
  if (rest == 1) {
    uint32_t group = static_cast<uint8_t>(bytes[i]) << 16;
    out += kAlphabet[(group >> 18) & 63];
    out += kAlphabet[(group >> 12) & 63];
    out += "==";
  } else if (rest == 2) {
    uint32_t group = (static_cast<uint8_t>(bytes[i]) << 16) |
                     (static_cast<uint8_t>(bytes[i + 1]) << 8);
    out += kAlphabet[(group >> 18) & 63];
    out += kAlphabet[(group >> 12) & 63];
    out += kAlphabet[(group >> 6) & 63];
    out += '=';
  }
  return out;
}

bool Base64Decode(std::string_view text, std::string* out) {
  if (text.size() % 4 != 0) return false;
  out->clear();
  out->reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int v[4];
    for (int j = 0; j < 4; ++j) v[j] = DecodeChar(text[i + j]);
    // Padding may only appear in the last one or two positions of the
    // final group.
    bool last = i + 4 == text.size();
    if (v[0] < 0 || v[1] < 0) return false;
    if (v[2] == -1 || v[3] == -1) return false;
    if ((v[2] == -2 || v[3] == -2) && !last) return false;
    if (v[2] == -2 && v[3] != -2) return false;
    uint32_t group = (static_cast<uint32_t>(v[0]) << 18) |
                     (static_cast<uint32_t>(v[1]) << 12) |
                     (v[2] > 0 ? static_cast<uint32_t>(v[2]) << 6 : 0) |
                     (v[3] > 0 ? static_cast<uint32_t>(v[3]) : 0);
    out->push_back(static_cast<char>((group >> 16) & 0xff));
    if (v[2] != -2) out->push_back(static_cast<char>((group >> 8) & 0xff));
    if (v[3] != -2) out->push_back(static_cast<char>(group & 0xff));
  }
  return true;
}

}  // namespace urm
