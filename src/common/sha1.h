#pragma once

#include <array>
#include <cstdint>
#include <string_view>

/// \file sha1.h
/// Minimal SHA-1 (FIPS 180-1), dependency-free. Used exclusively for
/// the RFC 6455 WebSocket handshake (Sec-WebSocket-Accept = base64 of
/// the SHA-1 of key + GUID) — SHA-1 is broken for collision resistance
/// and must not guard anything security-sensitive, but the handshake
/// only needs it as a fixed transform both ends agree on.

namespace urm {

/// 20-byte SHA-1 digest of `data`.
std::array<uint8_t, 20> Sha1(std::string_view data);

}  // namespace urm
