#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

/// \file hash_util.h
/// Hash combinators used for tuple and plan hashing.

namespace urm {

/// Boost-style hash combining.
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// FNV-1a over raw bytes; stable across platforms (unlike std::hash).
inline uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace urm
