#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace urm {
namespace json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  v.integral_ = std::isfinite(d) && d == std::floor(d) &&
                std::fabs(d) < 9.007199254740992e15;  // 2^53
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(i);
  v.integral_ = true;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::AsBool() const {
  URM_CHECK(is_bool());
  return bool_;
}

double Value::AsDouble() const {
  URM_CHECK(is_number());
  return number_;
}

int64_t Value::AsInt64() const {
  URM_CHECK(is_number());
  return static_cast<int64_t>(number_);
}

const std::string& Value::AsString() const {
  URM_CHECK(is_string());
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  URM_CHECK(is_array());
  return array_;
}

const std::vector<Value::Member>& Value::AsObject() const {
  URM_CHECK(is_object());
  return object_;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Value::Append(Value v) {
  URM_CHECK(is_array());
  array_.push_back(std::move(v));
}

void Value::Set(std::string key, Value v) {
  URM_CHECK(is_object());
  object_.emplace_back(std::move(key), std::move(v));
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void SerializeInto(const Value& v, std::string* out);

void SerializeNumber(const Value& v, std::string* out) {
  char buf[40];
  double d = v.AsDouble();
  if (!std::isfinite(d)) {
    // JSON has no inf/nan literal; null is the conventional stand-in.
    *out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  *out += buf;
}

void SerializeInto(const Value& v, std::string* out) {
  switch (v.type()) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += v.AsBool() ? "true" : "false"; break;
    case Type::kNumber: SerializeNumber(v, out); break;
    case Type::kString: EscapeInto(v.AsString(), out); break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : v.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        SerializeInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value root;
    URM_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& reason) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + reason);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        URM_RETURN_NOT_OK(ParseString(&s));
        *out = Value::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Value::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Value::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Value::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      std::string key;
      URM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Value member;
      URM_RETURN_NOT_OK(ParseValue(&member, depth + 1));
      out->Set(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      Value item;
      URM_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->Append(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          URM_RETURN_NOT_OK(ParseUnicodeEscape(out));
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    URM_RETURN_NOT_OK(ParseHex4(&code));
    // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
    if (code >= 0xd800 && code <= 0xdbff) {
      if (text_.substr(pos_, 2) != "\\u") {
        return Error("unpaired surrogate");
      }
      pos_ += 2;
      uint32_t low = 0;
      URM_RETURN_NOT_OK(ParseHex4(&low));
      if (low < 0xdc00 || low > 0xdfff) return Error("unpaired surrogate");
      code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
    } else if (code >= 0xdc00 && code <= 0xdfff) {
      return Error("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    *out = value;
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (AtEnd() || !(Peek() >= '0' && Peek() <= '9')) {
      return Error("invalid number");
    }
    // Integer part: a leading zero may not be followed by digits.
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    bool fractional = false;
    if (!AtEnd() && Peek() == '.') {
      fractional = true;
      ++pos_;
      if (AtEnd() || !(Peek() >= '0' && Peek() <= '9')) {
        return Error("missing digits after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      fractional = true;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !(Peek() >= '0' && Peek() <= '9')) {
        return Error("missing exponent digits");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string literal(text_.substr(start, pos_ - start));
    double d = std::strtod(literal.c_str(), nullptr);
    *out = fractional ? Value::Number(d) : Value::Int(std::atoll(literal.c_str()));
    // A huge integer literal overflows atoll; fall back to the double.
    if (!fractional && std::fabs(d) >= 9.007199254740992e15) {
      *out = Value::Number(d);
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Value::Serialize() const {
  std::string out;
  SerializeInto(*this, &out);
  return out;
}

Result<Value> Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace json
}  // namespace urm
