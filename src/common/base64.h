#pragma once

#include <string>
#include <string_view>

/// \file base64.h
/// RFC 4648 base64 (standard alphabet, '=' padding). Used by the
/// WebSocket handshake (Sec-WebSocket-Accept) and its tests.

namespace urm {

std::string Base64Encode(std::string_view bytes);

/// Strict decode: requires canonical padding and no whitespace.
/// Returns false (leaving `out` unspecified) on any malformed input.
bool Base64Decode(std::string_view text, std::string* out);

}  // namespace urm
