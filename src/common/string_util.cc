#include "common/string_util.h"

#include <cctype>

namespace urm {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> TokenizeIdentifier(std::string_view ident) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&]() {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(ident[i]);
    if (!std::isalnum(c)) {
      flush();
      continue;
    }
    // A camelCase boundary: lower->upper, or upper followed by lower when
    // preceded by another upper ("PONumber" -> "po","number").
    if (std::isupper(c) && !cur.empty()) {
      unsigned char prev = static_cast<unsigned char>(ident[i - 1]);
      bool boundary = std::islower(prev) || std::isdigit(prev);
      if (!boundary && i + 1 < ident.size() &&
          std::islower(static_cast<unsigned char>(ident[i + 1]))) {
        boundary = true;
      }
      if (boundary) flush();
    }
    // Digit/letter boundary.
    if (!cur.empty()) {
      unsigned char prev = static_cast<unsigned char>(ident[i - 1]);
      if (std::isdigit(c) != std::isdigit(prev) && std::isalnum(prev)) {
        flush();
      }
    }
    cur.push_back(static_cast<char>(std::tolower(c)));
  }
  flush();
  return tokens;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

}  // namespace urm
