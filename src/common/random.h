#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

/// \file random.h
/// Deterministic PRNG used by the data generator and the benchmarks.
/// We avoid std::mt19937 so that generated instances are bit-identical
/// across standard-library implementations (reproducibility of the
/// experiment tables depends on it).

namespace urm {

/// \brief SplitMix64 generator (Steele et al., "Fast splittable
/// pseudorandom number generators").
///
/// Passes BigCrush when used as a 64-bit stream; more than adequate for
/// workload synthesis. Deterministic for a given seed on all platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    URM_CHECK_LE(lo, hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next64());  // full range
    return lo + static_cast<int64_t>(Next64() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& pool) {
    URM_CHECK(!pool.empty());
    return pool[static_cast<size_t>(Next64() % pool.size())];
  }

  /// Random lowercase string of `len` characters.
  std::string String(int len) {
    std::string s;
    s.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Next64() % 26));
    }
    return s;
  }

  /// Zipf-ish skewed index in [0, n): smaller indexes are more likely.
  /// Used to make selection predicates return non-uniform result sizes,
  /// matching the skew of real purchase-order data.
  size_t SkewedIndex(size_t n) {
    URM_CHECK_GT(n, 0u);
    double u = NextDouble();
    double v = u * u;  // quadratic skew toward 0
    size_t idx = static_cast<size_t>(v * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

 private:
  uint64_t state_;
};

}  // namespace urm
