#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the matcher and plan printers.

namespace urm {

/// ASCII lower-casing (schema attribute names are ASCII).
std::string ToLower(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits an identifier into lowercase word tokens. Handles camelCase,
/// snake_case, digits, and non-alphanumeric separators:
///   "deliverToStreet" -> {"deliver","to","street"}
///   "l_shipdate"      -> {"l","shipdate"}
std::vector<std::string> TokenizeIdentifier(std::string_view ident);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace urm
