#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file json.h
/// Minimal dependency-free JSON: a variant value type, a strict
/// recursive-descent parser (UTF-8 pass-through, \uXXXX escapes, depth
/// cap), and a serializer. This is the wire format of the network
/// tier's /v1 API (src/net/api.cc) — small enough to audit, with the
/// exact error messages surfaced in 400 responses.
///
/// Numbers are held as double with an integer fast path: values that
/// arrive as integer literals (and doubles that are exactly integral)
/// serialize without a decimal point, so int64 cells round-trip up to
/// 2^53.

namespace urm {
namespace json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// \brief One JSON value. Object member order is preserved (stable
/// serialization); lookups are linear — API payloads are small.
class Value {
 public:
  using Member = std::pair<std::string, Value>;

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }
  /// Whether a number value holds an exactly-representable integer
  /// (parsed from an integer literal, built with Int, or a whole
  /// double within 2^53) — callers mapping JSON cells onto typed
  /// relational values use this to pick Int64 over Double.
  bool is_integral() const { return type_ == Type::kNumber && integral_; }

  /// Typed accessors; check-fail on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt64() const;  ///< truncates; check-fails unless number
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<Member>& AsObject() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const Value* Find(std::string_view key) const;

  /// Appends to an array value (check-fails otherwise).
  void Append(Value v);
  /// Appends an object member (check-fails otherwise; duplicate keys
  /// are the caller's bug — serialization would emit both).
  void Set(std::string key, Value v);

  /// Compact serialization (no whitespace), RFC 8259 escaping.
  std::string Serialize() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;  ///< serialize number_ without a decimal point
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Strict parse of exactly one JSON document (trailing garbage is an
/// error). Limits: nesting depth 64, input size is the caller's
/// concern (the HTTP tier bounds body bytes before parsing). Error
/// statuses carry a byte offset and reason.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace urm
