#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/log.h"

/// \file logging.h
/// CHECK macros for internal invariants (Arrow/glog style). A failed check
/// indicates a bug in this library, not a user error; user errors are
/// reported through Status.
///
/// Failures route through the structured logger (obs/log.h) at Fatal
/// severity on the "check" channel, so the output is one line-atomic
/// flushed write — concurrent check failures (e.g. racing worker
/// threads under TSan) cannot interleave within a line in CI logs.

namespace urm {
namespace internal {

/// Accumulates a message and aborts on destruction. Used by URM_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) : file_(file), line_(line) {
    stream_ << "check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    {
      // The LogMessage destructor performs the single flushed write;
      // scoped so it runs before abort.
      obs::LogMessage(obs::LogLevel::kFatal, "check", file_, line_)
              .stream()
          << stream_.str();
    }
    std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace urm

#define URM_CHECK(cond)                                         \
  if (!(cond))                                                  \
  ::urm::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << #cond << " "

#define URM_CHECK_EQ(a, b) URM_CHECK((a) == (b))
#define URM_CHECK_NE(a, b) URM_CHECK((a) != (b))
#define URM_CHECK_LT(a, b) URM_CHECK((a) < (b))
#define URM_CHECK_LE(a, b) URM_CHECK((a) <= (b))
#define URM_CHECK_GT(a, b) URM_CHECK((a) > (b))
#define URM_CHECK_GE(a, b) URM_CHECK((a) >= (b))

/// Check-fails if `expr` (a Status) is not OK.
#define URM_CHECK_OK(expr)                                  \
  do {                                                      \
    ::urm::Status _st = (expr);                             \
    URM_CHECK(_st.ok()) << _st.ToString();                  \
  } while (false)
