#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file logging.h
/// CHECK macros for internal invariants (Arrow/glog style). A failed check
/// indicates a bug in this library, not a user error; user errors are
/// reported through Status.

namespace urm {
namespace internal {

/// Accumulates a message and aborts on destruction. Used by URM_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace urm

#define URM_CHECK(cond)                                         \
  if (!(cond))                                                  \
  ::urm::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << #cond << " "

#define URM_CHECK_EQ(a, b) URM_CHECK((a) == (b))
#define URM_CHECK_NE(a, b) URM_CHECK((a) != (b))
#define URM_CHECK_LT(a, b) URM_CHECK((a) < (b))
#define URM_CHECK_LE(a, b) URM_CHECK((a) <= (b))
#define URM_CHECK_GT(a, b) URM_CHECK((a) > (b))
#define URM_CHECK_GE(a, b) URM_CHECK((a) >= (b))

/// Check-fails if `expr` (a Status) is not OK.
#define URM_CHECK_OK(expr)                                  \
  do {                                                      \
    ::urm::Status _st = (expr);                             \
    URM_CHECK(_st.ok()) << _st.ToString();                  \
  } while (false)
