#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

/// \file thread_pool.h
/// A fixed-size thread pool with a single shared FIFO queue — no
/// work stealing, no per-thread deques. Tasks are packaged_tasks, so
/// exceptions thrown inside a task surface through the returned future.
///
/// Nested fan-out is safe: ParallelFor is claim-based — the calling
/// thread keeps claiming its own group's indexes instead of sleeping,
/// and only ever waits on claims already executing, so a saturated
/// pool cannot deadlock on sub-tasks it queued itself. This is what
/// lets intra-query partition parallelism run on the same pool that
/// executes whole queries (service layer).
///
/// A pool with zero workers is legal: everything then runs on the
/// threads that call ParallelFor / TryRunOne.

namespace urm {

/// Point-in-time pool observability snapshot (ThreadPool::stats):
/// `running_tasks / threads` is instantaneous worker utilization,
/// `queue_depth` the backlog, `tasks_executed` the lifetime monotonic
/// task count (queued tasks only; ParallelFor indexes claimed inline
/// by the calling thread are not pool tasks).
struct PoolStats {
  size_t threads = 0;
  size_t queue_depth = 0;
  size_t running_tasks = 0;  ///< tasks executing right now (any thread)
  uint64_t tasks_executed = 0;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped at 0).
  explicit ThreadPool(int num_threads) {
    int n = num_threads > 0 ? num_threads : 0;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Completes every queued task, then joins the workers.
  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    // With zero workers the queue may still hold tasks; run them so
    // futures never dangle.
    while (TryRunOne()) {
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Snapshot of queue depth / running tasks / lifetime task count.
  /// Safe to call concurrently with Submit/TryRunOne/ParallelFor.
  PoolStats stats() const {
    PoolStats stats;
    stats.threads = workers_.size();
    stats.running_tasks = running_.load(std::memory_order_relaxed);
    stats.tasks_executed = executed_.load(std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      stats.queue_depth = queue_.size();
    }
    return stats;
  }

  /// Enqueues `fn` and returns a future for its result. An exception
  /// thrown by `fn` is rethrown by future.get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      URM_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Pops and runs one queued task on the calling thread. Returns false
  /// when the queue is empty.
  bool TryRunOne() {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) return false;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunCounted(task);
    return true;
  }

  /// Runs fn(0) .. fn(n-1) as one task group: workers and the calling
  /// thread greedily claim indexes until none remain, then the caller
  /// waits only for claims still executing elsewhere. Because a waiting
  /// thread never runs *unrelated* queued tasks inline, nesting
  /// ParallelFor inside pool tasks is deadlock-free with inline
  /// recursion bounded by the nesting depth (not the queue length).
  /// The first exception (if any) is rethrown on the caller once every
  /// index has finished.
  template <typename F>
  void ParallelFor(size_t n, const F& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.empty()) {
      // Same contract as the pooled path: every index runs, the first
      // exception is rethrown at the end.
      std::exception_ptr first_error;
      for (size_t i = 0; i < n; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (first_error == nullptr) first_error = std::current_exception();
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
      return;
    }
    struct Group {
      const F* fn = nullptr;
      size_t n = 0;
      std::atomic<size_t> next{0};
      std::mutex mu;
      std::condition_variable done_cv;
      size_t completed = 0;
      std::exception_ptr first_error;
    };
    auto group = std::make_shared<Group>();
    group->fn = &fn;
    group->n = n;
    auto run_claimed = [group] {
      for (;;) {
        size_t i = group->next.fetch_add(1);
        if (i >= group->n) return;
        // `fn` lives on the caller's stack; it is only dereferenced for
        // claimed indexes, and the caller does not return before every
        // claim completes.
        try {
          (*group->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(group->mu);
          if (group->first_error == nullptr) {
            group->first_error = std::current_exception();
          }
        }
        std::lock_guard<std::mutex> lock(group->mu);
        if (++group->completed == group->n) group->done_cv.notify_all();
      }
    };
    // Helpers are best-effort: once the pool starts stopping (service
    // teardown racing an in-flight nested fan-out), no new tasks may
    // enter the queue, and the caller simply claims every index
    // itself — completion is guaranteed without helpers.
    size_t helpers = std::min(workers_.size(), n - 1);
    for (size_t k = 0; k < helpers; ++k) {
      if (!TrySubmitTask(run_claimed)) break;
    }
    run_claimed();
    std::unique_lock<std::mutex> lock(group->mu);
    group->done_cv.wait(lock, [&] { return group->completed == group->n; });
    if (group->first_error != nullptr) {
      std::rethrow_exception(group->first_error);
    }
  }

 private:
  /// Enqueues a fire-and-forget task unless the pool is stopping;
  /// returns whether it was enqueued. Unlike Submit this is legal
  /// during shutdown (it just declines), which ParallelFor needs when
  /// a nested fan-out races pool destruction.
  bool TrySubmitTask(const std::function<void()>& fn) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return false;
      queue_.emplace_back(fn);
    }
    cv_.notify_one();
    return true;
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      RunCounted(task);
    }
  }

  /// Executes one dequeued task inside the running/executed counters
  /// (the utilization signal stats() reports). Exception-safe: a
  /// throwing packaged_task still decrements.
  void RunCounted(const std::function<void()>& task) {
    running_.fetch_add(1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      running_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    running_.fetch_sub(1, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<size_t> running_{0};
  std::atomic<uint64_t> executed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace urm
