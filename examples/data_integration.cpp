/// \file data_integration.cpp
/// The paper's motivating scenario (§I): an application issues queries
/// against a partner's purchase-order schema (the *target*) while the
/// data lives in the local warehouse (the *source*), and the schema
/// matching between the two is uncertain. The example shows:
///   * why picking only the best mapping loses answers,
///   * how the five evaluation methods compare on the same query,
///   * how answer probabilities guide a downstream decision.
///
/// Build & run:  ./build/examples/data_integration

#include <cstdio>

#include "core/engine.h"
#include "core/workload.h"

int main() {
  using namespace urm;

  core::Engine::Options options;
  options.target_mb = 1.0;
  options.num_mappings = 100;
  options.target_schema = datagen::TargetSchemaId::kParagon;
  auto engine_or = core::Engine::Create(options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  core::Engine& engine = *engine_or.ValueOrDie();

  // The best mapping vs the full possible-mapping set.
  const auto& best = engine.mappings().front();
  std::printf("best mapping covers %zu attributes with probability "
              "%.3f — %.1f%% of the probability mass would be ignored "
              "by committing to it\n\n",
              best.size(), best.probability(),
              100.0 * (1.0 - best.probability()));

  auto q = core::QueryById("Q8");  // billTo/shipToAddress/shipToPhone
  std::printf("query Q8 (who is billed at the watched address/phone):\n%s\n",
              algebra::ToString(q.query).c_str());

  // Evaluate under only the top mapping: a single world.
  engine.UseTopMappings(1);
  auto single = engine.Evaluate(q.query, core::Method::kBasic);
  if (!single.ok()) return 1;
  std::printf("answers using ONLY the best mapping:\n%s\n",
              single.ValueOrDie().answers.ToString(5).c_str());

  // Evaluate under all 100 possible mappings.
  engine.UseTopMappings(100);
  auto full = engine.Evaluate(q.query, core::Method::kOSharing);
  if (!full.ok()) return 1;
  std::printf("answers under the full uncertain matching:\n%s\n",
              full.ValueOrDie().answers.ToString(5).c_str());
  std::printf("tuples missed by the single-mapping shortcut: %zu\n\n",
              full.ValueOrDie().answers.size() -
                  single.ValueOrDie().answers.size());

  // Method comparison on this query.
  std::printf("%-12s %-10s %-12s %-12s\n", "method", "time(s)",
              "src queries", "operators");
  for (core::Method m :
       {core::Method::kBasic, core::Method::kEBasic, core::Method::kEMqo,
        core::Method::kQSharing, core::Method::kOSharing}) {
    auto r = engine.Evaluate(q.query, m);
    if (!r.ok()) return 1;
    std::printf("%-12s %-10.4f %-12zu %-12zu\n", core::MethodName(m),
                r.ValueOrDie().TotalSeconds(),
                r.ValueOrDie().source_queries,
                r.ValueOrDie().stats.operators_executed);
  }
  return 0;
}
