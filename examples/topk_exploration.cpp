/// \file topk_exploration.cpp
/// Probabilistic top-k queries (paper §VII): retrieve only the k most
/// confident answers, without computing exact probabilities. The
/// example shows the [lower, upper] probability bounds the algorithm
/// certifies and how much of the u-trace it prunes as k shrinks.
///
/// Build & run:  ./build/examples/topk_exploration

#include <cstdio>

#include "core/engine.h"
#include "core/workload.h"

int main() {
  using namespace urm;

  core::Engine::Options options;
  options.target_mb = 1.0;
  options.num_mappings = 100;
  options.target_schema = datagen::TargetSchemaId::kNoris;
  auto engine_or = core::Engine::Create(options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  core::Engine& engine = *engine_or.ValueOrDie();

  auto q = core::QueryById("Q7");
  std::printf("query Q7 (item number and unit price of a watched "
              "order):\n%s\n",
              algebra::ToString(q.query).c_str());

  // Exhaustive evaluation for reference.
  auto full = engine.Evaluate(q.query, core::Method::kOSharing);
  if (!full.ok()) return 1;
  std::printf("exhaustive o-sharing: %zu distinct answers in %.4fs\n\n",
              full.ValueOrDie().answers.size(),
              full.ValueOrDie().TotalSeconds());

  for (size_t k : {1, 3, 10}) {
    auto result = engine.EvaluateTopK(q.query, k);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& r = result.ValueOrDie();
    std::printf("top-%zu: %.4fs, %zu u-trace leaves visited%s\n", k,
                r.seconds, r.leaves_visited,
                r.early_terminated ? " (early termination)" : "");
    for (const auto& t : r.tuples) {
      std::printf("  (");
      for (size_t i = 0; i < t.values.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", t.values[i].ToString().c_str());
      }
      std::printf(")  p in [%.3f, %.3f]\n", t.lower_bound, t.upper_bound);
    }
    std::printf("\n");
  }

  // Threshold variant (library extension): everything above a
  // confidence bar, with the same bound-based pruning.
  for (double threshold : {0.5, 0.2}) {
    auto result = engine.EvaluateThreshold(q.query, threshold);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("threshold %.2f: %zu qualifying tuples, %zu leaves "
                "visited%s\n",
                threshold, result.ValueOrDie().tuples.size(),
                result.ValueOrDie().leaves_visited,
                result.ValueOrDie().early_terminated
                    ? " (early termination)"
                    : "");
  }
  return 0;
}
