/// \file quickstart.cpp
/// Minimal end-to-end use of the library:
///   1. generate a TPC-H-style source instance,
///   2. match it against the Excel purchase-order schema,
///   3. enumerate the 100 most likely mappings,
///   4. evaluate a probabilistic query with o-sharing.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/workload.h"

int main() {
  using namespace urm;

  core::Engine::Options options;
  options.target_mb = 1.0;  // ~8.7k tuples; the paper uses 100 MB
  options.num_mappings = 100;
  options.target_schema = datagen::TargetSchemaId::kExcel;

  auto engine = core::Engine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf("source instance: %zu tuples across %zu relations\n",
              engine.ValueOrDie()->catalog().TotalRows(),
              engine.ValueOrDie()->catalog().Names().size());
  std::printf("correspondences: %zu, possible mappings: %zu "
              "(o-ratio %.0f%%)\n\n",
              engine.ValueOrDie()->correspondences().size(),
              engine.ValueOrDie()->mappings().size(),
              100.0 * engine.ValueOrDie()->MappingOverlapRatio());

  // Q1 (paper Table III): three selections on the target PO table.
  auto q = core::QueryById("Q1");
  std::printf("target query %s:\n%s\n", q.id.c_str(),
              algebra::ToString(q.query).c_str());

  auto result =
      engine.ValueOrDie()->Evaluate(q.query, core::Method::kOSharing);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("answers (tuple, probability):\n%s\n",
              result.ValueOrDie().answers.ToString(10).c_str());
  std::printf("executed %zu source operators over %zu mapping "
              "partitions in %.3fs\n",
              result.ValueOrDie().stats.operators_executed,
              result.ValueOrDie().partitions,
              result.ValueOrDie().TotalSeconds());
  return 0;
}
