/// \file custom_matching.cpp
/// Using the library on *your own* schemas and data, without the
/// built-in TPC-H generator: this reconstructs the paper's running
/// example (Figures 1-3) from scratch —
///   * a Customer/C_Order/Nation source instance,
///   * a Person/Order target schema,
///   * a matcher run + k-best mapping enumeration,
///   * the probabilistic query q0 = π_addr σ_phone='123' Person.
///
/// Build & run:  ./build/examples/custom_matching

#include <cstdio>

#include "core/engine.h"
#include "mapping/generator.h"
#include "matching/matcher.h"
#include "relational/relation.h"

int main() {
  using namespace urm;
  using relational::ColumnDef;
  using relational::Relation;
  using relational::RelationSchema;
  using relational::ValueType;

  // --- Source instance (paper Figure 2) -----------------------------
  relational::Catalog catalog;
  RelationSchema customer_schema;
  for (const char* attr : {"cid", "cname", "ophone", "hphone", "mobile",
                           "oaddr", "haddr", "nid"}) {
    if (!customer_schema
             .AddColumn(ColumnDef{std::string("customer.") + attr,
                                  ValueType::kString})
             .ok()) {
      return 1;
    }
  }
  Relation customer(customer_schema);
  (void)customer.AddRow({"t1", "Alice", "123", "789", "555", "aaa", "hk",
                         "n1"});
  (void)customer.AddRow({"t2", "Bob", "456", "123", "556", "bbb", "hk",
                         "n1"});
  (void)customer.AddRow({"t3", "Cindy", "456", "789", "557", "aaa", "aaa",
                         "n2"});
  catalog.Put("customer",
              std::make_shared<const Relation>(std::move(customer)));

  // --- Schemas (paper Figure 1) --------------------------------------
  matching::SchemaDef source(
      "CRM", {{"customer",
               {"cid", "cname", "ophone", "hphone", "mobile", "oaddr",
                "haddr", "nid"}}});
  matching::SchemaDef target(
      "Partner", {{"Person", {"pname", "phone", "addr", "nation"}}});

  // --- Matching + possible mappings ----------------------------------
  matching::MatcherOptions matcher_options;
  matcher_options.threshold = 0.45;  // small schemas: looser threshold
  matching::NameMatcher matcher(matching::SynonymDictionary::Default(),
                                matcher_options);
  auto correspondences = matcher.Match(source, target);
  std::printf("matcher found %zu correspondences:\n",
              correspondences.size());
  for (const auto& c : correspondences) {
    std::printf("  %s\n", c.ToString().c_str());
  }

  mapping::MappingGenOptions gen;
  gen.h = 5;  // the paper's example uses five possible mappings
  auto mappings = mapping::GenerateMappings(correspondences, gen);
  if (!mappings.ok()) {
    std::fprintf(stderr, "%s\n", mappings.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%zu possible mappings:\n",
              mappings.ValueOrDie().size());
  for (const auto& m : mappings.ValueOrDie()) {
    std::printf("  %s\n", m.ToString().c_str());
  }

  // --- Probabilistic query (paper §I) --------------------------------
  core::Engine::Options options;
  auto engine = core::Engine::FromParts(std::move(catalog), source,
                                        target,
                                        std::move(mappings).ValueOrDie(),
                                        options);

  auto q = algebra::MakeProject(
      algebra::MakeSelect(
          algebra::MakeScan("Person", "person"),
          algebra::Predicate::AttrCmpValue("person.phone",
                                           algebra::CmpOp::kEq, "123")),
      {"person.addr"});
  std::printf("\nq0 = π_addr σ_phone='123' Person\n");
  auto result = engine->Evaluate(q, core::Method::kOSharing);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", result.ValueOrDie().answers.ToString().c_str());
  return 0;
}
