/// \file urm_cli.cpp
/// Command-line driver: run any Table III query (or a top-k /
/// threshold variant) against a generated instance with any method.
///
///   urm_cli [--query Q4] [--method osharing] [--schema excel]
///           [--mb 1.0] [--h 100] [--topk K] [--threshold P]
///           [--strategy sef|snf|random] [--seed N]
///
/// Examples:
///   ./build/examples/urm_cli --query Q1 --method basic
///   ./build/examples/urm_cli --query Q7 --topk 5 --mb 2
///   ./build/examples/urm_cli --query Q8 --threshold 0.3

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "core/workload.h"

namespace {

using namespace urm;  // NOLINT

struct CliArgs {
  std::string query = "Q4";
  std::string method = "osharing";
  std::string schema;  // default: the query's schema
  std::string strategy = "sef";
  double mb = 1.0;
  int h = 100;
  int topk = 0;          // 0 = disabled
  double threshold = 0;  // 0 = disabled
  uint64_t seed = 42;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--query") == 0) {
      const char* v = next("--query");
      if (v == nullptr) return false;
      args->query = v;
    } else if (std::strcmp(argv[i], "--method") == 0) {
      const char* v = next("--method");
      if (v == nullptr) return false;
      args->method = v;
    } else if (std::strcmp(argv[i], "--strategy") == 0) {
      const char* v = next("--strategy");
      if (v == nullptr) return false;
      args->strategy = v;
    } else if (std::strcmp(argv[i], "--mb") == 0) {
      const char* v = next("--mb");
      if (v == nullptr) return false;
      args->mb = std::atof(v);
    } else if (std::strcmp(argv[i], "--h") == 0) {
      const char* v = next("--h");
      if (v == nullptr) return false;
      args->h = std::atoi(v);
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      const char* v = next("--topk");
      if (v == nullptr) return false;
      args->topk = std::atoi(v);
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      const char* v = next("--threshold");
      if (v == nullptr) return false;
      args->threshold = std::atof(v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

bool MethodFromName(const std::string& name, core::Method* out) {
  if (name == "basic") *out = core::Method::kBasic;
  else if (name == "ebasic") *out = core::Method::kEBasic;
  else if (name == "emqo") *out = core::Method::kEMqo;
  else if (name == "qsharing") *out = core::Method::kQSharing;
  else if (name == "osharing") *out = core::Method::kOSharing;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: urm_cli [--query Q1..Q10] [--method "
        "basic|ebasic|emqo|qsharing|osharing]\n"
        "               [--mb MB] [--h N] [--topk K] [--threshold P]\n"
        "               [--strategy sef|snf|random] [--seed N]\n");
    return 2;
  }

  auto wq = core::QueryById(args.query);
  core::Engine::Options options;
  options.target_mb = args.mb;
  options.num_mappings = args.h;
  options.target_schema = wq.schema;
  options.seed = args.seed;
  if (args.strategy == "snf") {
    options.strategy = osharing::StrategyKind::kSNF;
  } else if (args.strategy == "random") {
    options.strategy = osharing::StrategyKind::kRandom;
  }

  auto engine = core::Engine::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("instance: %zu tuples; mappings: %zu; query %s (%s)\n",
              engine.ValueOrDie()->catalog().TotalRows(),
              engine.ValueOrDie()->mappings().size(), wq.id.c_str(),
              datagen::TargetSchemaName(wq.schema));

  if (args.topk > 0) {
    auto result = engine.ValueOrDie()->EvaluateTopK(
        wq.query, static_cast<size_t>(args.topk));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("top-%d in %.4fs (%zu leaves%s):\n", args.topk,
                result.ValueOrDie().seconds,
                result.ValueOrDie().leaves_visited,
                result.ValueOrDie().early_terminated ? ", early" : "");
    for (const auto& t : result.ValueOrDie().tuples) {
      std::printf("  (");
      for (size_t i = 0; i < t.values.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    t.values[i].ToString().c_str());
      }
      std::printf(")  p in [%.4f, %.4f]\n", t.lower_bound, t.upper_bound);
    }
    return 0;
  }

  if (args.threshold > 0) {
    auto result =
        engine.ValueOrDie()->EvaluateThreshold(wq.query, args.threshold);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("threshold %.2f: %zu tuples in %.4fs (%zu leaves%s)\n",
                args.threshold, result.ValueOrDie().tuples.size(),
                result.ValueOrDie().seconds,
                result.ValueOrDie().leaves_visited,
                result.ValueOrDie().early_terminated ? ", early" : "");
    return 0;
  }

  core::Method method;
  if (!MethodFromName(args.method, &method)) {
    std::fprintf(stderr, "unknown method: %s\n", args.method.c_str());
    return 2;
  }
  auto result = engine.ValueOrDie()->Evaluate(wq.query, method);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.ValueOrDie();
  std::printf("%s: %.4fs (rewrite %.4f, plan %.4f, eval %.4f, "
              "aggregate %.4f)\n",
              core::MethodName(method), r.TotalSeconds(),
              r.rewrite_seconds, r.plan_seconds, r.eval_seconds,
              r.aggregate_seconds);
  std::printf("%zu source queries, %zu operators, %zu partitions\n",
              r.source_queries, r.stats.operators_executed, r.partitions);
  std::printf("%s", r.answers.ToString(15).c_str());
  return 0;
}
