/// \file urm_server.cpp
/// REPL-style serving driver for the QueryService built on the unified
/// request API: every query kind (method evaluation, top-k, set-op,
/// threshold) enters as a core::Request, batches are deduplicated and
/// evaluated concurrently, and results can be delivered synchronously,
/// asynchronously (futures + completion callbacks), or streamed leaf
/// by leaf through a core::AnswerSink.
///
///   urm_server [--mb 1.0] [--h 100] [--threads 4] [--cache 256]
///              [--parallelism 1] [--shards 1] [--store-mb 256] [--ttl 0]
///              [--http <port>] [--http-drain <s>]
///              [--metrics-file <path>] [--metrics-interval <s>]
///              [--log-level debug|info|warn|error|off]
///
/// --shards S > 1 evaluates every request over the mapping set split
/// into S contiguous probability-renormalized shards, concurrently on
/// the pool, with a deterministic per-shard answer merge (the h ≫ 10³
/// scaling path; see docs/TUNING.md).
///
/// --http P serves the versioned JSON API (docs/API.md) on
/// 127.0.0.1:P alongside the REPL — POST /v1/query, GET /v1/stats,
/// GET /metrics, and the /v1/stream WebSocket (P = 0 binds an
/// ephemeral port, printed at startup). SIGINT/SIGTERM (and REPL
/// `quit`) drain gracefully: the listener closes, in-flight requests
/// and streams finish, and the metrics dumper writes its final dump —
/// --http-drain bounds the wait (default 10 s).
///
/// --metrics-file dumps the Prometheus text exposition (the same
/// payload the `metrics` command prints) to <path> — atomically via a
/// temp file + rename, so a scraper's textfile collector never reads a
/// torn dump. With --metrics-interval S > 0 a background thread
/// refreshes the file every S seconds; otherwise it is written once at
/// exit. See docs/OBSERVABILITY.md for the metric glossary.
///
/// Commands (one per line):
///   run Q4 [method]            evaluate one query (default osharing)
///   topk Q4 5                  top-k: 5 best tuples with bounds
///   threshold Q4 0.25          all tuples with Pr >= 0.25
///   setop Q1 union Q2          set operation (union|intersect|except;
///                              operands must share a schema + arity)
///   batch Q1:osharing Q2:topk:5 Q4:threshold:0.2 ...
///                              submit a mixed-kind batch; duplicates
///                              share work
///   async Q1 Q2:qsharing ...   submit via SubmitAsync; completions
///                              print as their callbacks fire
///   stream Q4 [method]         stream u-trace leaf answers as they
///                              are produced (time-to-first-answer)
///   stream Q4 topk 5           ... same for the top-k scan
///   stats                      answer-cache / operator-store / pool
///                              counters per schema
///   metrics                    Prometheus text exposition of every
///                              registered series
///   clear                      drop all cached answers
///   help                       this text
///   quit                       exit (EOF works too)
///
/// Engines are built lazily per target schema (Q1-Q5 Excel, Q6-Q7
/// Noris, Q8-Q10 Paragon), each fronted by its own QueryService
/// sharing the configured pool/cache sizes.

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/workload.h"
#include "live/ingest.h"
#include "net/api.h"
#include "net/server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "service/query_service.h"

namespace {

using namespace urm;  // NOLINT

struct ServerArgs {
  double mb = 1.0;
  int h = 100;
  int threads = 4;
  size_t cache = 256;
  int parallelism = 1;
  int shards = 1;           ///< mapping shards per evaluation (1 = off)
  double store_mb = 256.0;  ///< operator-store byte budget (0 disables)
  double ttl = 0.0;         ///< answer-cache TTL seconds (0 = none)
  std::string metrics_file;      ///< exposition dump path ("" = off)
  double metrics_interval = 0.0; ///< dump period seconds (<= 0: at exit)
  int http_port = -1;            ///< -1 = no HTTP tier; 0 = ephemeral
  double http_drain = 10.0;      ///< graceful-drain deadline seconds
};

/// Async-signal-safe shutdown notification: the handler stores which
/// signal arrived and writes one byte into a self-pipe the REPL's
/// poll loop watches (write(2) is on the async-signal-safe list;
/// printf/locks are not).
std::atomic<int> g_signal{0};
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int sig) {
  g_signal.store(sig, std::memory_order_release);
  char byte = 's';
  [[maybe_unused]] ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
}

void InstallSignalHandlers() {
  if (::pipe(g_signal_pipe) != 0) {
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
    return;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Reads REPL lines off stdin with poll(), watching the signal pipe at
/// the same time — a pending SIGINT/SIGTERM interrupts the wait
/// instead of leaving the process stuck in a blocking getline.
class LineReader {
 public:
  enum class Event { kLine, kEof, kSignal };

  Event Next(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return Event::kLine;
      }
      if (eof_) {
        if (!buffer_.empty()) {
          *line = std::move(buffer_);
          buffer_.clear();
          return Event::kLine;
        }
        return Event::kEof;
      }
      if (g_signal.load(std::memory_order_acquire) != 0) {
        return Event::kSignal;
      }
      pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0},
                       {g_signal_pipe[0], POLLIN, 0}};
      nfds_t count = g_signal_pipe[0] >= 0 ? 2 : 1;
      ::poll(fds, count, -1);
      if (g_signal.load(std::memory_order_acquire) != 0 ||
          (count == 2 && fds[1].revents != 0)) {
        return Event::kSignal;
      }
      if ((fds[0].revents & (POLLIN | POLLHUP)) != 0) {
        char chunk[4096];
        ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
        if (n > 0) {
          buffer_.append(chunk, static_cast<size_t>(n));
        } else if (n == 0 || (errno != EINTR && errno != EAGAIN)) {
          eof_ = true;
        }
      }
    }
  }

 private:
  std::string buffer_;
  bool eof_ = false;
};

/// Blocks until SIGINT/SIGTERM arrives (the --http idle wait once
/// stdin reaches EOF — e.g. `urm_server --http 0 < /dev/null`).
void WaitForSignal() {
  while (g_signal.load(std::memory_order_acquire) == 0) {
    pollfd fd = {g_signal_pipe[0], POLLIN, 0};
    ::poll(&fd, g_signal_pipe[0] >= 0 ? 1 : 0, 500);
  }
}

bool ParseMethod(const std::string& name, core::Method* method) {
  if (name == "basic") *method = core::Method::kBasic;
  else if (name == "ebasic" || name == "e-basic") *method = core::Method::kEBasic;
  else if (name == "emqo" || name == "e-mqo") *method = core::Method::kEMqo;
  else if (name == "qsharing" || name == "q-sharing") *method = core::Method::kQSharing;
  else if (name == "osharing" || name == "o-sharing") *method = core::Method::kOSharing;
  else return false;
  return true;
}

bool ParseSetOp(const std::string& name, core::SetOpKind* kind) {
  if (name == "union") *kind = core::SetOpKind::kUnion;
  else if (name == "intersect") *kind = core::SetOpKind::kIntersect;
  else if (name == "except") *kind = core::SetOpKind::kExcept;
  else return false;
  return true;
}

/// One engine + service per target schema, built on first use. Doubles
/// as the HTTP tier's ServiceHub: with --http the server loop thread
/// resolves schemas concurrently with the REPL thread, so every access
/// to the map goes through mu_.
class ServiceDirectory : public net::api::ServiceHub {
 public:
  explicit ServiceDirectory(const ServerArgs& args) : args_(args) {}

  service::QueryService* ForSchema(datagen::TargetSchemaId schema) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(schema);
    if (it != services_.end()) return it->second.service.get();
    std::printf("building %s engine (|D|=%.1f MB, h=%d)...\n",
                datagen::TargetSchemaName(schema), args_.mb, args_.h);
    core::Engine::Options options;
    options.target_mb = args_.mb;
    options.num_mappings = args_.h;
    options.target_schema = schema;
    auto engine = core::Engine::Create(options);
    if (!engine.ok()) {
      std::printf("error: %s\n", engine.status().ToString().c_str());
      return nullptr;
    }
    Entry entry;
    entry.engine = std::move(engine).ValueOrDie();
    service::ServiceOptions service_options;
    service_options.num_threads = args_.threads;
    service_options.cache_capacity = args_.cache;
    service_options.cache_ttl_seconds = args_.ttl;
    service_options.intra_query_parallelism = args_.parallelism;
    service_options.mapping_shards = args_.shards;
    service_options.share_operators = args_.store_mb > 0.0;
    service_options.operator_store_bytes =
        static_cast<size_t>(args_.store_mb * 1024 * 1024);
    // Each schema's service shares the process DefaultRegistry; the
    // schema label keeps their series apart in one exposition.
    service_options.metric_labels = {
        {"schema", datagen::TargetSchemaName(schema)}};
    entry.service = std::make_unique<service::QueryService>(
        entry.engine.get(), service_options);
    live::IngestOptions ingest_options;
    ingest_options.metric_labels = service_options.metric_labels;
    entry.ingest = std::make_unique<live::IngestController>(
        entry.engine.get(), entry.service.get(), ingest_options);
    auto* result = entry.service.get();
    services_.emplace(schema, std::move(entry));
    return result;
  }

  void VisitServices(
      const std::function<void(datagen::TargetSchemaId,
                               service::QueryService*)>& fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [schema, entry] : services_) fn(schema, entry.service.get());
  }

  live::IngestController* IngestFor(datagen::TargetSchemaId schema) override {
    // Instantiate the whole stack on first use, exactly like ForSchema
    // (an ingest against a cold schema builds its engine + service).
    if (ForSchema(schema) == nullptr) return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(schema);
    return it != services_.end() ? it->second.ingest.get() : nullptr;
  }

  void PrintStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (services_.empty()) {
      std::printf("no engines built yet\n");
      return;
    }
    // Every counter is printed under its CacheStats / OperatorStoreStats
    // field name; the glossary for all of them is in docs/TUNING.md.
    for (const auto& [schema, entry] : services_) {
      service::CacheStats stats = entry.service->cache_stats();
      std::printf("%-8s answers:   entries=%zu bytes=%.1fKB hits=%zu "
                  "misses=%zu evictions=%zu expirations=%zu\n",
                  datagen::TargetSchemaName(schema), stats.entries,
                  stats.bytes / 1024.0, stats.hits, stats.misses,
                  stats.evictions, stats.expirations);
      osharing::OperatorStoreStats store =
          entry.service->operator_store_stats();
      std::printf("%-8s operators: entries=%zu bytes=%.1fKB hits=%zu "
                  "single_flight_waits=%zu misses=%zu evictions=%zu "
                  "bytes_reused=%.1fKB\n",
                  "", store.entries, store.bytes / 1024.0, store.hits,
                  store.single_flight_waits, store.misses,
                  store.evictions, store.bytes_reused / 1024.0);
      PoolStats pool = entry.service->pool_stats();
      std::printf("%-8s pool:      threads=%zu queue_depth=%zu "
                  "running_tasks=%zu tasks_executed=%llu\n",
                  "", pool.threads, pool.queue_depth, pool.running_tasks,
                  static_cast<unsigned long long>(pool.tasks_executed));
      // Compressed catalog footprint + scan-byte accounting (the
      // columnar storage layer; field glossary in docs/TUNING.md).
      relational::Catalog::StorageStats storage =
          entry.service->engine().catalog().Storage();
      service::QueryService::StorageScanStats scans =
          entry.service->storage_scan_stats();
      std::printf("%-8s storage:   encoded_bytes=%.1fKB logical_bytes="
                  "%.1fKB compression_ratio=%.2f bytes_scanned=%.1fKB "
                  "columnar_scans=%llu row_scans=%llu\n",
                  "", storage.encoded_bytes / 1024.0,
                  storage.logical_bytes / 1024.0,
                  storage.encoded_bytes > 0
                      ? static_cast<double>(storage.logical_bytes) /
                            static_cast<double>(storage.encoded_bytes)
                      : 1.0,
                  scans.bytes_scanned / 1024.0,
                  static_cast<unsigned long long>(scans.columnar_scans),
                  static_cast<unsigned long long>(scans.row_scans));
    }
  }

  void ClearCaches() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [schema, entry] : services_) entry.service->ClearCache();
    std::printf("caches cleared\n");
  }

 private:
  struct Entry {
    std::unique_ptr<core::Engine> engine;
    std::unique_ptr<service::QueryService> service;
    /// Live-update controller over the two above (delta ingest +
    /// mapping hot-reconfiguration; serves POST /v1/ingest).
    std::unique_ptr<live::IngestController> ingest;
  };
  ServerArgs args_;
  mutable std::mutex mu_;
  std::map<datagen::TargetSchemaId, Entry> services_;
};

void PrintResponse(const std::string& label,
                   const service::QueryResponse& response) {
  if (!response.status.ok()) {
    std::printf("%-18s error: %s\n", label.c_str(),
                response.status.ToString().c_str());
    return;
  }
  const char* source = response.cache_hit ? "cache"
                       : response.shared_in_batch ? "shared"
                                                  : "evaluated";
  const core::Response& r = *response.response;
  switch (r.kind) {
    case core::RequestKind::kEvaluate:
    case core::RequestKind::kSetOp:
      std::printf("%-18s %-9s %zu answers (P(θ)=%.3f) %zu partitions "
                  "%.1f ms",
                  label.c_str(), source, r.evaluate.answers.size(),
                  r.evaluate.answers.null_probability(),
                  r.evaluate.partitions, r.evaluate.TotalSeconds() * 1e3);
      if (r.evaluate.stats.cache_hits + r.evaluate.stats.cache_misses > 0) {
        // Operator-cache observability: how much materialization this
        // evaluation reused (op-cache + shared store) vs computed.
        // Every field is labelled with its EvalStats name; the field
        // glossary lives in docs/TUNING.md.
        std::printf("  [ops: cache_hits=%zu cache_misses=%zu "
                    "store_hits=%zu cache_bytes_saved=%.1fKB "
                    "bytes_scanned=%.1fKB columnar_scans=%zu]",
                    r.evaluate.stats.cache_hits,
                    r.evaluate.stats.cache_misses,
                    r.evaluate.stats.store_hits,
                    r.evaluate.stats.cache_bytes_saved / 1024.0,
                    r.evaluate.stats.bytes_scanned / 1024.0,
                    r.evaluate.stats.columnar_scans);
      }
      std::printf("\n");
      break;
    case core::RequestKind::kTopK:
      std::printf("%-18s %-9s top-%zu (%s after %zu leaves) %.1f ms\n",
                  label.c_str(), source, r.top_k.tuples.size(),
                  r.top_k.early_terminated ? "pruned" : "exhausted",
                  r.top_k.leaves_visited, r.top_k.seconds * 1e3);
      for (const auto& t : r.top_k.tuples) {
        std::printf("    Pr in [%.4f, %.4f]\n", t.lower_bound,
                    t.upper_bound);
      }
      break;
    case core::RequestKind::kThreshold:
      std::printf("%-18s %-9s %zu tuples over threshold (%s after %zu "
                  "leaves) %.1f ms\n",
                  label.c_str(), source, r.threshold.tuples.size(),
                  r.threshold.early_terminated ? "pruned" : "exhausted",
                  r.threshold.leaves_visited, r.threshold.seconds * 1e3);
      break;
  }
}

/// Looks up a workload query id, reporting unknown ids.
bool LookupQuery(const std::string& id, core::WorkloadQuery* out) {
  for (const auto& wq : core::PaperWorkload()) {
    if (wq.id == id) {
      *out = wq;
      return true;
    }
  }
  std::printf("unknown query '%s' (expected Q1..Q10)\n", id.c_str());
  return false;
}

/// Parses "Q4", "Q4:osharing", "Q4:topk:5" or "Q4:threshold:0.2" into
/// a Request over the query's schema.
bool ParseRequestToken(const std::string& token, core::Request* request,
                       datagen::TargetSchemaId* schema) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(token);
  while (std::getline(stream, part, ':')) parts.push_back(part);
  if (parts.empty()) return false;
  core::WorkloadQuery wq;
  if (!LookupQuery(parts[0], &wq)) return false;
  *schema = wq.schema;
  if (parts.size() == 1) {
    *request = core::Request::MethodEval(wq.query, core::Method::kOSharing);
    return true;
  }
  core::Method method;
  if (ParseMethod(parts[1], &method)) {
    *request = core::Request::MethodEval(wq.query, method);
    return true;
  }
  if (parts[1] == "topk" && parts.size() == 3) {
    long long k = std::atoll(parts[2].c_str());
    if (k <= 0) {
      std::printf("k must be a positive integer, got '%s'\n",
                  parts[2].c_str());
      return false;
    }
    *request = core::Request::TopK(wq.query, static_cast<size_t>(k));
    return true;
  }
  if (parts[1] == "threshold" && parts.size() == 3) {
    *request = core::Request::Threshold(wq.query,
                                        std::atof(parts[2].c_str()));
    return true;
  }
  std::printf("cannot parse '%s' (try Qid, Qid:method, Qid:topk:k, "
              "Qid:threshold:p)\n",
              token.c_str());
  return false;
}

void RunBatch(ServiceDirectory* directory,
              const std::vector<std::string>& tokens) {
  // Group requests per schema (each schema has its own service); keep
  // the submission batched so dedup/cache behavior is visible.
  std::map<datagen::TargetSchemaId,
           std::pair<std::vector<std::string>, std::vector<core::Request>>>
      by_schema;
  for (const auto& token : tokens) {
    core::Request request;
    datagen::TargetSchemaId schema;
    if (!ParseRequestToken(token, &request, &schema)) return;
    auto& [labels, requests] = by_schema[schema];
    labels.push_back(token);
    requests.push_back(std::move(request));
  }
  for (auto& [schema, group] : by_schema) {
    service::QueryService* service = directory->ForSchema(schema);
    if (service == nullptr) return;
    auto responses = service->Submit(group.second);
    for (size_t i = 0; i < responses.size(); ++i) {
      PrintResponse(group.first[i], responses[i]);
    }
  }
}

/// Submits every request through SubmitAsync; completion callbacks
/// print from the worker threads as evaluations finish (out of
/// submission order when pool size allows).
void RunAsync(ServiceDirectory* directory,
              const std::vector<std::string>& tokens) {
  // Parse and resolve every token before submitting anything: once a
  // request is in flight its callback references the locals below, so
  // no early return may happen past the first SubmitAsync.
  struct Parsed {
    std::string label;
    core::Request request;
    service::QueryService* service = nullptr;
  };
  std::vector<Parsed> parsed;
  for (const auto& token : tokens) {
    Parsed p;
    p.label = token;
    datagen::TargetSchemaId schema;
    if (!ParseRequestToken(token, &p.request, &schema)) return;
    p.service = directory->ForSchema(schema);
    if (p.service == nullptr) return;
    parsed.push_back(std::move(p));
  }

  std::mutex stdout_mu;
  Timer timer;
  std::vector<std::future<service::QueryResponse>> futures;
  for (const auto& p : parsed) {
    std::string label = p.label;
    futures.push_back(p.service->SubmitAsync(
        p.request, nullptr,
        [&stdout_mu, &timer, label](const service::QueryResponse& response) {
          std::lock_guard<std::mutex> lock(stdout_mu);
          std::printf("  [%.1f ms] ", timer.Seconds() * 1e3);
          PrintResponse(label, response);
        }));
  }
  std::printf("%zu requests in flight\n", futures.size());
  for (auto& future : futures) future.wait();
}

/// Streams one request's u-trace leaves as they are produced.
class PrintingSink : public core::AnswerSink {
 public:
  bool OnAnswer(const std::vector<relational::Row>& rows,
                double probability) override {
    if (answers_++ == 0) first_ms_ = timer_.Seconds() * 1e3;
    std::printf("  leaf %3zu: %4zu rows, partition mass %.4f "
                "(t=%.1f ms)\n",
                answers_, rows.size(), probability,
                timer_.Seconds() * 1e3);
    return true;
  }

  void OnComplete(const Status& status) override {
    std::printf("  stream complete (%s): %zu leaves, first after "
                "%.1f ms, done after %.1f ms\n",
                status.ok() ? "ok" : status.ToString().c_str(), answers_,
                first_ms_, timer_.Seconds() * 1e3);
  }

 private:
  Timer timer_;
  size_t answers_ = 0;
  double first_ms_ = 0.0;
};

void RunStream(ServiceDirectory* directory,
               const std::vector<std::string>& tokens) {
  if (tokens.empty()) return;
  core::Request request;
  datagen::TargetSchemaId schema;
  if (tokens.size() >= 2 && tokens[1] == "topk") {
    std::string token = tokens[0] + ":topk:" +
                        (tokens.size() > 2 ? tokens[2] : "5");
    if (!ParseRequestToken(token, &request, &schema)) return;
  } else if (tokens.size() >= 2 && tokens[1] == "threshold") {
    std::string token = tokens[0] + ":threshold:" +
                        (tokens.size() > 2 ? tokens[2] : "0.2");
    if (!ParseRequestToken(token, &request, &schema)) return;
  } else {
    std::string token =
        tokens.size() > 1 ? tokens[0] + ":" + tokens[1] : tokens[0];
    if (!ParseRequestToken(token, &request, &schema)) return;
  }
  service::QueryService* service = directory->ForSchema(schema);
  if (service == nullptr) return;
  PrintingSink sink;
  auto response = service->Submit(request, &sink);
  PrintResponse(tokens[0], response);
}

void RunSetOp(ServiceDirectory* directory, const std::string& left_id,
              const std::string& op_name, const std::string& right_id) {
  core::SetOpKind kind;
  if (!ParseSetOp(op_name, &kind)) {
    std::printf("unknown set op '%s' (union|intersect|except)\n",
                op_name.c_str());
    return;
  }
  core::WorkloadQuery left, right;
  if (!LookupQuery(left_id, &left) || !LookupQuery(right_id, &right)) return;
  if (left.schema != right.schema) {
    std::printf("set-op operands must share a target schema\n");
    return;
  }
  service::QueryService* service = directory->ForSchema(left.schema);
  if (service == nullptr) return;
  auto response =
      service->Submit(core::Request::SetOp(left.query, right.query, kind));
  PrintResponse(left_id + " " + op_name + " " + right_id, response);
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  run <Q1..Q10> [basic|ebasic|emqo|qsharing|osharing]\n"
      "  topk <Qid> <k>\n"
      "  threshold <Qid> <p>\n"
      "  setop <Qid> <union|intersect|except> <Qid>\n"
      "  batch <Qid>[:<method>|:topk:<k>|:threshold:<p>] ...\n"
      "  async <Qid>[:<method>|:topk:<k>|:threshold:<p>] ...\n"
      "  stream <Qid> [<method>|topk <k>|threshold <p>]\n"
      "  stats | metrics | clear | help | quit\n");
}

/// Writes the exposition to `path` atomically (temp file + rename), so
/// a textfile-collector scrape never reads a torn dump.
bool DumpMetrics(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    URM_LOG(Error, "server") << "cannot open metrics file " << tmp;
    return false;
  }
  const std::string text = obs::DefaultRegistry().ExposeText();
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    URM_LOG(Error, "server") << "metrics dump to " << path << " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Periodic --metrics-file refresher: a background thread dumps every
/// `interval` seconds; the destructor stops it and writes one final
/// dump (also the whole behavior when interval <= 0).
class MetricsDumper {
 public:
  MetricsDumper(std::string path, double interval)
      : path_(std::move(path)) {
    if (path_.empty()) return;
    if (interval > 0.0) {
      thread_ = std::thread([this, interval] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
          cv_.wait_for(lock, std::chrono::duration<double>(interval),
                       [this] { return stop_; });
          if (stop_) break;
          lock.unlock();
          DumpMetrics(path_);
          lock.lock();
        }
      });
    }
  }

  ~MetricsDumper() {
    if (path_.empty()) return;
    if (thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
    DumpMetrics(path_);  // final dump reflects the full session
  }

 private:
  std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  ServerArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--mb") == 0) args.mb = std::atof(next("--mb"));
    else if (std::strcmp(argv[i], "--h") == 0) args.h = std::atoi(next("--h"));
    else if (std::strcmp(argv[i], "--threads") == 0)
      args.threads = std::atoi(next("--threads"));
    else if (std::strcmp(argv[i], "--cache") == 0)
      args.cache = static_cast<size_t>(std::atoll(next("--cache")));
    else if (std::strcmp(argv[i], "--parallelism") == 0)
      args.parallelism = std::atoi(next("--parallelism"));
    else if (std::strcmp(argv[i], "--shards") == 0)
      args.shards = std::atoi(next("--shards"));
    else if (std::strcmp(argv[i], "--store-mb") == 0)
      args.store_mb = std::atof(next("--store-mb"));
    else if (std::strcmp(argv[i], "--ttl") == 0)
      args.ttl = std::atof(next("--ttl"));
    else if (std::strcmp(argv[i], "--http") == 0)
      args.http_port = std::atoi(next("--http"));
    else if (std::strcmp(argv[i], "--http-drain") == 0)
      args.http_drain = std::atof(next("--http-drain"));
    else if (std::strcmp(argv[i], "--metrics-file") == 0)
      args.metrics_file = next("--metrics-file");
    else if (std::strcmp(argv[i], "--metrics-interval") == 0)
      args.metrics_interval = std::atof(next("--metrics-interval"));
    else if (std::strcmp(argv[i], "--log-level") == 0) {
      obs::LogLevel level;
      const char* name = next("--log-level");
      if (!obs::ParseLogLevel(name, &level)) {
        std::fprintf(stderr,
                     "unknown log level '%s' "
                     "(debug|info|warn|error|off)\n",
                     name);
        return 1;
      }
      obs::set_log_threshold(level);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  if (args.http_port >= 0 && args.threads <= 0) {
    // SubmitAsync needs pool workers to make progress for HTTP
    // callers; the REPL's synchronous helping wait can't help them.
    std::printf("note: --http requires pool workers; using --threads 1\n");
    args.threads = 1;
  }

  InstallSignalHandlers();

  std::printf("urm query service (threads=%d, cache=%zu, parallelism=%d, "
              "shards=%d); 'help' lists commands\n",
              args.threads, args.cache, args.parallelism, args.shards);
  ServiceDirectory directory(args);
  MetricsDumper dumper(args.metrics_file, args.metrics_interval);

  // Declared after directory/dumper so teardown drains the HTTP tier
  // first, while the services (and the registry the final metrics dump
  // reads) are still alive.
  std::unique_ptr<net::HttpServer> http;
  if (args.http_port >= 0) {
    net::ServerOptions options;
    options.listener.port = static_cast<uint16_t>(args.http_port);
    options.drain_deadline_seconds =
        args.http_drain > 0.0 ? args.http_drain : 10.0;
    http = std::make_unique<net::HttpServer>(options);
    net::api::RegisterRoutes(http.get(), &directory);
    Status status = http->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "http: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("http listening on 127.0.0.1:%u\n", http->port());
  }

  LineReader reader;
  std::string line;
  while (true) {
    std::printf("urm> ");
    std::fflush(stdout);
    LineReader::Event event = reader.Next(&line);
    if (event == LineReader::Event::kSignal) {
      std::printf("\nsignal received, shutting down\n");
      break;
    }
    if (event == LineReader::Event::kEof) {
      if (http != nullptr) {
        // Headless --http mode (stdin redirected from /dev/null):
        // keep serving until SIGINT/SIGTERM.
        std::printf("\nstdin closed; serving until SIGINT/SIGTERM\n");
        std::fflush(stdout);
        WaitForSignal();
        std::printf("signal received, shutting down\n");
      }
      break;
    }
    std::istringstream stream(line);
    std::string command;
    if (!(stream >> command)) continue;
    if (command == "quit" || command == "exit") break;
    std::vector<std::string> tokens;
    std::string token;
    while (stream >> token) tokens.push_back(token);
    if (command == "help") {
      PrintHelp();
    } else if (command == "stats") {
      directory.PrintStats();
    } else if (command == "metrics") {
      std::fputs(obs::DefaultRegistry().ExposeText().c_str(), stdout);
    } else if (command == "clear") {
      directory.ClearCaches();
    } else if (command == "run") {
      if (tokens.empty()) {
        PrintHelp();
        continue;
      }
      RunBatch(&directory, {tokens.size() > 1
                                ? tokens[0] + ":" + tokens[1]
                                : tokens[0]});
    } else if (command == "topk" && tokens.size() == 2) {
      RunBatch(&directory, {tokens[0] + ":topk:" + tokens[1]});
    } else if (command == "threshold" && tokens.size() == 2) {
      RunBatch(&directory, {tokens[0] + ":threshold:" + tokens[1]});
    } else if (command == "setop" && tokens.size() == 3) {
      RunSetOp(&directory, tokens[0], tokens[1], tokens[2]);
    } else if (command == "batch" && !tokens.empty()) {
      RunBatch(&directory, tokens);
    } else if (command == "async" && !tokens.empty()) {
      if (args.threads == 0) {
        // No workers to run detached futures; Submit's helping wait is
        // the only way to make progress.
        std::printf("note: --threads 0, falling back to sync batch\n");
        RunBatch(&directory, tokens);
      } else {
        RunAsync(&directory, tokens);
      }
    } else if (command == "stream" && !tokens.empty()) {
      RunStream(&directory, tokens);
    } else {
      PrintHelp();
    }
  }
  if (http != nullptr) {
    std::printf("draining http server...\n");
    http->Shutdown();
    std::printf("http server stopped\n");
  }
  return 0;
}
