/// \file urm_server.cpp
/// REPL-style serving driver for the QueryService: accepts batches of
/// Table III queries, deduplicates and evaluates them concurrently, and
/// reports cache behavior — the interactive face of the serving tier.
///
///   urm_server [--mb 1.0] [--h 100] [--threads 4] [--cache 256]
///              [--parallelism 1]
///
/// Commands (one per line):
///   run Q4 [method]            evaluate one query (default osharing)
///   batch Q1:osharing Q2:qsharing Q1:osharing ...
///                              submit a batch; duplicates share work
///   stats                      answer-cache counters per schema
///   clear                      drop all cached answers
///   help                       this text
///   quit                       exit (EOF works too)
///
/// Engines are built lazily per target schema (Q1-Q5 Excel, Q6-Q7
/// Noris, Q8-Q10 Paragon), each fronted by its own QueryService
/// sharing the configured pool/cache sizes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/workload.h"
#include "service/query_service.h"

namespace {

using namespace urm;  // NOLINT

struct ServerArgs {
  double mb = 1.0;
  int h = 100;
  int threads = 4;
  size_t cache = 256;
  int parallelism = 1;
};

bool ParseMethod(const std::string& name, core::Method* method) {
  if (name == "basic") *method = core::Method::kBasic;
  else if (name == "ebasic" || name == "e-basic") *method = core::Method::kEBasic;
  else if (name == "emqo" || name == "e-mqo") *method = core::Method::kEMqo;
  else if (name == "qsharing" || name == "q-sharing") *method = core::Method::kQSharing;
  else if (name == "osharing" || name == "o-sharing") *method = core::Method::kOSharing;
  else return false;
  return true;
}

/// One engine + service per target schema, built on first use.
class ServiceDirectory {
 public:
  explicit ServiceDirectory(const ServerArgs& args) : args_(args) {}

  service::QueryService* ForSchema(datagen::TargetSchemaId schema) {
    auto it = services_.find(schema);
    if (it != services_.end()) return it->second.service.get();
    std::printf("building %s engine (|D|=%.1f MB, h=%d)...\n",
                datagen::TargetSchemaName(schema), args_.mb, args_.h);
    core::Engine::Options options;
    options.target_mb = args_.mb;
    options.num_mappings = args_.h;
    options.target_schema = schema;
    auto engine = core::Engine::Create(options);
    if (!engine.ok()) {
      std::printf("error: %s\n", engine.status().ToString().c_str());
      return nullptr;
    }
    Entry entry;
    entry.engine = std::move(engine).ValueOrDie();
    service::ServiceOptions service_options;
    service_options.num_threads = args_.threads;
    service_options.cache_capacity = args_.cache;
    service_options.intra_query_parallelism = args_.parallelism;
    entry.service = std::make_unique<service::QueryService>(
        entry.engine.get(), service_options);
    auto* result = entry.service.get();
    services_.emplace(schema, std::move(entry));
    return result;
  }

  void PrintStats() const {
    if (services_.empty()) {
      std::printf("no engines built yet\n");
      return;
    }
    for (const auto& [schema, entry] : services_) {
      service::CacheStats stats = entry.service->cache_stats();
      std::printf("%-8s cache: %zu entries, %zu hits, %zu misses, "
                  "%zu evictions\n",
                  datagen::TargetSchemaName(schema), stats.entries,
                  stats.hits, stats.misses, stats.evictions);
    }
  }

  void ClearCaches() {
    for (auto& [schema, entry] : services_) entry.service->ClearCache();
    std::printf("caches cleared\n");
  }

 private:
  struct Entry {
    std::unique_ptr<core::Engine> engine;
    std::unique_ptr<service::QueryService> service;
  };
  ServerArgs args_;
  std::map<datagen::TargetSchemaId, Entry> services_;
};

void PrintResponse(const std::string& label,
                   const service::QueryResponse& response) {
  if (!response.status.ok()) {
    std::printf("%-14s error: %s\n", label.c_str(),
                response.status.ToString().c_str());
    return;
  }
  const auto& result = *response.result;
  const char* source = response.cache_hit ? "cache"
                       : response.shared_in_batch ? "shared"
                                                  : "evaluated";
  std::printf("%-14s %-9s %zu answers (P(θ)=%.3f) %zu partitions "
              "%.1f ms\n",
              label.c_str(), source, result.answers.size(),
              result.answers.null_probability(), result.partitions,
              result.TotalSeconds() * 1e3);
}

/// Parses "Q4" or "Q4:osharing" into a request; returns the label.
bool ParseRequestToken(const std::string& token, std::string* query_id,
                       core::Method* method) {
  *method = core::Method::kOSharing;
  auto colon = token.find(':');
  *query_id = token.substr(0, colon);
  if (colon != std::string::npos &&
      !ParseMethod(token.substr(colon + 1), method)) {
    std::printf("unknown method in '%s'\n", token.c_str());
    return false;
  }
  for (const auto& wq : core::PaperWorkload()) {
    if (wq.id == *query_id) return true;
  }
  std::printf("unknown query '%s' (expected Q1..Q10)\n", query_id->c_str());
  return false;
}

void RunBatch(ServiceDirectory* directory,
              const std::vector<std::string>& tokens) {
  // Group requests per schema (each schema has its own service); keep
  // the submission batched so dedup/cache behavior is visible.
  std::map<datagen::TargetSchemaId,
           std::pair<std::vector<std::string>,
                     std::vector<service::QueryRequest>>>
      by_schema;
  for (const auto& token : tokens) {
    std::string id;
    core::Method method;
    if (!ParseRequestToken(token, &id, &method)) return;
    core::WorkloadQuery wq = core::QueryById(id);
    auto& [labels, requests] = by_schema[wq.schema];
    labels.push_back(token);
    requests.push_back({wq.query, method});
  }
  for (auto& [schema, group] : by_schema) {
    service::QueryService* service = directory->ForSchema(schema);
    if (service == nullptr) return;
    auto responses = service->Submit(group.second);
    for (size_t i = 0; i < responses.size(); ++i) {
      PrintResponse(group.first[i], responses[i]);
    }
  }
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  run <Q1..Q10> [basic|ebasic|emqo|qsharing|osharing]\n"
      "  batch <Qid>[:<method>] ...\n"
      "  stats | clear | help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  ServerArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--mb") == 0) args.mb = std::atof(next("--mb"));
    else if (std::strcmp(argv[i], "--h") == 0) args.h = std::atoi(next("--h"));
    else if (std::strcmp(argv[i], "--threads") == 0)
      args.threads = std::atoi(next("--threads"));
    else if (std::strcmp(argv[i], "--cache") == 0)
      args.cache = static_cast<size_t>(std::atoll(next("--cache")));
    else if (std::strcmp(argv[i], "--parallelism") == 0)
      args.parallelism = std::atoi(next("--parallelism"));
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("urm query service (threads=%d, cache=%zu, parallelism=%d); "
              "'help' lists commands\n",
              args.threads, args.cache, args.parallelism);
  ServiceDirectory directory(args);

  std::string line;
  while (std::printf("urm> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream stream(line);
    std::string command;
    if (!(stream >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "stats") {
      directory.PrintStats();
    } else if (command == "clear") {
      directory.ClearCaches();
    } else if (command == "run") {
      std::string id, method_name;
      stream >> id >> method_name;
      if (id.empty()) {
        PrintHelp();
        continue;
      }
      RunBatch(&directory,
               {method_name.empty() ? id : id + ":" + method_name});
    } else if (command == "batch") {
      std::vector<std::string> tokens;
      std::string token;
      while (stream >> token) tokens.push_back(token);
      if (tokens.empty()) {
        PrintHelp();
        continue;
      }
      RunBatch(&directory, tokens);
    } else {
      PrintHelp();
    }
  }
  return 0;
}
