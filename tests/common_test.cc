#include <gtest/gtest.h>

#include "common/hash_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace urm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad h");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad h");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad h");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    URM_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
  EXPECT_EQ(f(false).code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "abc");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SkewedIndexFavorsSmallIndexes) {
  Rng rng(11);
  size_t low = 0, total = 10000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.SkewedIndex(100) < 25) ++low;
  }
  // Quadratic skew: P(idx < 25) = sqrt(0.25) = 0.5.
  EXPECT_GT(low, total / 3);
}

TEST(RngTest, StringHasRequestedLength) {
  Rng rng(1);
  EXPECT_EQ(rng.String(12).size(), 12u);
  EXPECT_EQ(rng.String(0).size(), 0u);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TokenizeCamelCase) {
  auto tokens = TokenizeIdentifier("deliverToStreet");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "deliver");
  EXPECT_EQ(tokens[1], "to");
  EXPECT_EQ(tokens[2], "street");
}

TEST(StringUtilTest, TokenizeSnakeCase) {
  auto tokens = TokenizeIdentifier("l_shipdate");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "l");
  EXPECT_EQ(tokens[1], "shipdate");
}

TEST(StringUtilTest, TokenizeUpperRuns) {
  auto tokens = TokenizeIdentifier("PONumber");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "po");
  EXPECT_EQ(tokens[1], "number");
}

TEST(StringUtilTest, TokenizeDigitBoundaries) {
  auto tokens = TokenizeIdentifier("item2Num");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "item");
  EXPECT_EQ(tokens[1], "2");
  EXPECT_EQ(tokens[2], "num");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("po1$orders", "po1$"));
  EXPECT_FALSE(StartsWith("po", "po1"));
}

TEST(HashUtilTest, Fnv1aStableKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
}

TEST(HashUtilTest, HashCombineChangesSeed) {
  size_t seed = 0;
  HashCombine(seed, 1234);
  EXPECT_NE(seed, 0u);
}

TEST(TimerTest, MeasuresNonNegativeTime) {
  Timer t;
  EXPECT_GE(t.Seconds(), 0.0);
  double lap = t.Lap();
  EXPECT_GE(lap, 0.0);
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace urm
