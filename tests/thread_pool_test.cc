#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace urm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(8,
                       [&](size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
      });
    }
  }  // ~ThreadPool completes all queued work before joining
  EXPECT_EQ(executed.load(), 8);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexesOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.ParallelFor(100, [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  pool.ParallelFor(4, [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer task fans out on the same pool; the help-loop must keep
  // the fully-subscribed pool making progress.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolTest, TryRunOneExecutesQueuedTask) {
  ThreadPool pool(0);
  EXPECT_FALSE(pool.TryRunOne());
  auto future = pool.Submit([] { return 5; });
  EXPECT_TRUE(pool.TryRunOne());
  EXPECT_EQ(future.get(), 5);
}

}  // namespace
}  // namespace urm
