/// \file sharded_mapping_test.cc
/// Sharded mapping sets (mapping::ShardedMappingSet) and the sharded
/// evaluation path behind Engine::EvalOptions::mapping_shards /
/// ServiceOptions::mapping_shards.
///
/// Determinism contract under test, per the two guarantees the engine
/// documents:
///  * exactly representable probabilities (dyadic, power-of-two shard
///    masses) make every renormalize / accumulate / reweight step exact
///    in IEEE double, so sharded results at S ∈ {1, 2, 4} are
///    **bit-identical** to the unsharded pass for all four request
///    kinds;
///  * arbitrary probabilities agree within 1e-12 (randomized h/S
///    property test).
///
/// The concurrent cases (pool-backed shard fan-out, concurrent sharded
/// service submissions over one shared OperatorStore) run under TSan in
/// CI alongside the other service suites.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/workload.h"
#include "mapping/sharded.h"
#include "service/query_service.h"
#include "tests/paper_fixture.h"

namespace urm {
namespace core {
namespace {

using algebra::CmpOp;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;
using reformulation::AnswerSet;
using relational::RowsEqual;

/// π_phone σ_addr=c Person over the paper fixture's target schema.
PlanPtr PhoneByAddr(const std::string& c) {
  return MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, c)),
      {"person.phone"});
}

/// π_addr σ_phone='123' Person (the paper's q0).
PlanPtr AddrByPhone() {
  return MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123")),
      {"person.addr"});
}

/// Exact (bitwise) AnswerSet equality: same tuples in the same sorted
/// order with == probabilities — no epsilon.
void ExpectBitIdentical(const AnswerSet& a, const AnswerSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.null_probability(), b.null_probability());
  auto sa = a.Sorted();
  auto sb = b.Sorted();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(RowsEqual(sa[i].values, sb[i].values)) << "row " << i;
    EXPECT_EQ(sa[i].probability, sb[i].probability) << "row " << i;
  }
}

class ShardedMappingTest : public ::testing::Test {
 protected:
  ShardedMappingTest() : ex_(urm::testing::MakePaperExample()) {}

  /// 8 mappings cycling the fixture's five pair-sets, each with
  /// probability (and score) exactly 2^-3 — so contiguous shards at
  /// S ∈ {1, 2, 4} have power-of-two masses {1, 0.5, 0.25} and every
  /// renormalization and reweight is exact in IEEE double.
  std::vector<mapping::Mapping> DyadicMappings() const {
    std::vector<mapping::Mapping> out;
    for (size_t i = 0; i < 8; ++i) {
      mapping::Mapping m = ex_.mappings[i % ex_.mappings.size()];
      m.set_probability(0.125);
      m.set_score(0.125);
      out.push_back(std::move(m));
    }
    return out;
  }

  std::unique_ptr<Engine> MakeEngine(
      std::vector<mapping::Mapping> mappings) const {
    Engine::Options options;
    options.strategy = osharing::StrategyKind::kSEF;
    return Engine::FromParts(ex_.catalog, ex_.source_schema,
                             ex_.target_schema, std::move(mappings),
                             options);
  }

  urm::testing::PaperExample ex_;
};

TEST_F(ShardedMappingTest, BuildPartitionsContiguouslyAndRenormalizes) {
  auto mappings = DyadicMappings();
  auto sharded = mapping::ShardedMappingSet::Build(mappings, 3);
  ASSERT_EQ(sharded.num_shards(), 3u);
  // 8 = 3 + 3 + 2, contiguous.
  EXPECT_EQ(sharded.shard(0).mappings.size(), 3u);
  EXPECT_EQ(sharded.shard(1).mappings.size(), 3u);
  EXPECT_EQ(sharded.shard(2).mappings.size(), 2u);
  EXPECT_EQ(sharded.shard(0).first, 0u);
  EXPECT_EQ(sharded.shard(1).first, 3u);
  EXPECT_EQ(sharded.shard(2).first, 6u);
  EXPECT_NEAR(sharded.total_mass(), 1.0, 1e-12);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    // Each shard is a well-formed renormalized mapping set.
    EXPECT_NEAR(mapping::TotalProbability(sharded.shard(s).mappings), 1.0,
                1e-12);
    EXPECT_NE(sharded.shard(s).hash, 0u);
    // The shard keeps the source pair-sets untouched.
    for (size_t i = 0; i < sharded.shard(s).mappings.size(); ++i) {
      EXPECT_TRUE(sharded.shard(s).mappings[i].SamePairs(
          mappings[sharded.shard(s).first + i]));
    }
  }
}

TEST_F(ShardedMappingTest, BuildClampsAndHashesConfigurations) {
  auto mappings = DyadicMappings();
  EXPECT_EQ(mapping::ShardedMappingSet::Build(mappings, 0).num_shards(), 1u);
  EXPECT_EQ(mapping::ShardedMappingSet::Build(mappings, 100).num_shards(),
            8u);
  EXPECT_EQ(mapping::ShardedMappingSet::Build({}, 4).num_shards(), 0u);

  auto s2 = mapping::ShardedMappingSet::Build(mappings, 2);
  auto s2_again = mapping::ShardedMappingSet::Build(mappings, 2);
  auto s4 = mapping::ShardedMappingSet::Build(mappings, 4);
  // Deterministic per configuration, distinct across configurations.
  EXPECT_EQ(s2.config_hash(), s2_again.config_hash());
  EXPECT_EQ(s2.shard(0).hash, s2_again.shard(0).hash);
  EXPECT_NE(s2.config_hash(), s4.config_hash());

  // O(1) fingerprint companion: 0/1 shards are the unsharded identity.
  EXPECT_EQ(mapping::ShardContextHash(42, 0), 42u);
  EXPECT_EQ(mapping::ShardContextHash(42, 1), 42u);
  EXPECT_NE(mapping::ShardContextHash(42, 2),
            mapping::ShardContextHash(42, 4));
  EXPECT_NE(mapping::ShardContextHash(42, 2), 42u);
}

TEST_F(ShardedMappingTest, ShardedEvaluateBitIdenticalOnDyadicMasses) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  const Method methods[] = {Method::kBasic, Method::kEBasic, Method::kEMqo,
                            Method::kQSharing, Method::kOSharing};
  for (Method method : methods) {
    auto request = Request::MethodEval(PhoneByAddr("aaa"), method);
    auto unsharded = engine->Run(request);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    for (int shards : {1, 2, 4}) {
      Engine::EvalOptions eval;
      eval.mapping_shards = shards;
      eval.pool = &pool;
      auto sharded = engine->Run(request, eval);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ExpectBitIdentical(unsharded.ValueOrDie().evaluate.answers,
                         sharded.ValueOrDie().evaluate.answers);
    }
  }
}

TEST_F(ShardedMappingTest, ShardedTopKBitIdenticalOnDyadicMasses) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  // k larger than the answer count: the unsharded scan exhausts its
  // mass, so its bounds are the exact probabilities — as are the
  // sharded merge's.
  auto request = Request::TopK(PhoneByAddr("aaa"), 10);
  auto unsharded = engine->Run(request);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  for (int shards : {1, 2, 4}) {
    Engine::EvalOptions eval;
    eval.mapping_shards = shards;
    eval.pool = &pool;
    auto sharded = engine->Run(request, eval);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const auto& a = unsharded.ValueOrDie().top_k.tuples;
    const auto& b = sharded.ValueOrDie().top_k.tuples;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(RowsEqual(a[i].values, b[i].values)) << "row " << i;
      EXPECT_EQ(a[i].lower_bound, b[i].lower_bound) << "row " << i;
      EXPECT_EQ(a[i].upper_bound, b[i].upper_bound) << "row " << i;
    }
  }
}

TEST_F(ShardedMappingTest, ShardedTopKSelectsTrueTopKUnderPruning) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  // Exhaustive ranking oracle: basic's exact answer probabilities.
  auto basic = engine->Run(
      Request::MethodEval(PhoneByAddr("aaa"), Method::kBasic));
  ASSERT_TRUE(basic.ok());
  auto expected = basic.ValueOrDie().evaluate.answers.TopK(2);

  for (int shards : {2, 4}) {
    Engine::EvalOptions eval;
    eval.mapping_shards = shards;
    eval.pool = &pool;
    auto sharded = engine->Run(Request::TopK(PhoneByAddr("aaa"), 2), eval);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const auto& got = sharded.ValueOrDie().top_k.tuples;
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Per-shard scans are complete, so the merged rank cut uses the
      // exact probabilities: rows *and* order match the oracle.
      EXPECT_TRUE(RowsEqual(got[i].values, expected[i].values));
      EXPECT_EQ(got[i].lower_bound, expected[i].probability);
      EXPECT_EQ(got[i].upper_bound, expected[i].probability);
    }
    EXPECT_FALSE(sharded.ValueOrDie().top_k.early_terminated);
  }
}

TEST_F(ShardedMappingTest, ShardedThresholdBitIdenticalOnDyadicMasses) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  // A dyadic threshold below every leaf mass: the unsharded scan runs
  // to exhaustion, bounds are exact on both paths.
  const double tiny = std::ldexp(1.0, -40);
  auto request = Request::Threshold(PhoneByAddr("aaa"), tiny);
  auto unsharded = engine->Run(request);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  for (int shards : {1, 2, 4}) {
    Engine::EvalOptions eval;
    eval.mapping_shards = shards;
    eval.pool = &pool;
    auto sharded = engine->Run(request, eval);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const auto& a = unsharded.ValueOrDie().threshold.tuples;
    const auto& b = sharded.ValueOrDie().threshold.tuples;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(RowsEqual(a[i].values, b[i].values)) << "row " << i;
      EXPECT_EQ(a[i].lower_bound, b[i].lower_bound) << "row " << i;
      EXPECT_EQ(a[i].upper_bound, b[i].upper_bound) << "row " << i;
    }
  }
}

TEST_F(ShardedMappingTest, ShardedThresholdMatchesExactFilter) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  auto basic = engine->Run(
      Request::MethodEval(PhoneByAddr("aaa"), Method::kBasic));
  ASSERT_TRUE(basic.ok());
  const double p = 0.3;
  size_t expected = 0;
  for (const auto& t : basic.ValueOrDie().evaluate.answers.Sorted()) {
    if (t.probability + 1e-12 >= p) ++expected;
  }
  Engine::EvalOptions eval;
  eval.mapping_shards = 4;
  eval.pool = &pool;
  auto sharded = engine->Run(Request::Threshold(PhoneByAddr("aaa"), p), eval);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded.ValueOrDie().threshold.tuples.size(), expected);
  for (const auto& t : sharded.ValueOrDie().threshold.tuples) {
    EXPECT_GE(t.lower_bound + 1e-12, p);
  }
}

TEST_F(ShardedMappingTest, ShardedSetOpBitIdenticalOnDyadicMasses) {
  auto engine = MakeEngine(DyadicMappings());
  ThreadPool pool(3);
  for (SetOpKind kind : {SetOpKind::kUnion, SetOpKind::kExcept}) {
    auto request =
        Request::SetOp(PhoneByAddr("aaa"), PhoneByAddr("hk"), kind);
    auto unsharded = engine->Run(request);
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    for (int shards : {2, 4}) {
      Engine::EvalOptions eval;
      eval.mapping_shards = shards;
      eval.pool = &pool;
      auto sharded = engine->Run(request, eval);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ExpectBitIdentical(unsharded.ValueOrDie().evaluate.answers,
                         sharded.ValueOrDie().evaluate.answers);
    }
  }
}

TEST_F(ShardedMappingTest, RandomizedShardsMatchUnsharded) {
  // Property: for random h, random (non-dyadic) probabilities, and a
  // random shard count, sharded == unsharded within 1e-12 for every
  // request kind — with the shard fan-out actually running on a pool.
  Rng rng(20260730);
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 8; ++iteration) {
    const size_t h = static_cast<size_t>(rng.Uniform(2, 20));
    std::vector<mapping::Mapping> mappings;
    double total = 0.0;
    for (size_t i = 0; i < h; ++i) {
      mapping::Mapping m = ex_.mappings[i % ex_.mappings.size()];
      double w = 0.05 + rng.NextDouble();
      m.set_probability(w);
      m.set_score(w);
      total += w;
      mappings.push_back(std::move(m));
    }
    for (auto& m : mappings) m.set_probability(m.probability() / total);
    auto engine = MakeEngine(std::move(mappings));

    const int shards = static_cast<int>(rng.Uniform(2, 7));
    Engine::EvalOptions eval;
    eval.mapping_shards = shards;
    eval.pool = &pool;

    for (const PlanPtr& q : {PhoneByAddr("aaa"), AddrByPhone()}) {
      for (Method method : {Method::kBasic, Method::kOSharing}) {
        auto request = Request::MethodEval(q, method);
        auto unsharded = engine->Run(request);
        auto sharded = engine->Run(request, eval);
        ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
        ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
        EXPECT_TRUE(sharded.ValueOrDie().evaluate.answers.ApproxEquals(
            unsharded.ValueOrDie().evaluate.answers, 1e-12))
            << "h=" << h << " shards=" << shards;
      }

      // Top-k against the exhaustive oracle (exact probabilities).
      auto basic = engine->Run(Request::MethodEval(q, Method::kBasic));
      ASSERT_TRUE(basic.ok());
      auto expected = basic.ValueOrDie().evaluate.answers.TopK(3);
      auto topk = engine->Run(Request::TopK(q, 3), eval);
      ASSERT_TRUE(topk.ok()) << topk.status().ToString();
      const auto& got = topk.ValueOrDie().top_k.tuples;
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].lower_bound, expected[i].probability, 1e-12);
      }

      // Threshold against the exact filter.
      auto thr = engine->Run(Request::Threshold(q, 0.25), eval);
      ASSERT_TRUE(thr.ok()) << thr.status().ToString();
      size_t over = 0;
      for (const auto& t : basic.ValueOrDie().evaluate.answers.Sorted()) {
        if (t.probability + 1e-12 >= 0.25) ++over;
      }
      EXPECT_EQ(thr.ValueOrDie().threshold.tuples.size(), over);
    }
  }
}

TEST_F(ShardedMappingTest, ServiceFingerprintCoversShardConfig) {
  auto engine = MakeEngine(DyadicMappings());
  service::ServiceOptions unsharded_options;
  unsharded_options.num_threads = 0;
  service::ServiceOptions sharded_options;
  sharded_options.num_threads = 0;
  sharded_options.mapping_shards = 4;
  service::QueryService unsharded(engine.get(), unsharded_options);
  service::QueryService sharded(engine.get(), sharded_options);

  auto request = Request::MethodEval(PhoneByAddr("aaa"), Method::kOSharing);
  // Same engine, same request: the shard configuration alone must
  // separate the cache keys.
  EXPECT_NE(unsharded.Fingerprint(request), sharded.Fingerprint(request));

  auto first = sharded.Submit(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  auto second = sharded.Submit(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);

  auto whole = unsharded.Submit(request);
  ASSERT_TRUE(whole.status.ok());
  // Dyadic masses: the cached sharded answers equal the unsharded ones
  // exactly.
  ExpectBitIdentical(whole.response->evaluate.answers,
                     second.response->evaluate.answers);
}

/// Counts streamed leaves (and completions) to prove streaming still
/// works when the service is configured for sharding.
class CountingSink : public AnswerSink {
 public:
  bool OnAnswer(const std::vector<relational::Row>&, double) override {
    ++leaves_;
    return true;
  }
  void OnComplete(const Status& status) override {
    ok_ = status.ok();
    ++completions_;
  }
  size_t leaves() const { return leaves_; }
  size_t completions() const { return completions_; }
  bool ok() const { return ok_; }

 private:
  size_t leaves_ = 0;
  size_t completions_ = 0;
  bool ok_ = false;
};

TEST_F(ShardedMappingTest, StreamingRequestsBypassSharding) {
  auto engine = MakeEngine(DyadicMappings());
  service::ServiceOptions options;
  options.num_threads = 0;
  options.mapping_shards = 4;
  service::QueryService service(engine.get(), options);

  CountingSink sink;
  auto response = service.Submit(
      Request::MethodEval(PhoneByAddr("aaa"), Method::kOSharing), &sink);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  // The whole-set u-trace streamed its leaves; the final answers match
  // the unsharded evaluation bit for bit (it *was* unsharded).
  EXPECT_GT(sink.leaves(), 0u);
  EXPECT_EQ(sink.completions(), 1u);
  EXPECT_TRUE(sink.ok());
  auto unsharded = engine->Run(
      Request::MethodEval(PhoneByAddr("aaa"), Method::kOSharing));
  ASSERT_TRUE(unsharded.ok());
  ExpectBitIdentical(unsharded.ValueOrDie().evaluate.answers,
                     response.response->evaluate.answers);

  // Regression: the streaming evaluation ran whole-set, so its
  // response must NOT have been cached under this service's
  // shard-folded fingerprint — the next non-streaming submission has
  // to evaluate (sharded), not alias the unsharded answers.
  auto resubmit = service.Submit(
      Request::MethodEval(PhoneByAddr("aaa"), Method::kOSharing));
  ASSERT_TRUE(resubmit.status.ok());
  EXPECT_FALSE(resubmit.cache_hit);
}

TEST_F(ShardedMappingTest, ConcurrentShardedSubmissionsShareOneStore) {
  // TSan coverage: concurrent sharded evaluations fan their shards out
  // on the shared pool while all of them hit one OperatorStore under
  // shard-local key epochs.
  auto engine = MakeEngine(DyadicMappings());
  service::ServiceOptions options;
  options.num_threads = 4;
  options.mapping_shards = 3;
  service::QueryService service(engine.get(), options);

  std::vector<std::future<service::QueryResponse>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const char* addr : {"aaa", "hk", "bbb"}) {
      futures.push_back(service.SubmitAsync(
          Request::MethodEval(PhoneByAddr(addr), Method::kOSharing)));
    }
    futures.push_back(service.SubmitAsync(Request::TopK(AddrByPhone(), 2)));
    futures.push_back(
        service.SubmitAsync(Request::Threshold(PhoneByAddr("aaa"), 0.25)));
  }
  for (auto& future : futures) {
    auto response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }

  // Repeated sharded rounds reuse shard-local store entries.
  auto stats = service.operator_store_stats();
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace core
}  // namespace urm
