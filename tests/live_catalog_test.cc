/// \file live_catalog_test.cc
/// Live catalogs under traffic: the delta-ingest subsystem
/// (relational::Catalog::ApplyDelta + live::IngestController) and its
/// delta-aware cache invalidation, proven by a differential
/// consistency harness.
///
/// Three contracts under test:
///  * **differential consistency** — random delta batches applied
///    incrementally (with queries interleaved between batches, hitting
///    and missing the answer cache) leave the serving stack
///    bit-identical to a fresh engine rebuilt from the final state,
///    for all four request kinds, across row vs columnar backing and
///    S ∈ {1, 4} mapping shards;
///  * **delta-aware fencing** — a delta fences exactly the cached
///    answers whose source relations it touched: entries over
///    untouched relations keep serving hits (the full-fence control
///    arm drops them), and a fenced entry is never served again;
///  * **batch encoding** — a delta batch (and the batched AddRows
///    fixture path) re-encodes each touched relation's columnar
///    backing exactly once, never once per row.
///
/// The ConcurrentIngestStress case runs under TSan in CI alongside the
/// service suites: concurrent ingest, sync/async/streaming queries,
/// mapping hot-reconfiguration, metric scrapes, and stats reads, with
/// every response checked against the set of answers reachable from
/// some prefix of the delta sequence under some active mapping set.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algebra/expr.h"
#include "columnar/columnar_relation.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "live/ingest.h"
#include "obs/metrics.h"
#include "relational/catalog.h"
#include "relational/delta.h"
#include "relational/relation.h"
#include "service/query_service.h"
#include "tests/paper_fixture.h"

namespace urm {
namespace live {
namespace {

using algebra::CmpOp;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;
using reformulation::AnswerSet;
using relational::DeltaBatch;
using relational::DeltaOp;
using relational::DeltaOpKind;
using relational::Relation;
using relational::Row;
using relational::RowsEqual;

// ---------------------------------------------------------------------------
// Plans over the paper fixture's target schema.

/// π_phone σ_addr=c Person (the paper's qa for c = 'aaa').
PlanPtr PhoneByAddr(const std::string& c) {
  return MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, c)),
      {"person.phone"});
}

/// π_addr σ_phone='123' Person (the paper's q0).
PlanPtr AddrByPhone() {
  return MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123")),
      {"person.addr"});
}

/// π_nation σ_addr=c Person — its footprint spans customer AND nation
/// (Person.nation maps from nation.nname), unlike the two above which
/// read customer only.
PlanPtr NationByAddr(const std::string& c) {
  return MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, c)),
      {"person.nation"});
}

/// One request of every kind (the differential harness' probe set).
std::vector<core::Request> AllKindRequests() {
  std::vector<core::Request> out;
  out.push_back(
      core::Request::MethodEval(PhoneByAddr("aaa"), core::Method::kOSharing));
  out.push_back(core::Request::MethodEval(AddrByPhone(), core::Method::kBasic));
  out.push_back(core::Request::MethodEval(NationByAddr("hk"),
                                          core::Method::kQSharing));
  out.push_back(core::Request::TopK(PhoneByAddr("aaa"), 10));
  out.push_back(core::Request::SetOp(PhoneByAddr("aaa"), AddrByPhone(),
                                     core::SetOpKind::kUnion));
  out.push_back(
      core::Request::Threshold(PhoneByAddr("aaa"), std::ldexp(1.0, -40)));
  return out;
}

// ---------------------------------------------------------------------------
// Bit-identity comparison (same contract as columnar_test).

void ExpectAnswersBitIdentical(const AnswerSet& a, const AnswerSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.null_probability(), b.null_probability());
  auto sa = a.Sorted();
  auto sb = b.Sorted();
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(RowsEqual(sa[i].values, sb[i].values)) << "row " << i;
    EXPECT_EQ(sa[i].probability, sb[i].probability) << "row " << i;
  }
}

void ExpectResponsesBitIdentical(const core::Response& a,
                                 const core::Response& b) {
  ASSERT_EQ(a.kind, b.kind);
  switch (a.kind) {
    case core::RequestKind::kTopK: {
      ASSERT_EQ(a.top_k.tuples.size(), b.top_k.tuples.size());
      for (size_t i = 0; i < a.top_k.tuples.size(); ++i) {
        EXPECT_TRUE(
            RowsEqual(a.top_k.tuples[i].values, b.top_k.tuples[i].values));
        EXPECT_EQ(a.top_k.tuples[i].lower_bound,
                  b.top_k.tuples[i].lower_bound);
        EXPECT_EQ(a.top_k.tuples[i].upper_bound,
                  b.top_k.tuples[i].upper_bound);
      }
      break;
    }
    case core::RequestKind::kThreshold: {
      ASSERT_EQ(a.threshold.tuples.size(), b.threshold.tuples.size());
      for (size_t i = 0; i < a.threshold.tuples.size(); ++i) {
        EXPECT_TRUE(RowsEqual(a.threshold.tuples[i].values,
                              b.threshold.tuples[i].values));
        EXPECT_EQ(a.threshold.tuples[i].lower_bound,
                  b.threshold.tuples[i].lower_bound);
        EXPECT_EQ(a.threshold.tuples[i].upper_bound,
                  b.threshold.tuples[i].upper_bound);
      }
      break;
    }
    default:
      ExpectAnswersBitIdentical(a.evaluate.answers, b.evaluate.answers);
      break;
  }
}

/// Canonical string form of a response — exact, including the bit
/// pattern of every probability/bound — so the stress test can check
/// set membership across threads without gtest assertions racing.
std::string HexBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

std::string CanonRow(const Row& row) {
  std::string out = "(";
  for (const relational::Value& v : row) {
    switch (v.type()) {
      case relational::ValueType::kNull: out += "@null"; break;
      case relational::ValueType::kInt64:
        out += std::to_string(v.AsInt64());
        break;
      case relational::ValueType::kDouble: out += HexBits(v.AsDouble()); break;
      case relational::ValueType::kString: out += v.AsString(); break;
    }
    out += "|";
  }
  return out + ")";
}

std::string Canon(const core::Response& response) {
  std::string out = core::RequestKindName(response.kind);
  switch (response.kind) {
    case core::RequestKind::kTopK:
      for (const auto& t : response.top_k.tuples) {
        out += CanonRow(t.values) + HexBits(t.lower_bound) +
               HexBits(t.upper_bound);
      }
      break;
    case core::RequestKind::kThreshold:
      for (const auto& t : response.threshold.tuples) {
        out += CanonRow(t.values) + HexBits(t.lower_bound) +
               HexBits(t.upper_bound);
      }
      break;
    default: {
      out += HexBits(response.evaluate.answers.null_probability());
      for (const auto& t : response.evaluate.answers.Sorted()) {
        out += CanonRow(t.values) + HexBits(t.probability);
      }
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shadow model + random batches.

/// Row images per relation — the reference state the harness mutates in
/// lockstep with the live catalog, mirroring ApplyDelta's exact
/// semantics (insert appends; update/delete affect every equal row; row
/// order is preserved) so a rebuild is bit-identical, not just
/// set-equal.
using Shadow = std::map<std::string, std::vector<Row>>;

void ApplyToShadow(const DeltaBatch& batch, Shadow* shadow) {
  for (const DeltaOp& op : batch.ops) {
    std::vector<Row>& rows = (*shadow)[op.relation];
    switch (op.kind) {
      case DeltaOpKind::kInsert:
        rows.push_back(op.row);
        break;
      case DeltaOpKind::kUpdate:
        for (Row& row : rows) {
          if (RowsEqual(row, op.row)) row = op.new_row;
        }
        break;
      case DeltaOpKind::kDelete:
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [&op](const Row& row) {
                                    return RowsEqual(row, op.row);
                                  }),
                   rows.end());
        break;
    }
  }
}

class LiveCatalogTest : public ::testing::Test {
 protected:
  LiveCatalogTest() : ex_(urm::testing::MakePaperExample()) {}

  /// 8 mappings at exactly-representable probability 2^-3 so every
  /// shard renormalization is exact and S=1 == S=4 bitwise.
  std::vector<mapping::Mapping> DyadicMappings() const {
    std::vector<mapping::Mapping> out;
    for (size_t i = 0; i < 8; ++i) {
      mapping::Mapping m = ex_.mappings[i % ex_.mappings.size()];
      m.set_probability(0.125);
      m.set_score(0.125);
      out.push_back(std::move(m));
    }
    return out;
  }

  Shadow InitialShadow() const {
    Shadow shadow;
    for (const auto& name : ex_.catalog.Names()) {
      shadow[name] = ex_.catalog.Get(name).ValueOrDie()->rows();
    }
    return shadow;
  }

  /// A catalog holding `shadow`'s rows, columnar-encoded or pure-row.
  relational::Catalog CatalogFrom(const Shadow& shadow, bool columnar) const {
    relational::Catalog catalog;
    catalog.set_auto_encode(columnar);
    for (const auto& [name, rows] : shadow) {
      auto schema = ex_.catalog.Get(name).ValueOrDie()->schema();
      catalog.Put(name,
                  std::make_shared<const Relation>(std::move(schema), rows));
    }
    return catalog;
  }

  std::unique_ptr<core::Engine> MakeEngine(
      relational::Catalog catalog,
      std::vector<mapping::Mapping> mappings) const {
    core::Engine::Options options;
    options.strategy = osharing::StrategyKind::kSEF;
    return core::Engine::FromParts(std::move(catalog), ex_.source_schema,
                                   ex_.target_schema, std::move(mappings),
                                   options);
  }

  /// One random batch against `shadow`'s current state: 1-5 ops over
  /// one relation (a realistic trickle touches one relation per
  /// batch), mixing inserts, updates, and deletes. The shadow is NOT
  /// mutated — callers apply the batch to both sides themselves.
  DeltaBatch RandomBatch(std::mt19937* rng, const Shadow& shadow) {
    static const char* kPhones[] = {"123", "456", "789", "555"};
    static const char* kAddrs[] = {"aaa", "bbb", "hk", "ccc"};
    static const char* kAmounts[] = {"100", "250", "77"};
    static const char* kNations[] = {"HongKong", "China", "Norway"};
    auto pick = [rng](auto& pool) {
      return pool[(*rng)() % (sizeof(pool) / sizeof(pool[0]))];
    };
    static const char* kRelations[] = {"customer", "customer", "c_order",
                                       "nation"};
    const std::string relation = pick(kRelations);

    // Ops within the batch see earlier ops' effects (ApplyDelta applies
    // them in order), so track a local copy for update/delete images.
    std::vector<Row> rows = shadow.count(relation) > 0
                                ? shadow.at(relation)
                                : std::vector<Row>();
    DeltaBatch batch;
    const size_t num_ops = 1 + (*rng)() % 5;
    for (size_t i = 0; i < num_ops; ++i) {
      DeltaOp op;
      op.relation = relation;
      const uint32_t dice = (*rng)() % 4;
      if (dice == 0 || rows.empty()) {
        op.kind = DeltaOpKind::kInsert;
        const std::string id = std::to_string(++serial_);
        if (relation == "customer") {
          op.row = {"c" + id,        "Name" + id,   pick(kPhones),
                    pick(kPhones),   pick(kPhones), pick(kAddrs),
                    pick(kAddrs),    ((*rng)() % 2) ? "n1" : "n2"};
        } else if (relation == "c_order") {
          op.row = {"o" + id, "t" + std::to_string(1 + (*rng)() % 3),
                    pick(kAmounts)};
        } else {
          op.row = {"n" + id, pick(kNations)};
        }
        rows.push_back(op.row);
      } else if (dice == 1) {
        op.kind = DeltaOpKind::kUpdate;
        op.row = rows[(*rng)() % rows.size()];
        op.new_row = op.row;
        // Mutate one non-key cell (keep cell 0, the id-ish column, so
        // updates often leave near-duplicates for RowsEqual to group).
        const size_t cell = 1 + (*rng)() % (op.row.size() - 1);
        if (relation == "customer") {
          op.new_row[cell] = relational::Value(
              cell >= 5 && cell <= 6 ? pick(kAddrs) : pick(kPhones));
        } else if (relation == "c_order") {
          op.new_row[cell] = relational::Value(pick(kAmounts));
        } else {
          op.new_row[cell] = relational::Value(pick(kNations));
        }
        for (Row& row : rows) {
          if (RowsEqual(row, op.row)) row = op.new_row;
        }
      } else {
        op.kind = DeltaOpKind::kDelete;
        op.row = rows[(*rng)() % rows.size()];
        rows.erase(std::remove_if(rows.begin(), rows.end(),
                                  [&op](const Row& row) {
                                    return RowsEqual(row, op.row);
                                  }),
                   rows.end());
      }
      batch.ops.push_back(std::move(op));
    }
    return batch;
  }

  urm::testing::PaperExample ex_;
  uint64_t serial_ = 0;
};

// ---------------------------------------------------------------------------
// Differential consistency: incremental == rebuild, bitwise.

TEST_F(LiveCatalogTest, DifferentialIncrementalVsRebuild) {
  const std::vector<core::Request> requests = AllKindRequests();
  for (const bool columnar : {false, true}) {
    SCOPED_TRACE(columnar ? "columnar backing" : "row backing");
    std::mt19937 rng(20260809u);
    Shadow shadow = InitialShadow();
    auto live = MakeEngine(CatalogFrom(shadow, columnar), DyadicMappings());
    ASSERT_EQ(columnar,
              live->catalog().Get("customer").ValueOrDie()->ColumnarIfEncoded()
                  != nullptr);

    service::ServiceOptions service_options;
    service_options.num_threads = 2;
    service_options.enable_metrics = false;
    service::QueryService service(live.get(), service_options);
    IngestOptions ingest_options;
    ingest_options.enable_metrics = false;
    IngestController controller(live.get(), &service, ingest_options);

    uint64_t last_epoch = live->data_epoch();
    for (int b = 0; b < 8; ++b) {
      // Interleaved traffic: twice per request, so the second Submit
      // can hit the cache — and every response (cached or fresh) must
      // be bit-identical to a direct evaluation of the current state.
      for (int rep = 0; rep < 2; ++rep) {
        for (const core::Request& request : requests) {
          auto response = service.Submit(request);
          ASSERT_TRUE(response.status.ok()) << response.status.ToString();
          auto direct = live->Run(request);
          ASSERT_TRUE(direct.ok()) << direct.status().ToString();
          ExpectResponsesBitIdentical(*response.response,
                                      direct.ValueOrDie());
        }
      }
      DeltaBatch batch = RandomBatch(&rng, shadow);
      ApplyToShadow(batch, &shadow);
      auto report = controller.Apply(batch);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report.ValueOrDie().data_epoch, last_epoch + 1);
      last_epoch = report.ValueOrDie().data_epoch;
    }
    // The interleave genuinely exercised the cache.
    EXPECT_GT(service.cache_stats().hits, 0u);
    EXPECT_GT(service.cache_stats().relation_fenced, 0u);

    // Rebuild from the final shadow state; the incrementally-updated
    // engine must be bit-identical at S ∈ {1, 4} for all four kinds.
    auto rebuilt =
        MakeEngine(CatalogFrom(shadow, columnar), DyadicMappings());
    ThreadPool pool(4);
    for (const core::Request& request : requests) {
      for (const int shards : {1, 4}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        core::Engine::EvalOptions eval;
        eval.mapping_shards = shards;
        eval.pool = &pool;
        auto incremental = live->Run(request, eval);
        auto fresh = rebuilt->Run(request, eval);
        ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        ExpectResponsesBitIdentical(incremental.ValueOrDie(),
                                    fresh.ValueOrDie());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Delta-aware fencing granularity.

TEST_F(LiveCatalogTest, DeltaFencesOnlyTouchedSourceRelations) {
  auto engine = MakeEngine(CatalogFrom(InitialShadow(), true),
                           DyadicMappings());
  service::ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.enable_metrics = false;
  service::QueryService service(engine.get(), service_options);
  IngestOptions ingest_options;
  ingest_options.enable_metrics = false;
  IngestController controller(engine.get(), &service, ingest_options);

  // Footprint {customer} vs {customer, nation}.
  auto customer_only =
      core::Request::MethodEval(PhoneByAddr("aaa"), core::Method::kOSharing);
  auto customer_and_nation =
      core::Request::MethodEval(NationByAddr("hk"), core::Method::kBasic);
  ASSERT_FALSE(service.Submit(customer_only).cache_hit);
  ASSERT_FALSE(service.Submit(customer_and_nation).cache_hit);
  EXPECT_TRUE(service.Submit(customer_only).cache_hit);

  // A nation delta fences the nation-reading entry only.
  DeltaBatch nation_batch;
  nation_batch.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "nation", {"n7", "Norway"}, {}});
  auto nation_report = controller.Apply(nation_batch);
  ASSERT_TRUE(nation_report.ok()) << nation_report.status().ToString();
  EXPECT_EQ(nation_report.ValueOrDie().fenced_answers, 1u);
  EXPECT_TRUE(service.Submit(customer_only).cache_hit);
  EXPECT_FALSE(service.Submit(customer_and_nation).cache_hit);

  // A customer delta fences both (every probe reads customer) — and
  // the refreshed entries match a fresh engine over the new state.
  DeltaBatch customer_batch;
  customer_batch.ops.push_back(DeltaOp{
      DeltaOpKind::kInsert, "customer",
      {"c9", "Dora", "123", "456", "555", "aaa", "hk", "n1"}, {}});
  auto customer_report = controller.Apply(customer_batch);
  ASSERT_TRUE(customer_report.ok());
  EXPECT_EQ(customer_report.ValueOrDie().fenced_answers, 2u);
  auto refreshed = service.Submit(customer_only);
  EXPECT_FALSE(refreshed.cache_hit);
  Shadow shadow = InitialShadow();
  ApplyToShadow(nation_batch, &shadow);
  ApplyToShadow(customer_batch, &shadow);
  auto rebuilt = MakeEngine(CatalogFrom(shadow, true), DyadicMappings());
  auto fresh = rebuilt->Run(customer_only);
  ASSERT_TRUE(fresh.ok());
  ExpectResponsesBitIdentical(*refreshed.response, fresh.ValueOrDie());
  EXPECT_EQ(controller.stats().batches, 2u);
  EXPECT_EQ(controller.stats().data_epoch, 2u);
}

TEST_F(LiveCatalogTest, FullFenceControlArmDropsUntouchedEntries) {
  auto engine = MakeEngine(CatalogFrom(InitialShadow(), true),
                           DyadicMappings());
  service::ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.enable_metrics = false;
  service_options.delta_aware_invalidation = false;
  service::QueryService service(engine.get(), service_options);
  IngestOptions ingest_options;
  ingest_options.enable_metrics = false;
  IngestController controller(engine.get(), &service, ingest_options);

  auto customer_only =
      core::Request::MethodEval(PhoneByAddr("aaa"), core::Method::kOSharing);
  ASSERT_FALSE(service.Submit(customer_only).cache_hit);
  EXPECT_TRUE(service.Submit(customer_only).cache_hit);

  // Under full-fence, even an untouched-relation delta drops the entry.
  DeltaBatch nation_batch;
  nation_batch.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "nation", {"n8", "Norway"}, {}});
  auto report = controller.Apply(nation_batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.ValueOrDie().fenced_answers, 1u);
  EXPECT_FALSE(service.Submit(customer_only).cache_hit);
}

TEST_F(LiveCatalogTest, ApplyRejectsMalformedBatchesAtomically) {
  auto engine = MakeEngine(CatalogFrom(InitialShadow(), true),
                           DyadicMappings());
  service::ServiceOptions service_options;
  service_options.num_threads = 0;
  service_options.enable_metrics = false;
  service::QueryService service(engine.get(), service_options);
  IngestOptions ingest_options;
  ingest_options.enable_metrics = false;
  ingest_options.max_batch_ops = 4;
  IngestController controller(engine.get(), &service, ingest_options);

  // Unknown relation: nothing applied, even for the valid leading op.
  DeltaBatch unknown;
  unknown.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "nation", {"n9", "Norway"}, {}});
  unknown.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "no_such_relation", {"x"}, {}});
  auto r1 = controller.Apply(unknown);
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->data_epoch(), 0u);
  EXPECT_EQ(engine->catalog().Get("nation").ValueOrDie()->num_rows(), 2u);

  // Arity mismatch.
  DeltaBatch bad_arity;
  bad_arity.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "nation", {"n9"}, {}});
  auto r2 = controller.Apply(bad_arity);
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Oversized batch.
  DeltaBatch oversized;
  for (int i = 0; i < 5; ++i) {
    oversized.ops.push_back(DeltaOp{
        DeltaOpKind::kInsert, "nation", {"n" + std::to_string(10 + i),
                                         "Norway"}, {}});
  }
  auto r3 = controller.Apply(oversized);
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->data_epoch(), 0u);
  EXPECT_EQ(controller.stats().rejected_batches, 3u);
  EXPECT_EQ(controller.stats().batches, 0u);
}

// ---------------------------------------------------------------------------
// Batch encoding: one re-encode per touched relation per batch.

TEST_F(LiveCatalogTest, DeltaBatchReencodesEachTouchedRelationOnce) {
  auto shadow = InitialShadow();
  relational::Catalog catalog = CatalogFrom(shadow, true);

  DeltaBatch batch;
  for (int i = 0; i < 32; ++i) {
    batch.ops.push_back(DeltaOp{
        DeltaOpKind::kInsert, "customer",
        {"c" + std::to_string(100 + i), "N", "123", "456", "555", "aaa",
         "hk", "n1"},
        {}});
  }
  const uint64_t before = columnar::ColumnarRelation::EncodeCallsForTest();
  auto applied = catalog.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  // 32 inserted rows, ONE re-encode — never per row.
  EXPECT_EQ(columnar::ColumnarRelation::EncodeCallsForTest() - before, 1u);

  // A batch spanning two relations re-encodes each once.
  DeltaBatch two;
  two.ops.push_back(DeltaOp{
      DeltaOpKind::kInsert, "customer",
      {"c200", "N", "123", "456", "555", "aaa", "hk", "n1"}, {}});
  two.ops.push_back(
      DeltaOp{DeltaOpKind::kInsert, "nation", {"n20", "Norway"}, {}});
  const uint64_t before_two = columnar::ColumnarRelation::EncodeCallsForTest();
  ASSERT_TRUE(catalog.ApplyDelta(two).ok());
  EXPECT_EQ(columnar::ColumnarRelation::EncodeCallsForTest() - before_two, 2u);

  // A row-backed catalog never encodes on delta.
  relational::Catalog rows_only = CatalogFrom(shadow, false);
  const uint64_t before_rows = columnar::ColumnarRelation::EncodeCallsForTest();
  ASSERT_TRUE(rows_only.ApplyDelta(batch).ok());
  EXPECT_EQ(columnar::ColumnarRelation::EncodeCallsForTest() - before_rows, 0u);
}

TEST(BatchAppendTest, AddRowsValidatesAllOrNothingAndEncodesOnce) {
  relational::RelationSchema schema;
  ASSERT_TRUE(schema
                  .AddColumn(relational::ColumnDef{
                      "t.id", relational::ValueType::kString})
                  .ok());
  ASSERT_TRUE(schema
                  .AddColumn(relational::ColumnDef{
                      "t.v", relational::ValueType::kString})
                  .ok());
  Relation rel(schema);
  // A bad row anywhere in the batch appends nothing.
  Status bad = rel.AddRows({{"a", "1"}, {"b"}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(rel.num_rows(), 0u);

  std::vector<Row> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({"id" + std::to_string(i), "v"});
  }
  ASSERT_TRUE(rel.AddRows(std::move(rows)).ok());
  EXPECT_EQ(rel.num_rows(), 64u);
  const uint64_t before = columnar::ColumnarRelation::EncodeCallsForTest();
  ASSERT_NE(rel.Columnar(), nullptr);
  EXPECT_EQ(columnar::ColumnarRelation::EncodeCallsForTest() - before, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent ingest + queries + reconfiguration + scrapes (TSan).

/// Collects streamed leaves; the completion status is checked by the
/// submitting thread through the response.
class CollectingSink : public core::AnswerSink {
 public:
  bool OnAnswer(const std::vector<Row>& rows, double probability) override {
    leaves_ += rows.size();
    (void)probability;
    return true;
  }
  void OnComplete(const Status& status) override { complete_ = status.ok(); }
  size_t leaves() const { return leaves_; }
  bool complete() const { return complete_; }

 private:
  size_t leaves_ = 0;
  bool complete_ = false;
};

TEST_F(LiveCatalogTest, ConcurrentIngestStress) {
  // Two mapping sets the reconfiguration thread alternates between:
  // the 8 dyadic mappings, and their first 4 reweighted to 0.25 each
  // (still exact in IEEE double).
  const std::vector<mapping::Mapping> set_a = DyadicMappings();
  std::vector<mapping::Mapping> set_b(set_a.begin(), set_a.begin() + 4);
  for (mapping::Mapping& m : set_b) m.set_probability(0.25);

  // The deterministic delta sequence (a customer trickle) and the full
  // table of answers reachable from (prefix state, mapping set): every
  // concurrent response must be one of them, and after the run the
  // stack must answer exactly from the final state — a fenced entry
  // served stale, a torn catalog read, or a half-applied batch all
  // surface as a canon string outside the table.
  constexpr int kBatches = 6;
  std::mt19937 rng(7u);
  std::vector<DeltaBatch> batches;
  std::vector<Shadow> prefixes;  // prefixes[k] = state after k batches
  Shadow shadow = InitialShadow();
  prefixes.push_back(shadow);
  for (int k = 0; k < kBatches; ++k) {
    DeltaBatch batch;
    while (batch.ops.empty() ||
           batch.ops.front().relation != "customer") {
      batch = RandomBatch(&rng, shadow);
    }
    ApplyToShadow(batch, &shadow);
    batches.push_back(batch);
    prefixes.push_back(shadow);
  }
  const std::vector<core::Request> requests = AllKindRequests();
  std::set<std::string> reachable;
  std::vector<std::string> final_canon;  // final state under set_a
  const std::vector<std::vector<mapping::Mapping>> mapping_sets = {set_a,
                                                                   set_b};
  for (size_t s = 0; s < mapping_sets.size(); ++s) {
    for (size_t k = 0; k < prefixes.size(); ++k) {
      auto engine = MakeEngine(CatalogFrom(prefixes[k], true),
                               mapping_sets[s]);
      for (const core::Request& request : requests) {
        auto result = engine->Run(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::string canon = Canon(result.ValueOrDie());
        if (s == 0 && k + 1 == prefixes.size()) {
          final_canon.push_back(canon);
        }
        reachable.insert(std::move(canon));
      }
    }
  }
  ASSERT_EQ(final_canon.size(), requests.size());

  obs::Registry registry;
  auto live = MakeEngine(CatalogFrom(prefixes[0], true), set_a);
  service::ServiceOptions service_options;
  service_options.num_threads = 3;
  service_options.metrics_registry = &registry;
  service::QueryService service(live.get(), service_options);
  IngestOptions ingest_options;
  ingest_options.metrics_registry = &registry;
  IngestController controller(live.get(), &service, ingest_options);

  std::atomic<bool> done{false};
  std::atomic<size_t> checked{0};
  std::atomic<size_t> mismatches{0};
  auto check = [&](const service::QueryResponse& response) {
    if (!response.status.ok() || response.response == nullptr) {
      mismatches.fetch_add(1);
      return;
    }
    if (reachable.count(Canon(*response.response)) == 0) {
      mismatches.fetch_add(1);
    }
    checked.fetch_add(1);
  };

  std::vector<std::thread> threads;
  // Ingest + reconfiguration driver.
  threads.emplace_back([&] {
    for (int k = 0; k < kBatches; ++k) {
      auto report = controller.Apply(batches[k]);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      if (k == 1) {
        EXPECT_TRUE(controller.ReconfigureMappings(set_b).ok());
      }
      if (k == 3) {
        EXPECT_TRUE(controller.ReconfigureMappings(set_a).ok());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true);
  });
  // Synchronous submitters.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 local(100u + static_cast<uint32_t>(t));
      for (int i = 0; i < 60; ++i) {
        check(service.Submit(requests[local() % requests.size()]));
      }
    });
  }
  // Async submitter (futures + completion callbacks).
  threads.emplace_back([&] {
    std::mt19937 local(200u);
    for (int i = 0; i < 30; ++i) {
      auto future =
          service.SubmitAsync(requests[local() % requests.size()]);
      check(future.get());
    }
  });
  // Streaming submitter.
  threads.emplace_back([&] {
    std::mt19937 local(300u);
    for (int i = 0; i < 20; ++i) {
      CollectingSink sink;
      auto response = service.Submit(requests[local() % requests.size()],
                                     &sink);
      EXPECT_TRUE(sink.complete());
      check(response);
    }
  });
  // Metric scrapes + stats reads race the whole stack.
  threads.emplace_back([&] {
    while (!done.load()) {
      EXPECT_FALSE(registry.ExposeText().empty());
      (void)service.cache_stats();
      (void)service.operator_store_stats();
      (void)service.pool_stats();
      (void)controller.stats();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(controller.stats().batches, static_cast<size_t>(kBatches));
  EXPECT_EQ(live->data_epoch(), static_cast<uint64_t>(kBatches));

  // Strict sequential consistency at quiescence: with all deltas
  // applied and set_a active, every request answers exactly from the
  // final state — a surviving stale cache entry would fail here.
  for (size_t i = 0; i < requests.size(); ++i) {
    auto response = service.Submit(requests[i]);
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(Canon(*response.response), final_canon[i]) << "request " << i;
  }
}

}  // namespace
}  // namespace live
}  // namespace urm
