/// \file edge_test.cc
/// Edge cases and failure injection across the stack: degenerate
/// mapping sets, empty results, multi-relation covers (reformulation
/// Cases 2/3), type-mismatched predicates, and the o-sharing extension
/// path (a selection forcing a new covering relation into an existing
/// intermediate state).

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/engine.h"
#include "osharing/osharing.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"
#include "tests/paper_fixture.h"
#include "topk/topk.h"

namespace urm {
namespace {

using algebra::AggKind;
using algebra::CmpOp;
using algebra::MakeAggregate;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : ex_(testing::MakePaperExample()) {}

  reformulation::TargetQueryInfo Analyze(const PlanPtr& q) {
    auto info = reformulation::AnalyzeTargetQuery(q, ex_.target_schema);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.ValueOrDie();
  }

  testing::PaperExample ex_;
};

TEST_F(EdgeTest, NoMatchSelectionYieldsPureTheta) {
  PlanPtr q = MakeSelect(
      MakeScan("Person", "person"),
      Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "no-such"));
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  ASSERT_TRUE(basic.ok());
  EXPECT_EQ(basic.ValueOrDie().answers.size(), 0u);
  EXPECT_NEAR(basic.ValueOrDie().answers.null_probability(), 1.0, 1e-12);

  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(oshare.ok());
  EXPECT_NEAR(oshare.ValueOrDie().answers.null_probability(), 1.0, 1e-12);
}

TEST_F(EdgeTest, CountOfEmptySelectionIsZeroNotTheta) {
  PlanPtr q = MakeAggregate(
      MakeSelect(
          MakeScan("Person", "person"),
          Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "no-such")),
      AggKind::kCount);
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(basic.ok() && oshare.ok());
  // Every mapping yields COUNT = 0 -> single tuple (0) with p = 1.
  ASSERT_EQ(basic.ValueOrDie().answers.size(), 1u);
  EXPECT_EQ(basic.ValueOrDie().answers.Sorted()[0].values[0],
            relational::Value(0));
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers));
}

TEST_F(EdgeTest, SingleMappingSetBehavesDeterministically) {
  std::vector<mapping::Mapping> one = {ex_.mappings[0]};
  one[0].set_probability(1.0);
  PlanPtr q = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "aaa")),
      {"person.phone"});
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(one),
                                   ex_.catalog, reformulator);
  auto oshare = osharing::RunOSharing(info, one, ex_.catalog);
  ASSERT_TRUE(basic.ok() && oshare.ok());
  EXPECT_EQ(basic.ValueOrDie().answers.size(), 2u);  // 123, 456
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers));
}

TEST_F(EdgeTest, EmptyMappingSetProducesEmptyAnswers) {
  std::vector<mapping::Mapping> none;
  PlanPtr q = MakeSelect(
      MakeScan("Person", "person"),
      Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  auto info = Analyze(q);
  auto oshare = osharing::RunOSharing(info, none, ex_.catalog);
  ASSERT_TRUE(oshare.ok()) << oshare.status().ToString();
  EXPECT_EQ(oshare.ValueOrDie().answers.size(), 0u);
  EXPECT_DOUBLE_EQ(oshare.ValueOrDie().answers.null_probability(), 0.0);
}

TEST_F(EdgeTest, MultiRelationCoverCrossesSourceRelations) {
  // phone lives in customer, nation in the nation relation: the cover
  // is customer × nation (reformulation Case 3), and the answer pairs
  // every matching customer row with every matching nation row.
  PlanPtr q = MakeScan("Person", "person");
  q = MakeSelect(q,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  q = MakeSelect(q, Predicate::AttrCmpValue("person.nation", CmpOp::kEq,
                                            "HongKong"));
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  ASSERT_TRUE(basic.ok()) << basic.status().ToString();
  // m1..m4 map phone/nation (m5 lacks nation -> θ gets 0.1).
  EXPECT_NEAR(basic.ValueOrDie().answers.null_probability(), 0.1, 1e-12);
  ASSERT_GE(basic.ValueOrDie().answers.size(), 1u);

  // o-sharing reaches the same result through the Case-2 extension
  // path: the first selection materializes customer, the second adds
  // the nation relation to the same group.
  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(oshare.ok()) << oshare.status().ToString();
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers))
      << "basic:\n" << basic.ValueOrDie().answers.ToString()
      << "o-sharing:\n" << oshare.ValueOrDie().answers.ToString();
}

TEST_F(EdgeTest, CountOverMultiRelationCoverMultiplies) {
  PlanPtr q = MakeScan("Person", "person");
  q = MakeSelect(q,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "456"));
  q = MakeSelect(q, Predicate::AttrCmpValue("person.nation", CmpOp::kEq,
                                            "HongKong"));
  q = MakeAggregate(q, AggKind::kCount);
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(basic.ok() && oshare.ok());
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers));
  // Under m1/m2: σophone='456' -> {t2,t3}; σnname='HongKong' -> 1 row;
  // COUNT = 2×1 = 2.
  bool found_two = false;
  for (const auto& t : basic.ValueOrDie().answers.Sorted()) {
    if (t.values[0] == relational::Value(2)) found_two = true;
  }
  EXPECT_TRUE(found_two);
}

TEST_F(EdgeTest, TypeMismatchedConstantNeverMatches) {
  // phone values are strings; an integer constant matches nothing.
  PlanPtr q = MakeSelect(MakeScan("Person", "person"),
                         Predicate::AttrCmpValue("person.phone",
                                                 CmpOp::kEq, 123));
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  ASSERT_TRUE(basic.ok());
  EXPECT_EQ(basic.ValueOrDie().answers.size(), 0u);
  EXPECT_NEAR(basic.ValueOrDie().answers.null_probability(), 1.0, 1e-12);
}

TEST_F(EdgeTest, SumOverStringColumnEvaluatesToZero) {
  // Force SUM over an attribute every mapping matches to a string
  // column; the tolerant SUM semantics yield 0 rather than an error.
  PlanPtr q = MakeAggregate(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "aaa")),
      AggKind::kSum, "person.pname");
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  ASSERT_TRUE(basic.ok()) << basic.status().ToString();
  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(oshare.ok());
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers));
}

TEST_F(EdgeTest, ProbabilitiesNeedNotSumToOneAcrossTuples) {
  // Marginals can exceed 1 in total (several tuples per mapping);
  // within one tuple they never exceed 1.
  PlanPtr q = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "hk")),
      {"person.pname"});
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  ASSERT_TRUE(basic.ok());
  for (const auto& t : basic.ValueOrDie().answers.Sorted()) {
    EXPECT_GT(t.probability, 0.0);
    EXPECT_LE(t.probability, 1.0 + 1e-12);
  }
}

TEST_F(EdgeTest, TopKOnPureThetaQueryReturnsNothing) {
  PlanPtr q = MakeSelect(
      MakeScan("Person", "person"),
      Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "no-such"));
  auto info = Analyze(q);
  auto topk = topk::RunTopK(info, ex_.mappings, ex_.catalog, 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk.ValueOrDie().tuples.empty());
}

TEST_F(EdgeTest, QSharingWithAllUnanswerableMappings) {
  // gender is mapped only by m2; restrict to mappings without it.
  std::vector<mapping::Mapping> subset = {ex_.mappings[0], ex_.mappings[2]};
  subset[0].set_probability(0.6);
  subset[1].set_probability(0.4);
  PlanPtr q = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.gender", CmpOp::kEq, "x")),
      {"person.gender"});
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto result = qsharing::RunQSharing(info, subset, ex_.catalog,
                                      reformulator);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().answers.size(), 0u);
  EXPECT_NEAR(result.ValueOrDie().answers.null_probability(), 1.0, 1e-12);
  EXPECT_EQ(result.ValueOrDie().source_queries, 0u);
}

TEST_F(EdgeTest, EngineFromPartsEvaluates) {
  core::Engine::Options options;
  auto engine = core::Engine::FromParts(ex_.catalog, ex_.source_schema,
                                        ex_.target_schema, ex_.mappings,
                                        options);
  PlanPtr q = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123")),
      {"person.addr"});
  auto result = engine->Evaluate(q, core::Method::kOSharing);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().answers.size(), 2u);  // aaa, hk
}

TEST_F(EdgeTest, AnalyzeRejectsRelationLeafInTargetQuery) {
  relational::Relation rel{relational::RelationSchema{}};
  PlanPtr leaf = algebra::MakeRelationLeaf(
      std::make_shared<const relational::Relation>(std::move(rel)), "r");
  EXPECT_FALSE(
      reformulation::AnalyzeTargetQuery(leaf, ex_.target_schema).ok());
}

TEST_F(EdgeTest, InequalityPredicatesSupported) {
  // σ pname > 'Alice' — non-equality comparisons flow through every
  // layer (they cannot hash-join; the evaluator falls back to filter).
  PlanPtr q = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.pname", CmpOp::kGt,
                                         "Alice")),
      {"person.pname"});
  auto info = Analyze(q);
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                   ex_.catalog, reformulator);
  auto oshare = osharing::RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(basic.ok() && oshare.ok());
  EXPECT_TRUE(basic.ValueOrDie().answers.ApproxEquals(
      oshare.ValueOrDie().answers));
  // Under m1-m4 (pname -> cname): Bob and Cindy qualify.
  bool has_bob = false;
  for (const auto& t : basic.ValueOrDie().answers.Sorted()) {
    if (t.values[0] == relational::Value("Bob")) has_bob = true;
  }
  EXPECT_TRUE(has_bob);
}

}  // namespace
}  // namespace urm
