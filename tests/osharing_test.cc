#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "baselines/baselines.h"
#include "osharing/osharing.h"
#include "osharing/query_shape.h"
#include "reformulation/reformulator.h"
#include "tests/paper_fixture.h"

namespace urm {
namespace osharing {
namespace {

using algebra::AggKind;
using algebra::CmpOp;
using algebra::MakeAggregate;
using algebra::MakeProduct;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;

class OSharingTest : public ::testing::Test {
 protected:
  OSharingTest() : ex_(urm::testing::MakePaperExample()) {}

  reformulation::TargetQueryInfo Analyze(const PlanPtr& q) {
    auto info = reformulation::AnalyzeTargetQuery(q, ex_.target_schema);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.ValueOrDie();
  }

  baselines::MethodResult Basic(const reformulation::TargetQueryInfo& info) {
    reformulation::Reformulator reformulator(ex_.source_schema);
    auto r = baselines::RunBasic(info, baselines::AsWeighted(ex_.mappings),
                                 ex_.catalog, reformulator);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  /// q2 = (σ_addr='hk' σ_phone='123' Person) × Order (paper §V, Fig. 5).
  PlanPtr Q2Paper() {
    PlanPtr person = MakeScan("Person", "person");
    person = MakeSelect(
        person, Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
    person = MakeSelect(
        person, Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "hk"));
    return MakeProduct(person, MakeScan("Order", "order"));
  }

  urm::testing::PaperExample ex_;
};

TEST_F(OSharingTest, DecomposeQueryShape) {
  auto info = Analyze(Q2Paper());
  auto shape = DecomposeQuery(info);
  ASSERT_TRUE(shape.ok()) << shape.status().ToString();
  EXPECT_EQ(shape.ValueOrDie().selections.size(), 2u);
  EXPECT_EQ(shape.ValueOrDie().products.size(), 1u);
  EXPECT_TRUE(shape.ValueOrDie().tops.empty());
  EXPECT_EQ(shape.ValueOrDie().NumOperators(),
            algebra::CountOperators(info.query));
}

TEST_F(OSharingTest, DecomposeTopsInnermostFirst) {
  PlanPtr p = MakeScan("Person", "person");
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  p = MakeProject(p, {"person.addr"});
  p = MakeAggregate(p, AggKind::kCount);
  auto info = Analyze(p);
  auto shape = DecomposeQuery(info);
  ASSERT_TRUE(shape.ok());
  ASSERT_EQ(shape.ValueOrDie().tops.size(), 2u);
  EXPECT_FALSE(shape.ValueOrDie().tops[0].is_aggregate);  // π first
  EXPECT_TRUE(shape.ValueOrDie().tops[1].is_aggregate);
}

TEST_F(OSharingTest, MatchesBasicOnPaperFigure5Query) {
  auto info = Analyze(Q2Paper());
  auto basic = Basic(info);
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers))
      << "basic:\n" << basic.answers.ToString() << "o-sharing:\n"
      << result.ValueOrDie().answers.ToString();
}

TEST_F(OSharingTest, AllStrategiesAgree) {
  auto info = Analyze(Q2Paper());
  auto basic = Basic(info);
  for (StrategyKind strategy :
       {StrategyKind::kRandom, StrategyKind::kSNF, StrategyKind::kSEF}) {
    OSharingOptions options;
    options.strategy = strategy;
    auto result = RunOSharing(info, ex_.mappings, ex_.catalog, options);
    ASSERT_TRUE(result.ok()) << StrategyName(strategy) << ": "
                             << result.status().ToString();
    EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers))
        << StrategyName(strategy);
  }
}

TEST_F(OSharingTest, ProjectionQueryMatchesBasic) {
  PlanPtr p = MakeScan("Person", "person");
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "aaa"));
  p = MakeProject(p, {"person.phone"});
  auto info = Analyze(p);
  auto basic = Basic(info);
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers));
  // Paper §III-B: (123,.5), (456,.8), (789,.2).
  EXPECT_EQ(result.ValueOrDie().answers.size(), 3u);
}

TEST_F(OSharingTest, AggregateQueryMatchesBasic) {
  PlanPtr p = MakeScan("Person", "person");
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "aaa"));
  p = MakeAggregate(p, AggKind::kCount);
  auto info = Analyze(p);
  auto basic = Basic(info);
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers));
}

TEST_F(OSharingTest, CountOverBareProductMatchesBasic) {
  // COUNT(σ_phone (Person × Order)) — Order is bare; its cover differs
  // across mappings (c_order vs nation for m5), the Fig. 6 situation.
  PlanPtr p = MakeProduct(MakeScan("Person", "person"),
                          MakeScan("Order", "order"));
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  p = MakeAggregate(p, AggKind::kCount);
  auto info = Analyze(p);
  auto basic = Basic(info);
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers))
      << "basic:\n" << basic.answers.ToString() << "o-sharing:\n"
      << result.ValueOrDie().answers.ToString();
}

TEST_F(OSharingTest, JoinPredicateQueryMatchesBasic) {
  // σ Person.nation = Order.item (Person × Order): a cross-instance
  // equality predicate exercising factor fusion.
  PlanPtr p = MakeProduct(MakeScan("Person", "person"),
                          MakeScan("Order", "order"));
  p = MakeSelect(p, Predicate::AttrCmpAttr("person.nation", CmpOp::kEq,
                                           "order.item"));
  auto info = Analyze(p);
  auto basic = Basic(info);
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(basic.answers.ApproxEquals(result.ValueOrDie().answers))
      << "basic:\n" << basic.answers.ToString() << "o-sharing:\n"
      << result.ValueOrDie().answers.ToString();
}

TEST_F(OSharingTest, SharesOperatorsAcrossMappings) {
  auto info = Analyze(Q2Paper());
  reformulation::Reformulator reformulator(ex_.source_schema);
  auto basic = baselines::RunBasic(
      info, baselines::AsWeighted(ex_.mappings), ex_.catalog, reformulator);
  auto shared = RunOSharing(info, ex_.mappings, ex_.catalog);
  ASSERT_TRUE(basic.ok() && shared.ok());
  EXPECT_LT(shared.ValueOrDie().stats.operators_executed,
            basic.ValueOrDie().stats.operators_executed);
}

TEST_F(OSharingTest, OperatorCacheDoesNotChangeAnswers) {
  // The cross-branch operator cache (our §IX extension) must be a pure
  // optimization: identical answers with and without it.
  PlanPtr p = MakeProduct(MakeScan("Person", "person"),
                          MakeScan("Order", "order"));
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "hk"));
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  auto info = Analyze(p);
  OSharingOptions with_cache, without_cache;
  with_cache.enable_operator_cache = true;
  without_cache.enable_operator_cache = false;
  auto a = RunOSharing(info, ex_.mappings, ex_.catalog, with_cache);
  auto b = RunOSharing(info, ex_.mappings, ex_.catalog, without_cache);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a.ValueOrDie().answers.ApproxEquals(
      b.ValueOrDie().answers));
  EXPECT_EQ(b.ValueOrDie().stats.cache_hits, 0u);
}

TEST_F(OSharingTest, StrategyNamesExposed) {
  EXPECT_STREQ(StrategyName(StrategyKind::kRandom), "Random");
  EXPECT_STREQ(StrategyName(StrategyKind::kSNF), "SNF");
  EXPECT_STREQ(StrategyName(StrategyKind::kSEF), "SEF");
}

}  // namespace
}  // namespace osharing
}  // namespace urm
