#include <gtest/gtest.h>

#include "algebra/evaluate.h"
#include "algebra/plan.h"
#include "reformulation/answer.h"
#include "reformulation/reformulator.h"
#include "reformulation/target_query.h"
#include "tests/paper_fixture.h"

namespace urm {
namespace reformulation {
namespace {

using algebra::CmpOp;
using algebra::MakeAggregate;
using algebra::MakeProduct;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;

class ReformulationTest : public ::testing::Test {
 protected:
  ReformulationTest() : ex_(urm::testing::MakePaperExample()) {}

  TargetQueryInfo Analyze(const PlanPtr& q) {
    auto info = AnalyzeTargetQuery(q, ex_.target_schema);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.ValueOrDie();
  }

  urm::testing::PaperExample ex_;
};

PlanPtr PhoneAddrQuery() {
  PlanPtr p = MakeScan("Person", "person");
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  return MakeProject(p, {"person.addr"});
}

TEST_F(ReformulationTest, AnalyzeExtractsInstancesAndRefs) {
  auto info = Analyze(PhoneAddrQuery());
  ASSERT_EQ(info.instances.size(), 1u);
  EXPECT_EQ(info.instances[0].alias, "person");
  EXPECT_EQ(info.instances[0].table, "Person");
  EXPECT_FALSE(info.instances[0].bare);
  ASSERT_EQ(info.instances[0].referenced.size(), 2u);
  EXPECT_EQ(info.output_refs,
            (std::vector<std::string>{"person.addr"}));
  EXPECT_FALSE(info.is_aggregate);
}

TEST_F(ReformulationTest, AnalyzeBareInstanceNeedsWholeTable) {
  PlanPtr p = MakeProduct(MakeScan("Person", "person"),
                          MakeScan("Order", "order"));
  p = MakeSelect(p,
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  auto info = Analyze(p);
  ASSERT_EQ(info.instances.size(), 2u);
  EXPECT_TRUE(info.instances[1].bare);
  EXPECT_EQ(info.instances[1].needed.size(), 5u);  // all Order attrs
}

TEST_F(ReformulationTest, AnalyzeRejectsBadQueries) {
  // Unknown table.
  EXPECT_FALSE(AnalyzeTargetQuery(MakeScan("Nope", "n"), ex_.target_schema)
                   .ok());
  // Missing alias.
  EXPECT_FALSE(
      AnalyzeTargetQuery(MakeScan("Person", ""), ex_.target_schema).ok());
  // Duplicate alias.
  EXPECT_FALSE(AnalyzeTargetQuery(
                   MakeProduct(MakeScan("Person", "p"),
                               MakeScan("Person", "p")),
                   ex_.target_schema)
                   .ok());
  // Unknown attribute.
  PlanPtr bad = MakeSelect(
      MakeScan("Person", "p"),
      Predicate::AttrCmpValue("p.nosuch", CmpOp::kEq, "x"));
  EXPECT_FALSE(AnalyzeTargetQuery(bad, ex_.target_schema).ok());
  // Unqualified reference.
  PlanPtr unqual = MakeSelect(
      MakeScan("Person", "p"),
      Predicate::AttrCmpValue("phone", CmpOp::kEq, "x"));
  EXPECT_FALSE(AnalyzeTargetQuery(unqual, ex_.target_schema).ok());
}

TEST_F(ReformulationTest, SignatureGroupsEquivalentMappings) {
  auto info = Analyze(PhoneAddrQuery());
  // m1 and m2 agree on phone and addr -> same signature; m3 differs.
  EXPECT_EQ(MappingSignature(info, ex_.mappings[0]),
            MappingSignature(info, ex_.mappings[1]));
  EXPECT_NE(MappingSignature(info, ex_.mappings[0]),
            MappingSignature(info, ex_.mappings[2]));
}

TEST_F(ReformulationTest, SignatureUnanswerableWhenRequiredUnmapped) {
  PlanPtr p = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.gender", CmpOp::kEq, "x")),
      {"person.gender"});
  auto info = Analyze(p);
  // Only m2 maps gender.
  EXPECT_EQ(MappingSignature(info, ex_.mappings[0]),
            kUnanswerableSignature);
  EXPECT_NE(MappingSignature(info, ex_.mappings[1]),
            kUnanswerableSignature);
}

TEST_F(ReformulationTest, ReformulateRewritesAttributesAndTable) {
  auto info = Analyze(PhoneAddrQuery());
  Reformulator reformulator(ex_.source_schema);
  auto sq = reformulator.Reformulate(info, ex_.mappings[0]);
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  ASSERT_TRUE(sq.ValueOrDie().answerable);
  std::string canonical = algebra::Canonical(sq.ValueOrDie().plan);
  EXPECT_NE(canonical.find("customer"), std::string::npos);
  EXPECT_NE(canonical.find("ophone"), std::string::npos);
  EXPECT_NE(canonical.find("oaddr"), std::string::npos);
  EXPECT_EQ(canonical.find("Person"), std::string::npos);
}

TEST_F(ReformulationTest, ReformulateIsUnanswerableOnMissingAttr) {
  PlanPtr p = MakeProject(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.gender", CmpOp::kEq, "x")),
      {"person.gender"});
  auto info = Analyze(p);
  Reformulator reformulator(ex_.source_schema);
  auto sq = reformulator.Reformulate(info, ex_.mappings[0]);
  ASSERT_TRUE(sq.ok());
  EXPECT_FALSE(sq.ValueOrDie().answerable);
}

TEST_F(ReformulationTest, IdenticalSignaturesGiveIdenticalPlans) {
  auto info = Analyze(PhoneAddrQuery());
  Reformulator reformulator(ex_.source_schema);
  auto a = reformulator.Reformulate(info, ex_.mappings[0]);
  auto b = reformulator.Reformulate(info, ex_.mappings[1]);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(algebra::Canonical(a.ValueOrDie().plan),
            algebra::Canonical(b.ValueOrDie().plan));
}

TEST_F(ReformulationTest, EvaluatingReformulatedQueryGivesPaperRows) {
  auto info = Analyze(PhoneAddrQuery());
  Reformulator reformulator(ex_.source_schema);
  auto sq = reformulator.Reformulate(info, ex_.mappings[0]);
  ASSERT_TRUE(sq.ok());
  auto rel = algebra::Evaluate(sq.ValueOrDie().plan, ex_.catalog);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  // σ ophone='123' -> t1; π oaddr -> "aaa".
  ASSERT_EQ(rel.ValueOrDie()->num_rows(), 1u);
  EXPECT_EQ(rel.ValueOrDie()->rows()[0][0].ToString(), "aaa");
}

TEST_F(ReformulationTest, AggregateQueryLayout) {
  PlanPtr p = MakeAggregate(
      MakeSelect(MakeScan("Person", "person"),
                 Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123")),
      algebra::AggKind::kCount);
  auto info = Analyze(p);
  EXPECT_TRUE(info.is_aggregate);
  Reformulator reformulator(ex_.source_schema);
  auto sq = reformulator.Reformulate(info, ex_.mappings[0]);
  ASSERT_TRUE(sq.ok());
  ASSERT_EQ(sq.ValueOrDie().layout.size(), 1u);
  EXPECT_EQ(*sq.ValueOrDie().layout[0], "count");
  auto rel = algebra::Evaluate(sq.ValueOrDie().plan, ex_.catalog);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.ValueOrDie()->rows()[0][0], relational::Value(1));
}

TEST_F(ReformulationTest, SelectOnlyQueryOutputsReferencedAttrs) {
  PlanPtr p = MakeSelect(
      MakeScan("Person", "person"),
      Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
  auto info = Analyze(p);
  EXPECT_EQ(info.output_refs,
            (std::vector<std::string>{"person.phone"}));
  Reformulator reformulator(ex_.source_schema);
  auto sq = reformulator.Reformulate(info, ex_.mappings[0]);
  ASSERT_TRUE(sq.ok());
  auto rel = algebra::Evaluate(sq.ValueOrDie().plan, ex_.catalog);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel.ValueOrDie()->num_rows(), 1u);
  EXPECT_EQ(rel.ValueOrDie()->rows()[0][0].ToString(), "123");
}

TEST(AnswerSetTest, AddAccumulatesByValue) {
  AnswerSet answers({"x"});
  answers.Add({relational::Value("a")}, 0.3);
  answers.Add({relational::Value("a")}, 0.2);
  answers.Add({relational::Value("b")}, 0.1);
  EXPECT_EQ(answers.size(), 2u);
  auto sorted = answers.Sorted();
  EXPECT_EQ(sorted[0].values[0].ToString(), "a");
  EXPECT_NEAR(sorted[0].probability, 0.5, 1e-12);
}

TEST(AnswerSetTest, NullProbabilityTracked) {
  AnswerSet answers({"x"});
  answers.AddNull(0.4);
  answers.Add({relational::Value("a")}, 0.6);
  EXPECT_NEAR(answers.null_probability(), 0.4, 1e-12);
  EXPECT_NEAR(answers.TotalProbability(), 1.0, 1e-12);
}

TEST(AnswerSetTest, TopKAndApproxEquals) {
  AnswerSet a({"x"}), b({"x"});
  a.Add({relational::Value("p")}, 0.5);
  a.Add({relational::Value("q")}, 0.3);
  b.Add({relational::Value("q")}, 0.3);
  b.Add({relational::Value("p")}, 0.5);
  EXPECT_TRUE(a.ApproxEquals(b));
  auto top = a.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].values[0].ToString(), "p");
  b.Add({relational::Value("r")}, 0.1);
  EXPECT_FALSE(a.ApproxEquals(b));
}

TEST(AssembleAnswersTest, InsertsNullsAndDeduplicates) {
  relational::RelationSchema schema;
  ASSERT_TRUE(schema.AddColumn({"c.x", relational::ValueType::kString}).ok());
  relational::Relation rel(schema);
  ASSERT_TRUE(rel.AddRow({"v"}).ok());
  ASSERT_TRUE(rel.AddRow({"v"}).ok());  // duplicate collapses
  AnswerSet answers({"a", "b"});
  std::vector<std::optional<std::string>> layout = {std::nullopt, "c.x"};
  ASSERT_TRUE(AssembleAnswers(rel, layout, 0.5, &answers).ok());
  ASSERT_EQ(answers.size(), 1u);
  auto t = answers.Sorted()[0];
  EXPECT_TRUE(t.values[0].is_null());
  EXPECT_EQ(t.values[1].ToString(), "v");
  EXPECT_NEAR(t.probability, 0.5, 1e-12);
}

TEST(AssembleAnswersTest, EmptyResultBecomesTheta) {
  relational::RelationSchema schema;
  ASSERT_TRUE(schema.AddColumn({"c.x", relational::ValueType::kString}).ok());
  relational::Relation rel(schema);
  AnswerSet answers({"a"});
  ASSERT_TRUE(AssembleAnswers(rel, {std::optional<std::string>("c.x")}, 0.3,
                              &answers)
                  .ok());
  EXPECT_EQ(answers.size(), 0u);
  EXPECT_NEAR(answers.null_probability(), 0.3, 1e-12);
}

}  // namespace
}  // namespace reformulation
}  // namespace urm
