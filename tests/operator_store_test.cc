#include "osharing/operator_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "osharing/osharing.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"
#include "service/query_service.h"
#include "tests/paper_fixture.h"

namespace urm {
namespace osharing {
namespace {

using algebra::CmpOp;
using algebra::MakeProduct;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;
using relational::Relation;
using relational::RelationPtr;
using relational::Row;
using relational::Value;

RelationPtr MakeIntRelation(std::vector<int64_t> ints) {
  relational::RelationSchema schema;
  EXPECT_TRUE(schema
                  .AddColumn(relational::ColumnDef{
                      "v", relational::ValueType::kInt64})
                  .ok());
  Relation rel(schema);
  for (int64_t i : ints) EXPECT_TRUE(rel.AddRow(Row{Value(i)}).ok());
  return std::make_shared<const Relation>(std::move(rel));
}

OperatorKey KeyFor(uint64_t op_hash, const void* input = nullptr) {
  OperatorKey key;
  key.catalog = reinterpret_cast<const void*>(0x1);
  key.epoch = 0;
  key.input = input;
  key.op_hash = op_hash;
  return key;
}

TEST(OperatorStoreTest, ComputesOnceThenHits) {
  OperatorStore store;
  std::atomic<int> computes{0};
  auto compute = [&]() -> Result<RelationPtr> {
    computes++;
    return MakeIntRelation({1, 2, 3});
  };
  bool shared = false;
  auto first = store.GetOrCompute(KeyFor(7), "op", nullptr, compute, &shared);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(shared);
  auto second = store.GetOrCompute(KeyFor(7), "op", nullptr, compute, &shared);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(shared);
  // Zero-copy: hits return the identical materialization.
  EXPECT_EQ(first.ValueOrDie().get(), second.ValueOrDie().get());
  EXPECT_EQ(computes.load(), 1);
  OperatorStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.bytes_reused, second.ValueOrDie()->ApproxBytes());
}

TEST(OperatorStoreTest, HashCollisionFallsBackToUncachedCompute) {
  OperatorStore store;
  auto a = store.GetOrCompute(KeyFor(7), "op-a", nullptr,
                              [] { return MakeIntRelation({1}); });
  ASSERT_TRUE(a.ok());
  // Same key, different rendering: must not reuse a's result.
  auto b = store.GetOrCompute(KeyFor(7), "op-b", nullptr,
                              [] { return MakeIntRelation({2}); });
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.ValueOrDie()->rows()[0][0], Value(int64_t{2}));
}

TEST(OperatorStoreTest, FailedComputesAreNotCached) {
  OperatorStore store;
  std::atomic<int> computes{0};
  auto failing = [&]() -> Result<RelationPtr> {
    computes++;
    return Status::Internal("boom");
  };
  EXPECT_FALSE(store.GetOrCompute(KeyFor(9), "op", nullptr, failing).ok());
  EXPECT_FALSE(store.GetOrCompute(KeyFor(9), "op", nullptr, failing).ok());
  EXPECT_EQ(computes.load(), 2);  // retried, not served a cached error
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(OperatorStoreTest, ByteBudgetEvictsLeastRecentlyUsed) {
  OperatorStoreOptions options;
  options.num_shards = 1;  // one shard => deterministic LRU order
  options.max_bytes = 2 * 8;  // two one-int relations (8 bytes each)
  OperatorStore store(options);
  auto insert = [&](uint64_t h) {
    auto r = store.GetOrCompute(KeyFor(h), "op" + std::to_string(h),
                                nullptr, [] { return MakeIntRelation({1}); });
    ASSERT_TRUE(r.ok());
  };
  insert(1);
  insert(2);
  insert(3);  // evicts key 1
  OperatorStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 16u);
  EXPECT_EQ(stats.evictions, 1u);
  // Key 1 recomputes; key 3 still resident.
  bool shared = true;
  ASSERT_TRUE(store
                  .GetOrCompute(KeyFor(1), "op1", nullptr,
                                [] { return MakeIntRelation({1}); }, &shared)
                  .ok());
  EXPECT_FALSE(shared);
  ASSERT_TRUE(store
                  .GetOrCompute(KeyFor(3), "op3", nullptr,
                                [] { return MakeIntRelation({1}); }, &shared)
                  .ok());
  EXPECT_TRUE(shared);
}

TEST(OperatorStoreTest, OversizedEntryStaysResidentAndServesRepeats) {
  OperatorStoreOptions options;
  options.num_shards = 1;
  options.max_bytes = 8;  // smaller than the 3-int relation below
  OperatorStore store(options);
  auto insert = [&](bool* shared) {
    return store.GetOrCompute(
        KeyFor(1), "op", nullptr,
        [] { return MakeIntRelation({1, 2, 3}); }, shared);
  };
  ASSERT_TRUE(insert(nullptr).ok());
  // The just-inserted entry is never its own eviction victim: it stays
  // (alone) over budget and serves repeats.
  EXPECT_EQ(store.stats().entries, 1u);
  EXPECT_EQ(store.stats().evictions, 0u);
  bool shared = false;
  ASSERT_TRUE(insert(&shared).ok());
  EXPECT_TRUE(shared);
}

TEST(OperatorStoreTest, PinnedInputCountsTowardTheByteBudget) {
  OperatorStoreOptions options;
  options.num_shards = 1;
  OperatorStore store(options);
  auto base = store.GetOrCompute(KeyFor(1), "scan", nullptr, [] {
    return MakeIntRelation({1, 2, 3});
  });
  ASSERT_TRUE(base.ok());
  RelationPtr input = base.ValueOrDie();
  size_t scan_bytes = store.stats().bytes;
  ASSERT_GT(scan_bytes, 0u);
  // A selection entry weighs its result plus the input it pins (the
  // budget bounds retained memory, conservatively counting a shared
  // input per entry — see Entry::bytes).
  auto sel = store.GetOrCompute(KeyFor(2, input.get()), "sel", input, [] {
    return MakeIntRelation({2});
  });
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(store.stats().bytes, scan_bytes +
                                     sel.ValueOrDie()->ApproxBytes() +
                                     input->ApproxBytes());
}

TEST(OperatorStoreTest, FenceEpochIsForwardOnly) {
  OperatorStore store;
  store.FenceEpoch(2);
  OperatorKey key = KeyFor(4);
  key.epoch = 2;
  ASSERT_TRUE(store
                  .GetOrCompute(key, "op", nullptr,
                                [] { return MakeIntRelation({1}); })
                  .ok());
  EXPECT_EQ(store.stats().entries, 1u);
  // A worker that loaded its epoch before the reconfiguration fences
  // late: it must not clear entries valid under the newer epoch.
  store.FenceEpoch(1);
  EXPECT_EQ(store.stats().entries, 1u);
}

TEST(OperatorStoreTest, StaleEpochResultDoesNotRepopulateFencedStore) {
  OperatorStore store;
  store.FenceEpoch(7);  // a reconfiguration has already been fenced
  // An evaluation that began before the reconfiguration still looks up
  // with its old epoch. It must get its result — but must not leave an
  // entry behind: no current-epoch lookup could reach it, and no
  // future FenceEpoch(7) would ever drop it.
  auto r = store.GetOrCompute(KeyFor(3), "op", nullptr,
                              [] { return MakeIntRelation({1}); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(OperatorStoreTest, FenceEpochDropsEntries) {
  OperatorStore store;
  ASSERT_TRUE(store
                  .GetOrCompute(KeyFor(5), "op", nullptr,
                                [] { return MakeIntRelation({1}); })
                  .ok());
  EXPECT_EQ(store.stats().entries, 1u);
  store.FenceEpoch(0);  // same epoch: no-op
  EXPECT_EQ(store.stats().entries, 1u);
  store.FenceEpoch(1);
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(OperatorStoreTest, SingleFlightComputesOnceAcrossThreads) {
  OperatorStore store;
  std::atomic<int> computes{0};
  auto slow_compute = [&]() -> Result<RelationPtr> {
    computes++;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return MakeIntRelation({42});
  };
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<RelationPtr> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto r = store.GetOrCompute(KeyFor(11), "op", nullptr, slow_compute);
      ASSERT_TRUE(r.ok());
      results[t] = r.ValueOrDie();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  OperatorStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<size_t>(kThreads - 1));
}

// ---------------------------------------------------------------------
// Engine-level sharing and recursive parallelism on the paper fixture.

class StoreEngineTest : public ::testing::Test {
 protected:
  StoreEngineTest() : ex_(urm::testing::MakePaperExample()) {}

  reformulation::TargetQueryInfo Analyze(const PlanPtr& q) {
    auto info = reformulation::AnalyzeTargetQuery(q, ex_.target_schema);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.ValueOrDie();
  }

  /// (σ_addr='hk' σ_phone='123' Person) × Order — the paper's Fig. 5
  /// query: three operators over the five skewed mappings
  /// (.3/.2/.2/.2/.1) give a multi-level, uneven partition tree.
  PlanPtr Q2Paper() {
    PlanPtr person = MakeScan("Person", "person");
    person = MakeSelect(
        person, Predicate::AttrCmpValue("person.phone", CmpOp::kEq, "123"));
    person = MakeSelect(
        person, Predicate::AttrCmpValue("person.addr", CmpOp::kEq, "hk"));
    return MakeProduct(person, MakeScan("Order", "order"));
  }

  urm::testing::PaperExample ex_;
};

/// Records the exact leaf sequence (row values + probabilities in
/// visit order) for bit-identity comparisons.
class RecordingVisitor : public LeafVisitor {
 public:
  struct Leaf {
    std::vector<Row> rows;
    double probability = 0.0;
  };

  bool OnLeaf(const std::vector<Row>& rows, double probability) override {
    leaves.push_back(Leaf{rows, probability});
    return true;
  }

  std::vector<Leaf> leaves;
};

void ExpectIdenticalLeafSequences(const std::vector<RecordingVisitor::Leaf>& a,
                                  const std::vector<RecordingVisitor::Leaf>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-identical: exact double equality on the partition mass and
    // value equality on every row, in the same order.
    EXPECT_EQ(a[i].probability, b[i].probability) << "leaf " << i;
    ASSERT_EQ(a[i].rows.size(), b[i].rows.size()) << "leaf " << i;
    for (size_t r = 0; r < a[i].rows.size(); ++r) {
      EXPECT_TRUE(relational::RowsEqual(a[i].rows[r], b[i].rows[r]))
          << "leaf " << i << " row " << r;
    }
  }
}

TEST_F(StoreEngineTest, RecursiveParallelLeafSequenceBitIdentical) {
  auto info = Analyze(Q2Paper());
  ThreadPool pool(4);
  for (StrategyKind strategy : {StrategyKind::kSEF, StrategyKind::kSNF}) {
    OSharingOptions sequential;
    sequential.strategy = strategy;
    RecordingVisitor seq_leaves;
    {
      auto tree = qsharing::PartitionTree::Build(info, ex_.mappings);
      ASSERT_TRUE(tree.ok());
      double unanswerable = 0.0;
      auto reps = qsharing::Represent(tree.ValueOrDie(), &unanswerable);
      OSharingEngine engine(info, ex_.catalog, sequential);
      ASSERT_TRUE(engine.Init().ok());
      ASSERT_TRUE(engine.Run(reps, &seq_leaves).ok());
    }

    // Recursive fan-out forced at every multi-partition node.
    OSharingOptions parallel = sequential;
    parallel.parallelism = 4;
    parallel.pool = &pool;
    parallel.max_parallel_depth = 8;
    parallel.parallel_grain = 1;
    RecordingVisitor par_leaves;
    size_t seq_count = 0;
    {
      auto tree = qsharing::PartitionTree::Build(info, ex_.mappings);
      ASSERT_TRUE(tree.ok());
      double unanswerable = 0.0;
      auto reps = qsharing::Represent(tree.ValueOrDie(), &unanswerable);
      OSharingEngine engine(info, ex_.catalog, parallel);
      ASSERT_TRUE(engine.Init().ok());
      ASSERT_TRUE(engine.RunParallel(reps, &par_leaves, &pool).ok());
      seq_count = engine.leaves_visited();
    }
    ASSERT_GT(seq_leaves.leaves.size(), 1u) << StrategyName(strategy);
    ExpectIdenticalLeafSequences(seq_leaves.leaves, par_leaves.leaves);
    EXPECT_EQ(seq_count, seq_leaves.leaves.size()) << StrategyName(strategy);
  }
}

TEST_F(StoreEngineTest, SharedStoreDoesNotChangeAnswersAndRecordsHits) {
  auto info = Analyze(Q2Paper());
  OperatorStore store;

  OSharingOptions without;
  auto baseline = RunOSharing(info, ex_.mappings, ex_.catalog, without);
  ASSERT_TRUE(baseline.ok());

  OSharingOptions with;
  with.store = &store;
  auto first = RunOSharing(info, ex_.mappings, ex_.catalog, with);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(baseline.ValueOrDie().answers.ApproxEquals(
      first.ValueOrDie().answers));

  // A second evaluation over the same store reuses its
  // materializations: cross-query o-sharing.
  auto second = RunOSharing(info, ex_.mappings, ex_.catalog, with);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(baseline.ValueOrDie().answers.ApproxEquals(
      second.ValueOrDie().answers));
  EXPECT_GT(second.ValueOrDie().stats.store_hits, 0u);
  EXPECT_GT(store.stats().hits, 0u);
}

TEST_F(StoreEngineTest, ScopedStoreSharesAtReconfiguredEpoch) {
  auto info = Analyze(Q2Paper());
  ThreadPool pool(4);
  OSharingOptions options;
  options.parallelism = 4;
  options.pool = &pool;
  options.max_parallel_depth = 8;
  options.parallel_grain = 1;
  // As after a UseTopMappings reconfiguration: keys carry a nonzero
  // epoch, ahead of the fresh evaluation-scoped store's fence (0).
  // Ahead-of-fence insertions must be kept, or sibling branches would
  // silently stop sharing after any reconfiguration.
  options.store_epoch = 3;
  auto result = RunOSharing(info, ex_.mappings, ex_.catalog, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.ValueOrDie().stats.store_hits, 0u);
}

// ---------------------------------------------------------------------
// Service-level concurrent sharing (the TSan-covered scenario): N
// identical + M overlapping queries over one QueryService share store
// entries and still produce exactly the engine's answers.

core::Engine* SharedServiceEngine() {
  static std::unique_ptr<core::Engine> engine = [] {
    core::Engine::Options options;
    options.target_mb = 0.1;
    options.num_mappings = 12;
    options.target_schema = datagen::TargetSchemaId::kExcel;
    auto created = core::Engine::Create(options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return std::move(created).ValueOrDie();
  }();
  return engine.get();
}

TEST(OperatorStoreServiceTest, ConcurrentQueriesShareStoreWithCorrectResults) {
  core::Engine* engine = SharedServiceEngine();
  service::ServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 0;  // force evaluation: sharing must come
                               // from the operator store, not the
                               // answer cache
  service::QueryService service(engine, options);

  // M overlapping queries (selection chains share scan + prefix
  // selections, plus two workload queries) and N identical repeats.
  std::vector<core::Request> distinct;
  for (int n = 1; n <= 4; ++n) {
    distinct.push_back(core::Request::MethodEval(
        core::SelectionChainQuery(n), core::Method::kOSharing));
  }
  distinct.push_back(core::Request::MethodEval(core::QueryById("Q1").query,
                                               core::Method::kOSharing));
  distinct.push_back(core::Request::MethodEval(core::QueryById("Q2").query,
                                               core::Method::kOSharing));

  // Reference answers from plain engine runs (no store involved).
  std::vector<reformulation::AnswerSet> expected;
  for (const auto& request : distinct) {
    auto direct = engine->Evaluate(request.query, core::Method::kOSharing);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    expected.push_back(direct.ValueOrDie().answers);
  }

  // Two concurrent waves: every query of wave two repeats wave one
  // (identical requests), so wave two must hit the store heavily.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::future<service::QueryResponse>> futures;
    for (const auto& request : distinct) {
      futures.push_back(service.SubmitAsync(request));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      auto response = futures[i].get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      ASSERT_NE(response.result, nullptr);
      EXPECT_TRUE(expected[i].ApproxEquals(response.result->answers))
          << "wave " << wave << " request " << i << "\nexpected:\n"
          << expected[i].ToString() << "got:\n"
          << response.result->answers.ToString();
    }
  }

  osharing::OperatorStoreStats stats = service.operator_store_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(OperatorStoreServiceTest, StoreSurvivesReconfigurationFence) {
  core::Engine::Options engine_options;
  engine_options.target_mb = 0.05;
  engine_options.num_mappings = 8;
  auto owned = core::Engine::Create(engine_options);
  ASSERT_TRUE(owned.ok()) << owned.status().ToString();
  core::Engine* engine = owned.ValueOrDie().get();

  service::ServiceOptions options;
  options.num_threads = 0;
  options.cache_capacity = 0;
  service::QueryService service(engine, options);
  auto request = core::Request::MethodEval(core::QueryById("Q1").query,
                                           core::Method::kOSharing);
  ASSERT_TRUE(service.Submit(request).status.ok());
  EXPECT_GT(service.operator_store_stats().entries, 0u);

  engine->UseTopMappings(4);  // stop-the-world reconfiguration
  auto after = service.Submit(request);
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  // The fence dropped pre-reconfiguration materializations, and the
  // answers still match a plain evaluation of the reconfigured engine.
  auto direct = engine->Evaluate(request.query, core::Method::kOSharing);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct.ValueOrDie().answers.ApproxEquals(
      after.result->answers));
}

}  // namespace
}  // namespace osharing
}  // namespace urm
