#include <gtest/gtest.h>

#include <set>

#include "mapping/generator.h"
#include "mapping/hungarian.h"
#include "mapping/mapping.h"
#include "mapping/murty.h"

namespace urm {
namespace mapping {
namespace {

TEST(MappingTest, AddAndLookup) {
  Mapping m;
  ASSERT_TRUE(m.Add("T.a", "s.x").ok());
  ASSERT_TRUE(m.Add("T.b", "s.y").ok());
  EXPECT_EQ(m.SourceFor("T.a"), std::optional<std::string>("s.x"));
  EXPECT_EQ(m.SourceFor("T.z"), std::nullopt);
  EXPECT_EQ(m.size(), 2u);
}

TEST(MappingTest, OneToOneEnforced) {
  Mapping m;
  ASSERT_TRUE(m.Add("T.a", "s.x").ok());
  EXPECT_EQ(m.Add("T.a", "s.y").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(m.Add("T.b", "s.x").code(), StatusCode::kAlreadyExists);
}

TEST(MappingTest, IntersectionAndOverlap) {
  Mapping a, b;
  ASSERT_TRUE(a.Add("T.a", "s.x").ok());
  ASSERT_TRUE(a.Add("T.b", "s.y").ok());
  ASSERT_TRUE(b.Add("T.a", "s.x").ok());
  ASSERT_TRUE(b.Add("T.b", "s.z").ok());
  EXPECT_EQ(a.IntersectionSize(b), 1u);
  // |∩| = 1, |∪| = 3.
  EXPECT_NEAR(OverlapRatio(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(OverlapRatio(a, a), 1.0);
}

TEST(MappingTest, EmptyMappingsOverlapFully) {
  Mapping a, b;
  EXPECT_DOUBLE_EQ(OverlapRatio(a, b), 1.0);
}

TEST(MappingTest, SetOverlapAveragesPairs) {
  Mapping a, b, c;
  ASSERT_TRUE(a.Add("T.a", "s.x").ok());
  ASSERT_TRUE(b.Add("T.a", "s.x").ok());
  ASSERT_TRUE(c.Add("T.a", "s.y").ok());
  // pairs: (a,b)=1, (a,c)=0, (b,c)=0 -> 1/3.
  EXPECT_NEAR(MappingSetOverlapRatio({a, b, c}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MappingSetOverlapRatio({a}), 1.0);
}

TEST(HungarianTest, SolvesSmallKnownProblem) {
  // Classic 3x3; optimal assignment cost = 5 (1+3+1? verify: rows pick
  // (0,1)=1, (1,0)=2, (2,2)=2 -> 5).
  std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
  // Assignment is a permutation.
  std::set<int> cols(result.row_to_col.begin(), result.row_to_col.end());
  EXPECT_EQ(cols.size(), 3u);
}

TEST(HungarianTest, EmptyMatrix) {
  auto result = SolveAssignment({});
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(HungarianTest, ForbiddenEdgesMakeInfeasible) {
  std::vector<std::vector<double>> cost = {
      {1.0, kForbiddenCost}, {kForbiddenCost, kForbiddenCost}};
  auto result = SolveAssignment(cost);
  EXPECT_FALSE(result.feasible);
}

TEST(MurtyTest, EnumeratesInWeightOrder) {
  // rows {0,1}, cols {0,1}: weights favor (0,0)+(1,1).
  std::vector<WeightedEdge> edges = {
      {0, 0, 5.0}, {0, 1, 3.0}, {1, 0, 2.0}, {1, 1, 4.0}};
  auto result = KBestMatchings(2, 2, edges, 10);
  ASSERT_TRUE(result.ok());
  const auto& sols = result.ValueOrDie();
  ASSERT_GE(sols.size(), 3u);
  EXPECT_DOUBLE_EQ(sols[0].weight, 9.0);  // (0,0)+(1,1)
  for (size_t i = 1; i < sols.size(); ++i) {
    EXPECT_LE(sols[i].weight, sols[i - 1].weight + 1e-12);
  }
}

TEST(MurtyTest, NoDuplicateSolutions) {
  std::vector<WeightedEdge> edges = {
      {0, 0, 5.0}, {0, 1, 3.0}, {1, 0, 2.0}, {1, 1, 4.0}, {2, 1, 1.0}};
  auto result = KBestMatchings(3, 2, edges, 50);
  ASSERT_TRUE(result.ok());
  std::set<std::vector<std::pair<int, int>>> seen;
  for (const auto& sol : result.ValueOrDie()) {
    EXPECT_TRUE(seen.insert(sol.edges).second)
        << "duplicate matching enumerated";
  }
}

TEST(MurtyTest, PartialMatchingsIncluded) {
  // A single conflicting column: second-best leaves one row unmatched.
  std::vector<WeightedEdge> edges = {{0, 0, 5.0}, {1, 0, 4.0}};
  auto result = KBestMatchings(2, 1, edges, 10);
  ASSERT_TRUE(result.ok());
  const auto& sols = result.ValueOrDie();
  // {(0,0)}, {(1,0)}, {} — all valid partial matchings.
  ASSERT_EQ(sols.size(), 3u);
  EXPECT_DOUBLE_EQ(sols[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(sols[1].weight, 4.0);
  EXPECT_DOUBLE_EQ(sols[2].weight, 0.0);
}

TEST(MurtyTest, RejectsBadInput) {
  EXPECT_FALSE(KBestMatchings(1, 1, {{0, 0, -1.0}}, 5).ok());
  EXPECT_FALSE(KBestMatchings(1, 1, {{0, 5, 1.0}}, 5).ok());
  EXPECT_FALSE(KBestMatchings(1, 1, {{0, 0, 1.0}}, 0).ok());
}

std::vector<matching::Correspondence> SampleCorrespondences() {
  return {
      {"customer.c_phone", "PO.telephone", 0.85},
      {"supplier.s_phone", "PO.telephone", 0.80},
      {"orders.o_orderkey", "PO.orderNum", 0.85},
      {"lineitem.l_orderkey", "PO.orderNum", 0.78},
      {"customer.c_name", "PO.invoiceTo", 0.66},
      {"orders.o_clerk", "PO.invoiceTo", 0.60},
  };
}

TEST(GeneratorTest, ProbabilitiesNormalized) {
  MappingGenOptions options;
  options.h = 8;
  auto mappings = GenerateMappings(SampleCorrespondences(), options);
  ASSERT_TRUE(mappings.ok());
  const auto& ms = mappings.ValueOrDie();
  ASSERT_GE(ms.size(), 4u);
  EXPECT_NEAR(TotalProbability(ms), 1.0, 1e-9);
  // Sorted by score descending; best maps all three target attrs.
  EXPECT_EQ(ms[0].size(), 3u);
  for (size_t i = 1; i < ms.size(); ++i) {
    EXPECT_LE(ms[i].score(), ms[i - 1].score() + 1e-12);
  }
}

TEST(GeneratorTest, MappingsAreDistinct) {
  MappingGenOptions options;
  options.h = 20;
  auto mappings = GenerateMappings(SampleCorrespondences(), options);
  ASSERT_TRUE(mappings.ok());
  const auto& ms = mappings.ValueOrDie();
  for (size_t i = 0; i < ms.size(); ++i) {
    for (size_t j = i + 1; j < ms.size(); ++j) {
      EXPECT_FALSE(ms[i].SamePairs(ms[j]));
    }
  }
}

TEST(GeneratorTest, BestMappingUsesHighestScores) {
  MappingGenOptions options;
  options.h = 1;
  auto mappings = GenerateMappings(SampleCorrespondences(), options);
  ASSERT_TRUE(mappings.ok());
  const Mapping& best = mappings.ValueOrDie()[0];
  EXPECT_EQ(best.SourceFor("PO.telephone"),
            std::optional<std::string>("customer.c_phone"));
  EXPECT_EQ(best.SourceFor("PO.orderNum"),
            std::optional<std::string>("orders.o_orderkey"));
}

TEST(GeneratorTest, TakeTopMappingsRenormalizes) {
  MappingGenOptions options;
  options.h = 8;
  auto mappings = GenerateMappings(SampleCorrespondences(), options);
  ASSERT_TRUE(mappings.ok());
  auto top = TakeTopMappings(mappings.ValueOrDie(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_NEAR(TotalProbability(top), 1.0, 1e-9);
}

TEST(GeneratorTest, HighOverlapForSimilarScores) {
  // The paper observes 68-79% overlap between possible mappings. With
  // near-tied candidate scores, consecutive k-best matchings flip one
  // correspondence at a time, so overlap must be high.
  MappingGenOptions options;
  options.h = 10;
  auto mappings = GenerateMappings(SampleCorrespondences(), options);
  ASSERT_TRUE(mappings.ok());
  EXPECT_GT(MappingSetOverlapRatio(mappings.ValueOrDie()), 0.25);
}

TEST(MappingSetHashTest, SensitiveToPairsAndProbabilities) {
  auto make_set = [](double p1, const std::string& src) {
    Mapping a;
    EXPECT_TRUE(a.Add("Person.name", "customer.c_name").ok());
    EXPECT_TRUE(a.Add("Person.phone", src).ok());
    a.set_probability(p1);
    Mapping b;
    EXPECT_TRUE(b.Add("Person.name", "customer.c_name").ok());
    b.set_probability(1.0 - p1);
    return std::vector<Mapping>{a, b};
  };
  auto base = make_set(0.6, "customer.c_phone");
  EXPECT_EQ(MappingSetHash(base),
            MappingSetHash(make_set(0.6, "customer.c_phone")));
  // Different correspondence, different probability split, and a
  // truncated set all change the hash.
  EXPECT_NE(MappingSetHash(base),
            MappingSetHash(make_set(0.6, "customer.c_acctbal")));
  EXPECT_NE(MappingSetHash(base),
            MappingSetHash(make_set(0.5, "customer.c_phone")));
  EXPECT_NE(MappingSetHash(base),
            MappingSetHash({base.front()}));
}

}  // namespace
}  // namespace mapping
}  // namespace urm
