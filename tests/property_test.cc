/// \file property_test.cc
/// Property-based tests. The central invariant of the paper is implicit
/// but crucial: *every evaluation method computes the same probabilistic
/// answer*. We generate randomized queries and mapping sets and assert
/// basic == e-basic == e-MQO == q-sharing == o-sharing(Random|SNF|SEF),
/// plus structural invariants of the mapping machinery.

#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.h"
#include "common/random.h"
#include "core/workload.h"
#include "mapping/generator.h"
#include "mapping/murty.h"
#include "osharing/osharing.h"
#include "qsharing/qsharing.h"
#include "reformulation/reformulator.h"
#include "tests/paper_fixture.h"
#include "topk/topk.h"

namespace urm {
namespace {

using algebra::AggKind;
using algebra::CmpOp;
using algebra::MakeAggregate;
using algebra::MakeProduct;
using algebra::MakeProject;
using algebra::MakeScan;
using algebra::MakeSelect;
using algebra::PlanPtr;
using algebra::Predicate;

/// Random target query over the paper-example schema: 1-3 selections,
/// optional Order product, optional projection or aggregate.
PlanPtr RandomQuery(Rng* rng) {
  const std::vector<std::string> person_attrs = {"pname", "phone", "addr",
                                                 "nation"};
  const std::vector<std::string> constants = {"123", "456",  "789", "aaa",
                                              "bbb", "hk",   "Alice",
                                              "Bob", "zzz",  "HongKong"};
  bool with_order = rng->Bernoulli(0.4);
  PlanPtr p = MakeScan("Person", "person");
  if (with_order) {
    p = MakeProduct(p, MakeScan("Order", "order"));
  }
  int num_selects = static_cast<int>(rng->Uniform(1, 3));
  std::vector<std::string> used;
  for (int i = 0; i < num_selects; ++i) {
    const std::string& attr = rng->Choice(person_attrs);
    p = MakeSelect(p, Predicate::AttrCmpValue("person." + attr, CmpOp::kEq,
                                              rng->Choice(constants)));
    used.push_back("person." + attr);
  }
  if (with_order && rng->Bernoulli(0.5)) {
    // Cross-instance equality predicate.
    p = MakeSelect(p, Predicate::AttrCmpAttr("person.nation", CmpOp::kEq,
                                             "order.item"));
    used.push_back("person.nation");
  }
  int shape = static_cast<int>(rng->Uniform(0, 2));
  if (shape == 1) {
    p = MakeProject(p, {rng->Choice(used)});
  } else if (shape == 2) {
    p = MakeAggregate(p, AggKind::kCount);
  }
  return p;
}

class MethodAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MethodAgreement, AllMethodsAgreeOnRandomQueries) {
  auto ex = testing::MakePaperExample();
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  reformulation::Reformulator reformulator(ex.source_schema);

  for (int round = 0; round < 8; ++round) {
    PlanPtr q = RandomQuery(&rng);
    auto info_or = reformulation::AnalyzeTargetQuery(q, ex.target_schema);
    ASSERT_TRUE(info_or.ok()) << info_or.status().ToString();
    const auto& info = info_or.ValueOrDie();

    auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex.mappings),
                                     ex.catalog, reformulator);
    ASSERT_TRUE(basic.ok()) << basic.status().ToString();
    const auto& expected = basic.ValueOrDie().answers;

    auto ebasic = baselines::RunEBasic(
        info, baselines::AsWeighted(ex.mappings), ex.catalog, reformulator);
    ASSERT_TRUE(ebasic.ok());
    EXPECT_TRUE(expected.ApproxEquals(ebasic.ValueOrDie().answers))
        << "e-basic disagrees on:\n" << algebra::ToString(q);

    auto emqo = baselines::RunEMqo(info, baselines::AsWeighted(ex.mappings),
                                   ex.catalog, reformulator);
    ASSERT_TRUE(emqo.ok());
    EXPECT_TRUE(expected.ApproxEquals(emqo.ValueOrDie().answers))
        << "e-MQO disagrees on:\n" << algebra::ToString(q);

    auto qshare =
        qsharing::RunQSharing(info, ex.mappings, ex.catalog, reformulator);
    ASSERT_TRUE(qshare.ok());
    EXPECT_TRUE(expected.ApproxEquals(qshare.ValueOrDie().answers))
        << "q-sharing disagrees on:\n" << algebra::ToString(q);

    for (auto strategy :
         {osharing::StrategyKind::kRandom, osharing::StrategyKind::kSNF,
          osharing::StrategyKind::kSEF}) {
      osharing::OSharingOptions options;
      options.strategy = strategy;
      options.random_seed = static_cast<uint64_t>(GetParam() + round);
      auto oshare = osharing::RunOSharing(info, ex.mappings, ex.catalog,
                                          options);
      ASSERT_TRUE(oshare.ok()) << oshare.status().ToString();
      EXPECT_TRUE(expected.ApproxEquals(oshare.ValueOrDie().answers))
          << "o-sharing/" << osharing::StrategyName(strategy)
          << " disagrees on:\n" << algebra::ToString(q)
          << "basic:\n" << expected.ToString()
          << "o-sharing:\n" << oshare.ValueOrDie().answers.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodAgreement, ::testing::Range(0, 12));

class TopKAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TopKAgreement, TopKSubsumedByExhaustiveAnswers) {
  auto ex = testing::MakePaperExample();
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  reformulation::Reformulator reformulator(ex.source_schema);
  for (int round = 0; round < 5; ++round) {
    PlanPtr q = RandomQuery(&rng);
    auto info_or = reformulation::AnalyzeTargetQuery(q, ex.target_schema);
    ASSERT_TRUE(info_or.ok());
    const auto& info = info_or.ValueOrDie();
    auto basic = baselines::RunBasic(info, baselines::AsWeighted(ex.mappings),
                                     ex.catalog, reformulator);
    ASSERT_TRUE(basic.ok());
    const auto& answers = basic.ValueOrDie().answers;

    for (size_t k : {1, 2, 4}) {
      auto topk = topk::RunTopK(info, ex.mappings, ex.catalog, k);
      ASSERT_TRUE(topk.ok()) << topk.status().ToString();
      const auto& tuples = topk.ValueOrDie().tuples;
      EXPECT_EQ(tuples.size(), std::min(k, answers.size()));
      // k-th highest exact probability; every reported tuple's upper
      // bound must reach it, and bounds must bracket the exact value.
      auto exact = answers.TopK(answers.size());
      double kth = tuples.empty() || exact.size() < k
                       ? 0.0
                       : exact[std::min(k, exact.size()) - 1].probability;
      for (const auto& t : tuples) {
        double p = -1.0;
        for (const auto& e : exact) {
          if (relational::RowsEqual(e.values, t.values)) p = e.probability;
        }
        ASSERT_GE(p, 0.0) << "top-k returned a non-answer tuple";
        EXPECT_LE(t.lower_bound, p + 1e-9);
        EXPECT_GE(t.upper_bound, p - 1e-9);
        EXPECT_GE(p + 1e-9, kth * (1.0 - 1e-9) - 1e-9)
            << "top-k returned a tuple below the k-th probability";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKAgreement, ::testing::Range(0, 8));

class MurtyProperties : public ::testing::TestWithParam<int> {};

TEST_P(MurtyProperties, RandomGraphsYieldSortedDistinctMatchings) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  int rows = static_cast<int>(rng.Uniform(2, 6));
  int cols = static_cast<int>(rng.Uniform(2, 6));
  std::vector<mapping::WeightedEdge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.Bernoulli(0.6)) {
        edges.push_back(
            mapping::WeightedEdge{r, c, 0.05 + rng.NextDouble()});
      }
    }
  }
  auto sols = mapping::KBestMatchings(rows, cols, edges, 40);
  ASSERT_TRUE(sols.ok());
  const auto& ms = sols.ValueOrDie();
  std::set<std::vector<std::pair<int, int>>> seen;
  for (size_t i = 0; i < ms.size(); ++i) {
    // Sorted by weight.
    if (i > 0) EXPECT_LE(ms[i].weight, ms[i - 1].weight + 1e-9);
    // Distinct.
    EXPECT_TRUE(seen.insert(ms[i].edges).second);
    // One-to-one and within bounds.
    std::set<int> used_rows, used_cols;
    double weight = 0.0;
    for (const auto& [r, c] : ms[i].edges) {
      EXPECT_TRUE(used_rows.insert(r).second);
      EXPECT_TRUE(used_cols.insert(c).second);
      bool edge_exists = false;
      for (const auto& e : edges) {
        if (e.row == r && e.col == c) {
          edge_exists = true;
          weight += e.weight;
        }
      }
      EXPECT_TRUE(edge_exists);
    }
    EXPECT_NEAR(weight, ms[i].weight, 1e-9);
  }
  // The first solution must be the maximum-weight matching: no other
  // enumerated solution outweighs it.
  if (!ms.empty()) {
    for (const auto& sol : ms) {
      EXPECT_LE(sol.weight, ms[0].weight + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MurtyProperties, ::testing::Range(0, 20));

class PartitionProperties : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperties, PartitionsAreDisjointAndComplete) {
  auto ex = testing::MakePaperExample();
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 3);
  PlanPtr q = RandomQuery(&rng);
  auto info_or = reformulation::AnalyzeTargetQuery(q, ex.target_schema);
  ASSERT_TRUE(info_or.ok());
  const auto& info = info_or.ValueOrDie();
  auto tree = qsharing::PartitionTree::Build(info, ex.mappings);
  ASSERT_TRUE(tree.ok());

  size_t total_members = 0;
  double total_prob = 0.0;
  std::set<const mapping::Mapping*> seen;
  for (size_t i = 0; i < tree.ValueOrDie().partitions().size(); ++i) {
    const auto& p = tree.ValueOrDie().partitions()[i];
    total_members += p.members.size();
    total_prob += p.total_probability;
    std::string sig;
    for (size_t j = 0; j < p.members.size(); ++j) {
      EXPECT_TRUE(seen.insert(p.members[j]).second) << "overlap";
      std::string s = reformulation::MappingSignature(info, *p.members[j]);
      if (j == 0) {
        sig = s;
      } else {
        EXPECT_EQ(s, sig) << "mixed signatures within a partition";
      }
    }
    if (i != tree.ValueOrDie().unanswerable_index()) {
      EXPECT_NE(sig, reformulation::kUnanswerableSignature);
    }
  }
  EXPECT_EQ(total_members, ex.mappings.size());
  EXPECT_NEAR(total_prob, 1.0, 1e-9);

  // Distinct partitions have distinct signatures.
  std::set<std::string> sigs;
  for (const auto& p : tree.ValueOrDie().partitions()) {
    EXPECT_TRUE(
        sigs.insert(reformulation::MappingSignature(info, *p.members[0]))
            .second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperties,
                         ::testing::Range(0, 16));

class GeneratorProperties : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperties, RandomCorrespondenceGraphs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 11);
  std::vector<matching::Correspondence> corrs;
  int targets = static_cast<int>(rng.Uniform(2, 5));
  int sources = static_cast<int>(rng.Uniform(2, 6));
  for (int t = 0; t < targets; ++t) {
    for (int s = 0; s < sources; ++s) {
      if (rng.Bernoulli(0.5)) {
        corrs.push_back(matching::Correspondence{
            "src.a" + std::to_string(s), "T.b" + std::to_string(t),
            0.2 + 0.6 * rng.NextDouble()});
      }
    }
  }
  if (corrs.empty()) return;
  mapping::MappingGenOptions options;
  options.h = 15;
  auto mappings = mapping::GenerateMappings(corrs, options);
  ASSERT_TRUE(mappings.ok());
  const auto& ms = mappings.ValueOrDie();
  if (ms.empty()) return;
  EXPECT_NEAR(mapping::TotalProbability(ms), 1.0, 1e-9);
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_GT(ms[i].size(), 0u);
    EXPECT_GE(ms[i].probability(), 0.0);
    if (i > 0) EXPECT_LE(ms[i].score(), ms[i - 1].score() + 1e-9);
    for (size_t j = i + 1; j < ms.size(); ++j) {
      EXPECT_FALSE(ms[i].SamePairs(ms[j]));
    }
    double ratio = mapping::OverlapRatio(ms[0], ms[i]);
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperties,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace urm
