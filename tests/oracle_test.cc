/// \file oracle_test.cc
/// Brute-force oracles: exhaustive enumeration checks for the k-best
/// matching machinery, and strict-weak-ordering verification for the
/// Value total order (sorting and grouping correctness hang off it).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/random.h"
#include "mapping/murty.h"
#include "relational/value.h"

namespace urm {
namespace {

using mapping::KBestMatchings;
using mapping::MatchingSolution;
using mapping::WeightedEdge;
using relational::Value;

/// Enumerates *all* partial one-to-one matchings of a tiny bipartite
/// graph by brute force.
std::vector<MatchingSolution> AllMatchings(
    int num_rows, const std::vector<WeightedEdge>& edges) {
  std::vector<MatchingSolution> out;
  std::vector<std::pair<int, int>> current;
  std::set<int> used_cols;
  double weight = 0.0;

  std::function<void(int)> recurse = [&](int row) {
    if (row == num_rows) {
      MatchingSolution sol;
      sol.edges = current;
      sol.weight = weight;
      out.push_back(std::move(sol));
      return;
    }
    recurse(row + 1);  // leave this row unmatched
    for (const auto& e : edges) {
      if (e.row != row || used_cols.count(e.col) > 0) continue;
      current.emplace_back(e.row, e.col);
      used_cols.insert(e.col);
      weight += e.weight;
      recurse(row + 1);
      weight -= e.weight;
      used_cols.erase(e.col);
      current.pop_back();
    }
  };
  recurse(0);
  return out;
}

class MurtyOracle : public ::testing::TestWithParam<int> {};

TEST_P(MurtyOracle, MatchesBruteForceEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 9);
  int rows = static_cast<int>(rng.Uniform(1, 4));
  int cols = static_cast<int>(rng.Uniform(1, 4));
  std::vector<WeightedEdge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.Bernoulli(0.7)) {
        // Distinct weights so the expected order is unambiguous.
        edges.push_back(WeightedEdge{
            r, c, 1.0 + static_cast<double>(edges.size()) * 0.37 +
                      rng.NextDouble() * 0.1});
      }
    }
  }

  std::vector<MatchingSolution> expected = AllMatchings(rows, edges);
  std::sort(expected.begin(), expected.end(),
            [](const MatchingSolution& a, const MatchingSolution& b) {
              return a.weight > b.weight;
            });

  auto got = KBestMatchings(rows, cols, edges,
                            static_cast<int>(expected.size()) + 5);
  ASSERT_TRUE(got.ok());
  const auto& sols = got.ValueOrDie();
  ASSERT_EQ(sols.size(), expected.size())
      << "Murty must enumerate every distinct partial matching";
  for (size_t i = 0; i < sols.size(); ++i) {
    EXPECT_NEAR(sols[i].weight, expected[i].weight, 1e-9) << "rank " << i;
  }
  // As sets of matchings they must coincide exactly.
  std::set<std::vector<std::pair<int, int>>> exp_set, got_set;
  for (const auto& s : expected) exp_set.insert(s.edges);
  for (const auto& s : sols) got_set.insert(s.edges);
  EXPECT_EQ(exp_set, got_set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MurtyOracle, ::testing::Range(0, 25));

std::vector<Value> ValuePool() {
  return {Value::Null(), Value(0),    Value(1),   Value(-3),
          Value(2.5),    Value(2.0),  Value(2),   Value(1e9),
          Value(""),     Value("a"),  Value("b"), Value("aa"),
          Value("123"),  Value(-0.5), Value(42)};
}

TEST(ValueOrderOracle, StrictWeakOrdering) {
  auto pool = ValuePool();
  // Irreflexivity over the equivalence classes.
  for (const auto& a : pool) {
    EXPECT_FALSE(a < a) << a.ToString();
  }
  // Asymmetry and transitivity, brute force over all triples.
  for (const auto& a : pool) {
    for (const auto& b : pool) {
      if (a < b) EXPECT_FALSE(b < a) << a.ToString() << " " << b.ToString();
      for (const auto& c : pool) {
        if (a < b && b < c) {
          EXPECT_TRUE(a < c) << a.ToString() << " " << b.ToString() << " "
                             << c.ToString();
        }
      }
    }
  }
}

TEST(ValueOrderOracle, EquivalenceMatchesEquality) {
  auto pool = ValuePool();
  for (const auto& a : pool) {
    for (const auto& b : pool) {
      bool equivalent = !(a < b) && !(b < a);
      EXPECT_EQ(equivalent, a == b)
          << a.ToString() << " vs " << b.ToString();
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << "hash inconsistent with equality: " << a.ToString();
      }
    }
  }
}

TEST(ValueOrderOracle, SortIsDeterministic) {
  auto pool = ValuePool();
  auto a = pool, b = pool;
  std::sort(a.begin(), a.end(),
            [](const Value& x, const Value& y) { return x < y; });
  std::reverse(b.begin(), b.end());
  std::sort(b.begin(), b.end(),
            [](const Value& x, const Value& y) { return x < y; });
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i] || (!(a[i] < b[i]) && !(b[i] < a[i])));
  }
}

}  // namespace
}  // namespace urm
