/// \file workload_test.cc
/// Static validation of the Table III workload: every query analyzes
/// against its target schema, with the operator inventory, output
/// layout, and o-sharing decomposition the paper describes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/workload.h"
#include "osharing/query_shape.h"
#include "reformulation/target_query.h"

namespace urm {
namespace core {
namespace {

reformulation::TargetQueryInfo Analyze(const WorkloadQuery& wq) {
  auto bundle = datagen::GetTargetSchema(wq.schema);
  auto info = reformulation::AnalyzeTargetQuery(wq.query, bundle.schema);
  EXPECT_TRUE(info.ok()) << wq.id << ": " << info.status().ToString();
  return info.ValueOrDie();
}

TEST(WorkloadStaticTest, AllQueriesAnalyzeAgainstTheirSchemas) {
  for (const auto& wq : PaperWorkload()) {
    auto info = Analyze(wq);
    EXPECT_FALSE(info.output_refs.empty()) << wq.id;
    EXPECT_FALSE(info.instances.empty()) << wq.id;
  }
}

TEST(WorkloadStaticTest, OperatorCountsMatchTableIII) {
  // Table III expressions: selections + products + projections +
  // aggregates per query.
  struct Expected {
    const char* id;
    size_t operators;
  };
  const Expected expected[] = {
      {"Q1", 3},   // 3 selections
      {"Q2", 3},   // 2 selections + 1 product
      {"Q3", 6},   // 4 selections (2 joins) + 2 products
      {"Q4", 6},   // 3 selections + 3 products
      {"Q5", 5},   // 4 selections + COUNT
      {"Q6", 3},   // 3 selections
      {"Q7", 5},   // 3 selections + 1 product + 1 projection
      {"Q8", 3},   // 3 selections
      {"Q9", 6},   // 3 selections + 1 product + π + SUM
      {"Q10", 4},  // 2 selections + 1 product + COUNT
  };
  for (const auto& e : expected) {
    EXPECT_EQ(algebra::CountOperators(QueryById(e.id).query), e.operators)
        << e.id;
  }
}

TEST(WorkloadStaticTest, SchemaAssignmentsMatchPaper) {
  for (const auto& wq : PaperWorkload()) {
    int n = std::atoi(wq.id.c_str() + 1);
    if (n <= 5) {
      EXPECT_EQ(wq.schema, datagen::TargetSchemaId::kExcel) << wq.id;
    } else if (n <= 7) {
      EXPECT_EQ(wq.schema, datagen::TargetSchemaId::kNoris) << wq.id;
    } else {
      EXPECT_EQ(wq.schema, datagen::TargetSchemaId::kParagon) << wq.id;
    }
  }
}

TEST(WorkloadStaticTest, AggregateQueriesFlagged) {
  EXPECT_TRUE(Analyze(QueryById("Q5")).is_aggregate);
  EXPECT_TRUE(Analyze(QueryById("Q9")).is_aggregate);
  EXPECT_TRUE(Analyze(QueryById("Q10")).is_aggregate);
  EXPECT_FALSE(Analyze(QueryById("Q1")).is_aggregate);
  EXPECT_FALSE(Analyze(QueryById("Q7")).is_aggregate);
}

TEST(WorkloadStaticTest, BareInstancesWhereThePaperHasThem) {
  // Q2: PO is scanned but never referenced; Q10: Item likewise.
  auto q2 = Analyze(QueryById("Q2"));
  bool q2_po_bare = false;
  for (const auto& inst : q2.instances) {
    if (inst.table == "PO") q2_po_bare = inst.bare;
  }
  EXPECT_TRUE(q2_po_bare);

  auto q10 = Analyze(QueryById("Q10"));
  bool q10_item_bare = false;
  for (const auto& inst : q10.instances) {
    if (inst.table == "Item") q10_item_bare = inst.bare;
  }
  EXPECT_TRUE(q10_item_bare);

  // Q4 has no bare instance: every alias is referenced.
  for (const auto& inst : Analyze(QueryById("Q4")).instances) {
    EXPECT_FALSE(inst.bare) << inst.alias;
  }
}

TEST(WorkloadStaticTest, SelfJoinInstancesDistinct) {
  auto q4 = Analyze(QueryById("Q4"));
  EXPECT_EQ(q4.instances.size(), 4u);  // po1, po2, item1, item2
  std::set<std::string> aliases;
  for (const auto& inst : q4.instances) {
    EXPECT_TRUE(aliases.insert(inst.alias).second);
  }
  EXPECT_TRUE(aliases.count("po1") && aliases.count("po2"));
}

TEST(WorkloadStaticTest, Q7ProjectsItemColumns) {
  auto q7 = Analyze(QueryById("Q7"));
  ASSERT_EQ(q7.output_refs.size(), 2u);
  EXPECT_EQ(q7.output_refs[0], "item.itemNum");
  EXPECT_EQ(q7.output_refs[1], "item.unitPrice");
}

TEST(WorkloadStaticTest, DecompositionMatchesOperatorCounts) {
  for (const auto& wq : PaperWorkload()) {
    auto info = Analyze(wq);
    auto shape = osharing::DecomposeQuery(info);
    ASSERT_TRUE(shape.ok()) << wq.id << ": " << shape.status().ToString();
    EXPECT_EQ(shape.ValueOrDie().NumOperators(),
              algebra::CountOperators(wq.query))
        << wq.id;
  }
}

TEST(WorkloadStaticTest, ParametricQueriesScaleOperators) {
  for (int n = 1; n <= 5; ++n) {
    EXPECT_EQ(algebra::CountOperators(SelectionChainQuery(n)),
              static_cast<size_t>(n));
  }
  for (int n = 1; n <= 3; ++n) {
    // n products + n join selections + 1 constant selection.
    EXPECT_EQ(algebra::CountOperators(SelfJoinQuery(n)),
              static_cast<size_t>(2 * n + 1));
  }
}

TEST(WorkloadStaticTest, QueriedAttributesExistInSchemas) {
  for (const auto& wq : PaperWorkload()) {
    auto bundle = datagen::GetTargetSchema(wq.schema);
    for (const auto& ref : algebra::ReferencedAttributes(wq.query)) {
      auto info = Analyze(wq);
      auto attr = info.TargetAttrForRef(ref);
      ASSERT_TRUE(attr.ok()) << wq.id << " " << ref;
      EXPECT_TRUE(bundle.schema.HasAttribute(attr.ValueOrDie()))
          << wq.id << " " << ref;
    }
  }
}

TEST(WorkloadStaticTest, QueriedAttributesHaveSeededCandidates) {
  // Every referenced attribute must have at least one seeded source
  // candidate, otherwise all mappings leave the query unanswerable.
  for (const auto& wq : PaperWorkload()) {
    auto bundle = datagen::GetTargetSchema(wq.schema);
    auto info = Analyze(wq);
    for (const auto& ref : algebra::ReferencedAttributes(wq.query)) {
      std::string attr = info.TargetAttrForRef(ref).ValueOrDie();
      size_t candidates = 0;
      for (const auto& [pair, score] : bundle.seeds) {
        if (pair.first == attr) ++candidates;
      }
      EXPECT_GE(candidates, 1u) << wq.id << " " << attr;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace urm
